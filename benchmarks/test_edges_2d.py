"""Bench: edge profiles and data-code correlation via 2-D RAP."""

from conftest import run_once

from repro.experiments import edges


def test_edges_2d(benchmark, save_report):
    result = run_once(benchmark, edges.run, events=60_000)
    save_report("edges", result.render())
    assert result.hot_edges
    assert result.hot_correlations
