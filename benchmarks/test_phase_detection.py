"""Bench: phase identification from windowed RAP summaries."""

from conftest import run_once

from repro.experiments import phase_detection


def test_phase_detection(benchmark, save_report):
    result = run_once(benchmark, phase_detection.run, events=120_000)
    save_report("phases", result.render())
    assert 2 <= result.detected_phases <= 4
    assert result.label_consistency() >= 0.75
