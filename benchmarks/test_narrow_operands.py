"""Bench: Section 4.4 — narrow-operand PC profiling (flow.c story)."""

from conftest import run_once

from repro.experiments import narrow_operands


def test_narrow_operands(benchmark, save_report):
    result = run_once(benchmark, narrow_operands.run, events=300_000)
    save_report("narrow", result.render())
    name, share = result.top_region
    assert name == "flow.c"
    assert 0.25 <= share <= 0.60  # paper: 38.7%
