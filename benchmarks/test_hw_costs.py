"""Bench: Section 3.4 — hardware area/delay/energy and cycles/event."""

import pytest
from conftest import run_once

from repro.experiments import hw_costs


def test_hw_costs(benchmark, save_report):
    result = run_once(benchmark, hw_costs.run, events=60_000)
    save_report("hw_costs", result.render())
    engine = result.paper_engine
    assert engine.total_area_mm2 == pytest.approx(24.73, rel=0.01)
    assert engine.critical_path_ns == pytest.approx(7.0, rel=0.01)
    assert engine.pipelined_critical_path_ns == pytest.approx(1.26, rel=0.01)
    assert engine.energy_per_event_nj == pytest.approx(1.272, rel=0.01)
    assert result.area_ratio > 10 and result.power_ratio > 10
    assert 4.0 <= result.engine_stats.cycles_per_event < 6.0
