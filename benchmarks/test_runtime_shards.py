"""Multi-shard runtime throughput against the single-shard baseline.

The tentpole claim for :mod:`repro.runtime`: partitioning a stream
across shard workers — duplicate-combining per shard on the producer,
batched ``add_batch`` on each confined tree — beats the single-shard
per-event ingest path by >= 2x events/sec at the default 50k scale.
The multi-shard configuration uses ``shard_epsilon = N * epsilon``
(equal total node budget, documented ``shard_epsilon * n`` snapshot
bound) so the comparison holds memory constant; see ``docs/runtime.md``.

The workload is the 64-bit gzip value stream at eps = 1% — the
"heaviest realistic configuration" from ``test_core_throughput.py`` —
ingested in 16k-event chunks so ``np.unique`` amortizes per chunk.

These benchmarks feed the same regression lineage as
``test_core_throughput.py``: their means land in the JSON payload that
``check_regression.py`` gates in CI (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import RapConfig
from repro.core.combine import combine_many
from repro.runtime import Profiler
from repro.workloads import benchmark as load_benchmark

EVENTS = int(os.environ.get("RAP_BENCH_EVENTS", "50000"))
EPSILON = 0.01
SHARDS = 4
BATCH = 16_384


@pytest.fixture(scope="module")
def value_stream():
    stream = load_benchmark("gzip").value_stream(EVENTS, seed=1)
    return (
        np.asarray(stream.values, dtype=np.uint64),
        stream.universe,
    )


def _single_shard(values, universe):
    """The baseline: one tree, per-event ingest (no partition/combine)."""
    return Profiler(
        RapConfig(range_max=universe, epsilon=EPSILON),
        shards=1,
        executor="serial",
    )


def _multi_shard(values, universe, backend="object"):
    """The tentpole path: hash partition, 4 workers, equal node budget."""
    return Profiler(
        RapConfig(range_max=universe, epsilon=EPSILON, backend=backend),
        shards=SHARDS,
        executor="thread",
        shard_epsilon=SHARDS * EPSILON,
        batch_size=BATCH,
    )


def _process_shard(values, universe, backend="columnar", transport="ring"):
    """The multiprocess path: same partition/budget, worker processes
    over shared-memory columnar trees fed raw partitioned frames that
    each worker duplicate-combines in its own combining buffer. The
    frames travel over the shared-memory ring transport by default;
    ``transport="pipe"`` keeps the pickle-framed pipe lineage alive as
    the comparison row the ring gate divides against."""
    return Profiler(
        RapConfig(range_max=universe, epsilon=EPSILON, backend=backend),
        shards=SHARDS,
        executor="process",
        shard_epsilon=SHARDS * EPSILON,
        batch_size=BATCH,
        transport=transport,
    )


def _timed_ingest(profiler, values):
    """The measured section: producer dispatch plus, for threaded
    profilers, ``drain()`` so every accepted batch is applied before
    the clock stops — the same methodology as the 2x speedup floor
    below. Open/close (thread-pool spin-up and teardown) and the
    snapshot fold happen outside the timer: the fold has its own row
    (``test_runtime_snapshot_fold``) and lifecycle churn is round-to-
    round scheduling noise, not ingest throughput."""
    profiler.ingest(values)
    if profiler.shards > 1:
        profiler.drain()
    return profiler


def _bench_ingest(benchmark, make_profiler, values, universe, rounds=7):
    opened = []

    def fresh_profiler():
        while opened:
            opened.pop().close()
        profiler = make_profiler(values, universe).open()
        opened.append(profiler)
        return (profiler, values), {}

    benchmark.pedantic(
        _timed_ingest, setup=fresh_profiler, rounds=rounds, iterations=1
    )
    snapshot = opened.pop().close()
    assert snapshot.events == EVENTS


def test_runtime_single_shard_ingest(benchmark, value_stream):
    _bench_ingest(benchmark, _single_shard, *value_stream)


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_runtime_multi_shard_ingest(benchmark, backend, value_stream):
    def make(values, universe):
        return _multi_shard(values, universe, backend)

    _bench_ingest(benchmark, make, *value_stream)


# Parametrized like the threaded row so the two lineages pair by
# backend; only "columnar" exists — the process executor keeps shard
# trees in shared-memory column arrays by construction. This row rides
# the default (ring) transport; the pipe row below is its comparison
# lineage.
@pytest.mark.parametrize("backend", ["columnar"])
def test_runtime_process_shard_ingest(benchmark, backend, value_stream):
    def make(values, universe):
        return _process_shard(values, universe, backend)

    # The two transport rows feed the ring gate's numerator and
    # denominator, whose 1.4x floor leaves far less margin than the 30%
    # tolerance band — so give their min estimator more samples to find
    # the quiet-machine floor through scheduler noise.
    _bench_ingest(benchmark, make, *value_stream, rounds=21)


@pytest.mark.parametrize("backend", ["columnar"])
def test_runtime_process_pipe_ingest(benchmark, backend, value_stream):
    """The pickle-pipe transport lineage: same executor, same workload.

    Exists so the ring-transport gate in ``check_regression.py`` has a
    live denominator measured under identical conditions — the ring row
    above must stay >= 1.4x faster at the 50k tier."""

    def make(values, universe):
        return _process_shard(values, universe, backend, transport="pipe")

    _bench_ingest(benchmark, make, *value_stream, rounds=21)


def test_runtime_snapshot_fold(benchmark, value_stream):
    """Latency of folding 4 populated shards into one snapshot tree."""
    values, universe = value_stream
    with _multi_shard(values, universe) as profiler:
        profiler.ingest(values)
        profiler.drain()  # folds below then see quiesced shards
        folded = benchmark(combine_many, profiler.shard_trees())
    assert folded.events == EVENTS


def test_multi_shard_speedup_is_at_least_2x(value_stream):
    """The ISSUE acceptance gate, asserted only at the full 50k scale.

    Times pure ingest — producer dispatch plus, for the threaded path,
    ``drain()`` so every accepted batch is actually applied before the
    clock stops. The snapshot fold is measured separately above.
    Scaled-down smoke runs (e.g. CI at 10k) still execute both paths —
    exercising the runtime end to end — but their ratio is dominated by
    thread start-up and queue handshakes, so the 2x floor applies only
    at the scale the claim is documented for.
    """
    values, universe = value_stream

    def timed_ingest(make_profiler, runs=3):
        best = float("inf")
        for _ in range(runs):
            with make_profiler(values, universe) as profiler:
                start = time.perf_counter()
                profiler.ingest(values)
                if profiler.shards > 1:
                    profiler.drain()
                best = min(best, time.perf_counter() - start)
                assert profiler.snapshot().events == EVENTS
        return best

    single = timed_ingest(_single_shard)
    multi = timed_ingest(_multi_shard)
    speedup = single / multi
    print(
        f"\nsingle-shard {EVENTS / single:,.0f} ev/s, "
        f"{SHARDS}-shard {EVENTS / multi:,.0f} ev/s "
        f"({speedup:.2f}x)"
    )
    if EVENTS >= 50_000:
        assert speedup >= 2.0, (
            f"multi-shard ingest only {speedup:.2f}x the single-shard "
            f"baseline at {EVENTS} events (required >= 2x)"
        )


def test_process_speedup_is_at_least_1_5x(value_stream):
    """The ``executor="process"`` acceptance gate, at the full 50k scale.

    Same methodology as the 2x floor above — pure ingest plus
    ``drain()``, best of three — comparing the multiprocess executor
    against the threaded executor on the *same* columnar backend, so
    the ratio isolates what the process executor adds: no GIL over the
    shard kernels, raw-frame dispatch, and each worker's cross-frame
    combining buffer feeding the cold-start bulk build. Mirrored in CI
    by ``check_regression.py``'s process-executor gate over the same
    two rows of ``BENCH_core_throughput.json``. Smoke scales run both
    paths but skip the floor: process spawn and pipe handshakes
    dominate there.
    """
    values, universe = value_stream

    def timed_ingest(make_profiler, runs=3):
        best = float("inf")
        for _ in range(runs):
            with make_profiler(values, universe) as profiler:
                start = time.perf_counter()
                profiler.ingest(values)
                profiler.drain()
                best = min(best, time.perf_counter() - start)
                assert profiler.snapshot().events == EVENTS
        return best

    threaded = timed_ingest(
        lambda v, u: _multi_shard(v, u, backend="columnar")
    )
    process = timed_ingest(_process_shard)
    speedup = threaded / process
    print(
        f"\nthreaded {EVENTS / threaded:,.0f} ev/s, "
        f"process {EVENTS / process:,.0f} ev/s ({speedup:.2f}x)"
    )
    if EVENTS >= 50_000:
        assert speedup >= 1.5, (
            f"process-executor ingest only {speedup:.2f}x the threaded "
            f"executor at {EVENTS} events (required >= 1.5x)"
        )
