"""Bench: RAP unified with a sampling front end (Section 6)."""

from conftest import run_once

from repro.experiments import sampling_unify


def test_sampling_unify(benchmark, save_report):
    result = run_once(benchmark, sampling_unify.run, events=120_000)
    save_report("sampling", result.render())
    for row in result.rows:
        assert row.hot_recall >= 0.8
