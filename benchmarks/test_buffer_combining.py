"""Bench: the stage-0 combining buffer (1k buffer ~ 10x for code)."""

from conftest import run_once

from repro.experiments import buffer


def test_buffer_combining(benchmark, save_report):
    result = run_once(benchmark, buffer.run, events=120_000)
    save_report("buffer", result.render())
    assert result.factor("code", 1024) >= 5.0
    assert result.factor("code", 1024) > result.factor("value", 1024)
