"""Compare a benchmark run against a checked-in throughput baseline.

Usage::

    python benchmarks/check_regression.py CANDIDATE.json \
        [--baseline benchmarks/baselines/core_throughput_10k.json] \
        [--tolerance 0.30]

Both files are the JSON payload ``benchmarks/conftest.py`` emits.
Candidate and baseline must come from the same ``RAP_BENCH_EVENTS``
scale — per-event cost is *not* scale invariant (the early stream is
split-dense; amortization differs), so the repo keeps one baseline per
scale: the full 50k ``BENCH_core_throughput.json`` at the repo root and
the 10k smoke baseline under ``benchmarks/baselines/``.

Runs from different machines are made comparable through the payload's
``calibration_s`` — the time of a fixed pure-python loop on the machine
that produced the run. Candidate means are scaled by the calibration
ratio before comparison, so a uniformly slower CI runner does not read
as a regression while a genuinely slower tree still does. Exits
non-zero when any benchmark's scaled mean exceeds
``baseline * (1 + tolerance)``.

Benchmarks present on only one side are reported but never fail the
check, so adding or renaming a benchmark does not break CI before the
baseline is regenerated (see "Performance notes" in ``DESIGN.md``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "core_throughput_10k.json"
)


def load_payload(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if "results" not in payload or "events" not in payload:
        raise SystemExit(f"{path}: not a core_throughput payload")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark means regress past tolerance."
    )
    parser.add_argument(
        "candidate", type=pathlib.Path,
        help="JSON emitted by the benchmark run under test",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"baseline JSON (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional regression of the mean (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_payload(args.baseline)
    candidate = load_payload(args.candidate)
    if baseline["events"] != candidate["events"]:
        raise SystemExit(
            f"scale mismatch: baseline ran {baseline['events']} events, "
            f"candidate {candidate['events']} — per-event cost is not "
            "scale invariant; regenerate a baseline at this scale"
        )

    speed = 1.0
    base_cal = baseline.get("calibration_s")
    cand_cal = candidate.get("calibration_s")
    if base_cal and cand_cal:
        speed = cand_cal / base_cal
        print(
            f"machine calibration: candidate {cand_cal * 1e3:.1f} ms vs "
            f"baseline {base_cal * 1e3:.1f} ms "
            f"(runner {speed:.2f}x the baseline machine)"
        )
    else:
        print("machine calibration missing on one side; comparing raw means")

    base_means = {row["name"]: row["mean_s"] for row in baseline["results"]}
    cand_means = {row["name"]: row["mean_s"] for row in candidate["results"]}

    failures = []
    for name in sorted(base_means):
        if name not in cand_means:
            print(f"SKIP {name}: not in candidate run")
            continue
        base = base_means[name]
        scaled = cand_means[name] / speed
        ratio = scaled / base if base else float("inf")
        status = "OK"
        if ratio > 1.0 + args.tolerance:
            status = "FAIL"
            failures.append(name)
        print(
            f"{status:4s} {name}: {scaled * 1e3:,.2f} ms (scaled) vs "
            f"baseline {base * 1e3:,.2f} ms ({ratio:.2f}x)"
        )
    for name in sorted(set(cand_means) - set(base_means)):
        print(f"NEW  {name}: no baseline entry (not checked)")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than "
            f"{args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    print("\nall benchmark means within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
