"""Compare a benchmark run against a checked-in throughput baseline.

Usage::

    python benchmarks/check_regression.py CANDIDATE.json \
        [--baseline benchmarks/baselines/core_throughput_10k.json] \
        [--tolerance 0.30]

Both files are the JSON payload ``benchmarks/conftest.py`` emits.
Candidate and baseline must come from the same ``RAP_BENCH_EVENTS``
scale — per-event cost is *not* scale invariant (the early stream is
split-dense; amortization differs), so the repo keeps one baseline per
scale: the full 50k ``BENCH_core_throughput.json`` at the repo root and
the 10k smoke baseline under ``benchmarks/baselines/``.

Runs from different machines are made comparable through the payload's
``calibration_s`` — the time of a fixed pure-python loop on the machine
that produced the run. Candidate means are scaled by the calibration
ratio before comparison, so a uniformly slower CI runner does not read
as a regression while a genuinely slower tree still does. Exits
non-zero when any benchmark's scaled mean exceeds
``baseline * (1 + tolerance)``.

Benchmarks present on only one side are reported but never fail the
check, so adding or renaming a benchmark does not break CI before the
baseline is regenerated (see "Performance notes" in ``DESIGN.md``).

Backend-parametrized rows carry a ``backend`` field and are compared
strictly within their own lineage — ``...[object]`` against
``...[object]``, ``...[columnar]`` against ``...[columnar]`` — so an
object-backend regression cannot hide behind a columnar speedup. On
top of the baseline comparison, the candidate run must uphold the
columnar value proposition itself: its sustained-ingest columnar mean
must be at least ``SPEEDUP_FLOOR``x faster than its object mean, and
on the batch kernel (pre-combined sorted chunks, the layout's home
turf) columnar must be at least as fast as object even at smoke
scale. Both ratios are intra-run, so machine calibration cancels out
of them.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "core_throughput_10k.json"
)

#: The benchmark whose object-vs-columnar ratio is gated, and the
#: minimum speedup the columnar backend must sustain on it. Like the
#: runtime 2x multi-shard floor, the gate applies only at the full
#: scale — scaled-down smoke runs still *run* both backends, but their
#: warmed profile is too small for the vector rounds to amortize, so
#: the documented ratio holds at the scale the claim is made for.
SUSTAINED_INGEST = "test_sustained_ingest_throughput"
SPEEDUP_FLOOR = 3.0
SPEEDUP_GATE_MIN_EVENTS = 50_000

#: The contiguous kernel's own row: pre-combined sorted chunks through
#: ``add_batch``. Unlike the sustained gate this one holds from the 10k
#: smoke scale up — the fully contiguous layout wins cold ingest too,
#: so a smoke run where object beats columnar here means the batch
#: kernel regressed, whatever the absolute numbers are.
BATCH_KERNEL = "test_batch_kernel_throughput"
BATCH_KERNEL_FLOOR = 1.0
BATCH_KERNEL_MIN_EVENTS = 10_000

#: The process-executor value proposition (the ``executor="process"``
#: acceptance gate): sustained 4-shard ingest through worker processes
#: over shared-memory columnar trees must beat the threaded executor
#: on the same columnar backend. Intra-run min ratio like the other
#: two gates, applied only at the full scale — at smoke scale the
#: ratio drowns in process spawn and pipe handshakes.
PROCESS_INGEST = "test_runtime_process_shard_ingest[columnar]"
THREADED_INGEST = "test_runtime_multi_shard_ingest[columnar]"
PROCESS_SPEEDUP_FLOOR = 1.5
PROCESS_GATE_MIN_EVENTS = 50_000

#: The ring-transport value proposition (the zero-copy transport
#: acceptance gate). ``test_runtime_process_shard_ingest[columnar]``
#: rode the pickle-framed pipe transport until the ring landed; its
#: last pipe-era lineage value — min_s at the 50k tier on the
#: reference machine, frozen here from the pre-ring
#: ``BENCH_core_throughput.json`` — is the denominator the ring row
#: must stay >= 1.4x faster than. The live pipe row
#: (``test_runtime_process_pipe_ingest[columnar]``) remains in the
#: payload as its own tracked lineage so the comparison stays
#: reproducible, but the gate divides against the frozen figure: the
#: worker warm-up/readiness handshake that landed *with* the ring sped
#: the pipe path up too, so the intra-run ratio understates what the
#: transport rewrite bought end to end. Calibration-scaled like the
#: mean comparisons; SKIP below 50k (same policy as the
#: process-executor gate — transport cost drowns in spawn overhead at
#: smoke scale).
RING_INGEST = PROCESS_INGEST
PIPE_ERA_BASELINE_MIN_S = 0.0485
RING_SPEEDUP_FLOOR = 1.4
RING_GATE_MIN_EVENTS = 50_000


def load_payload(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if "results" not in payload or "events" not in payload:
        raise SystemExit(f"{path}: not a core_throughput payload")
    return payload


def lineage_means(payload: dict) -> dict:
    """Map ``(backend, name) -> mean_s``.

    The backend is part of the comparison key, so a row can only ever
    be compared against the same benchmark on the same backend, even
    if a rename ever decouples the name suffix from the field.
    """
    return {
        (row.get("backend", "object"), row["name"]): row["mean_s"]
        for row in payload["results"]
    }


def backend_speedup(payload: dict, benchmark: str):
    """Object-vs-columnar ratio on ``benchmark``'s paired rows.

    Uses each row's ``min_s``: the minimum is the standard noise-robust
    statistic for intra-run ratios (scheduler/GC interference only ever
    adds time), where a mean ratio wobbles with whichever row caught
    more background noise.
    """
    mins = {
        row.get("backend", "object"): row["min_s"]
        for row in payload["results"]
        if row["name"].startswith(benchmark + "[")
    }
    if "object" in mins and "columnar" in mins and mins["columnar"]:
        return mins["object"] / mins["columnar"]
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark means regress past tolerance."
    )
    parser.add_argument(
        "candidate", type=pathlib.Path,
        help="JSON emitted by the benchmark run under test",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"baseline JSON (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional regression of the mean (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_payload(args.baseline)
    candidate = load_payload(args.candidate)
    if baseline["events"] != candidate["events"]:
        raise SystemExit(
            f"scale mismatch: baseline ran {baseline['events']} events, "
            f"candidate {candidate['events']} — per-event cost is not "
            "scale invariant; regenerate a baseline at this scale"
        )

    speed = 1.0
    base_cal = baseline.get("calibration_s")
    cand_cal = candidate.get("calibration_s")
    if base_cal and cand_cal:
        speed = cand_cal / base_cal
        print(
            f"machine calibration: candidate {cand_cal * 1e3:.1f} ms vs "
            f"baseline {base_cal * 1e3:.1f} ms "
            f"(runner {speed:.2f}x the baseline machine)"
        )
    else:
        print("machine calibration missing on one side; comparing raw means")

    base_means = lineage_means(baseline)
    cand_means = lineage_means(candidate)

    failures = []
    for key in sorted(base_means):
        backend, name = key
        if key not in cand_means:
            print(f"SKIP {name} ({backend}): not in candidate run")
            continue
        base = base_means[key]
        scaled = cand_means[key] / speed
        ratio = scaled / base if base else float("inf")
        status = "OK"
        if ratio > 1.0 + args.tolerance:
            status = "FAIL"
            failures.append(name)
        print(
            f"{status:4s} {name}: {scaled * 1e3:,.2f} ms (scaled) vs "
            f"baseline {base * 1e3:,.2f} ms ({ratio:.2f}x)"
        )
    for backend, name in sorted(set(cand_means) - set(base_means)):
        print(f"NEW  {name} ({backend}): no baseline entry (not checked)")

    # The columnar backend must keep earning its keep: candidate's own
    # sustained-ingest object/columnar ratio (calibration-free).
    speedup = backend_speedup(candidate, SUSTAINED_INGEST)
    if speedup is None:
        print(
            f"SKIP columnar speedup gate: no paired {SUSTAINED_INGEST} "
            "rows in candidate"
        )
    elif candidate["events"] < SPEEDUP_GATE_MIN_EVENTS:
        print(
            f"SKIP columnar speedup gate: measured {speedup:.2f}x at "
            f"{candidate['events']} events; the {SPEEDUP_FLOOR:.1f}x "
            f"floor applies from {SPEEDUP_GATE_MIN_EVENTS} events up"
        )
    else:
        status = "OK" if speedup >= SPEEDUP_FLOOR else "FAIL"
        print(
            f"{status:4s} columnar sustained-ingest speedup: "
            f"{speedup:.2f}x object (floor {SPEEDUP_FLOOR:.1f}x)"
        )
        if status == "FAIL":
            failures.append("columnar-sustained-ingest-speedup")

    # And the batch kernel must never fall behind the object backend,
    # smoke scale included (intra-run min ratio, calibration-free).
    batch = backend_speedup(candidate, BATCH_KERNEL)
    if batch is None:
        print(
            f"SKIP columnar batch-kernel gate: no paired {BATCH_KERNEL} "
            "rows in candidate"
        )
    elif candidate["events"] < BATCH_KERNEL_MIN_EVENTS:
        print(
            f"SKIP columnar batch-kernel gate: measured {batch:.2f}x at "
            f"{candidate['events']} events; the gate applies from "
            f"{BATCH_KERNEL_MIN_EVENTS} events up"
        )
    else:
        status = "OK" if batch >= BATCH_KERNEL_FLOOR else "FAIL"
        print(
            f"{status:4s} columnar batch-kernel speedup: "
            f"{batch:.2f}x object (floor {BATCH_KERNEL_FLOOR:.1f}x)"
        )
        if status == "FAIL":
            failures.append("columnar-batch-kernel-speedup")

    # And the process executor must keep beating the threaded one on
    # the shared columnar lineage (intra-run min ratio, calibration-
    # free) — the documented reason executor="process" exists.
    mins = {
        row["name"]: row["min_s"]
        for row in candidate["results"]
        if row["name"] in (PROCESS_INGEST, THREADED_INGEST)
    }
    if len(mins) < 2 or not mins.get(PROCESS_INGEST):
        print(
            "SKIP process-executor gate: missing "
            f"{PROCESS_INGEST} / {THREADED_INGEST} rows in candidate"
        )
    elif candidate["events"] < PROCESS_GATE_MIN_EVENTS:
        ratio = mins[THREADED_INGEST] / mins[PROCESS_INGEST]
        print(
            f"SKIP process-executor gate: measured {ratio:.2f}x at "
            f"{candidate['events']} events; the "
            f"{PROCESS_SPEEDUP_FLOOR:.1f}x floor applies from "
            f"{PROCESS_GATE_MIN_EVENTS} events up"
        )
    else:
        ratio = mins[THREADED_INGEST] / mins[PROCESS_INGEST]
        status = "OK" if ratio >= PROCESS_SPEEDUP_FLOOR else "FAIL"
        print(
            f"{status:4s} process-executor ingest speedup: "
            f"{ratio:.2f}x threaded (floor {PROCESS_SPEEDUP_FLOOR:.1f}x)"
        )
        if status == "FAIL":
            failures.append("process-executor-ingest-speedup")

    # And the ring transport must keep the process ingest row >= 1.4x
    # faster than its frozen pipe-era lineage value (the reason the
    # shared-memory transport exists). Candidate min is calibration-
    # scaled exactly like the mean comparisons so a slower runner is
    # judged relatively, not absolutely.
    ring_min = next(
        (
            row["min_s"]
            for row in candidate["results"]
            if row["name"] == RING_INGEST
        ),
        None,
    )
    if not ring_min:
        print(f"SKIP ring-transport gate: no {RING_INGEST} row in candidate")
    elif candidate["events"] < RING_GATE_MIN_EVENTS:
        ratio = PIPE_ERA_BASELINE_MIN_S / (ring_min / speed)
        print(
            f"SKIP ring-transport gate: measured {ratio:.2f}x at "
            f"{candidate['events']} events; the "
            f"{RING_SPEEDUP_FLOOR:.1f}x floor applies from "
            f"{RING_GATE_MIN_EVENTS} events up"
        )
    else:
        ratio = PIPE_ERA_BASELINE_MIN_S / (ring_min / speed)
        status = "OK" if ratio >= RING_SPEEDUP_FLOOR else "FAIL"
        print(
            f"{status:4s} ring-transport ingest speedup: {ratio:.2f}x the "
            f"pipe-era baseline ({PIPE_ERA_BASELINE_MIN_S * 1e3:.1f} ms, "
            f"floor {RING_SPEEDUP_FLOOR:.1f}x)"
        )
        if status == "FAIL":
            failures.append("ring-transport-ingest-speedup")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than "
            f"{args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    print("\nall benchmark means within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
