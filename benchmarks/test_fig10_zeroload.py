"""Bench: Figure 10 — zero-load memory ranges of gcc."""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_zeroload(benchmark, save_report):
    result = run_once(benchmark, fig10.run, events=250_000)
    save_report("fig10", result.render())
    assert result.hot_coverage > 0.6  # paper: nodes 2-4 cover 85.2%
    rates = [result.conditional_zero_rate(i) for i in result.hot_ranges]
    assert all(0.3 <= r <= 0.46 for r in rates)  # paper: ~38%
