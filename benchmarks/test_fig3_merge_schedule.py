"""Bench: Figure 3 — bounded memory under exponentially batched merges."""

from conftest import run_once

from repro.experiments import fig3


def test_fig3_merge_schedule(benchmark, save_report):
    result = run_once(benchmark, fig3.run, events=200_000)
    save_report("fig3", result.render())
    assert result.batches_for_2_32 == 22
    assert result.batches_for_2_64 == 54
    values = [value for _, value in result.sawtooth]
    assert max(values) <= result.peak_bound * 1.05
