"""Bench: stream-length invariance of memory and error (the scale claim)."""

from conftest import run_once

from repro.experiments import scaling


def test_scaling_invariance(benchmark, save_report):
    result = run_once(benchmark, scaling.run)
    save_report("scaling", result.render())
    assert result.memory_growth < 1.5       # memory independent of n
    errors = [row.average_percent_error for row in result.rows]
    assert errors[-1] <= errors[0]          # relative error non-increasing
    assert len(result.stable_hot_core()) >= 4
