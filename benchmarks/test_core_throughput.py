"""Micro-benchmarks of the core data-structure operations.

These are conventional repeated-timing benchmarks (not one-shot
experiment reproductions): update throughput of the software tree with
and without duplicate combining, hot-range extraction, merge passes, and
the cycle-model engine.
"""

from __future__ import annotations

import os

import pytest

from repro.core import RapConfig, RapTree, find_hot_ranges
from repro.hardware import HardwareParams, PipelinedRapEngine
from repro.workloads import benchmark as load_benchmark

# Stream length; override with RAP_BENCH_EVENTS for quick smoke runs
# (the CI benchmark job uses 10k). The repo-root baseline JSON is only
# rewritten at the default scale unless RAP_BENCH_OUT redirects it —
# see benchmarks/conftest.py.
EVENTS = int(os.environ.get("RAP_BENCH_EVENTS", "50000"))


@pytest.fixture(scope="module")
def code_values():
    return [int(v) for v in
            load_benchmark("gcc").code_stream(EVENTS, seed=1).values]


@pytest.fixture(scope="module")
def value_stream():
    return load_benchmark("gzip").value_stream(EVENTS, seed=1)


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_tree_update_throughput(benchmark, backend, code_values):
    """Raw-stream ingest from a cold tree: the software hot path."""

    def run():
        tree = RapTree.from_config(
            RapConfig(range_max=2**32, epsilon=0.05, backend=backend)
        )
        tree.extend(code_values)
        return tree

    tree = benchmark(run)
    assert tree.events == EVENTS


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_batch_kernel_throughput(benchmark, backend, code_values):
    """Pre-combined chunks through the sorted ``add_batch`` kernel."""
    chunks = []
    for start in range(0, len(code_values), 4096):
        combined = {}
        for value in code_values[start:start + 4096]:
            combined[value] = combined.get(value, 0) + 1
        chunks.append(sorted(combined.items()))

    def run():
        tree = RapTree.from_config(
            RapConfig(range_max=2**32, epsilon=0.05, backend=backend)
        )
        for chunk in chunks:
            tree.add_batch(chunk)
        return tree

    tree = benchmark(run)
    assert tree.events == EVENTS


@pytest.fixture(scope="module")
def mature_profile_pairs(code_values):
    """The stream's own distribution, pre-aged 19x: a warmed-up profile.

    Replaying the combined distribution at 19x weight before timing
    puts the tree where a long-running profiler lives — structure
    settled, splits rare — so the timed section measures sustained
    ingest rather than cold-start split cascades.
    """
    combined = {}
    for value in code_values:
        combined[value] = combined.get(value, 0) + 1
    return sorted((value, count * 19) for value, count in combined.items())


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_sustained_ingest_throughput(
    benchmark, backend, code_values, mature_profile_pairs
):
    """Raw-stream ingest into a mature profile, per backend.

    This is the columnar backend's value proposition — and the row
    ``check_regression.py`` holds to the >= 3x object-vs-columnar
    speedup gate (an intra-run ratio, so machine speed cancels). Each
    round rebuilds the warm tree untimed in ``setup``; only the
    ``extend`` over the raw stream is on the clock.
    """
    config = RapConfig(range_max=2**32, epsilon=0.05, backend=backend)

    def warm():
        tree = RapTree.from_config(config)
        tree.add_batch(mature_profile_pairs)
        return (tree,), {}

    def run(tree):
        tree.extend(code_values)
        return tree

    tree = benchmark.pedantic(run, setup=warm, rounds=7, iterations=1)
    assert tree.events == 20 * EVENTS


def test_tree_combined_update_throughput(benchmark, code_values):
    """Duplicate-combined adds: the paper's software recommendation."""

    def run():
        tree = RapTree(RapConfig(range_max=2**32, epsilon=0.05))
        tree.add_stream(code_values, combine_chunk=4096)
        return tree

    tree = benchmark(run)
    assert tree.events == EVENTS


def test_wide_universe_value_profiling(benchmark, value_stream):
    """64-bit universe, eps = 1%: the heaviest realistic configuration."""

    def run():
        tree = RapTree(RapConfig(range_max=value_stream.universe,
                                 epsilon=0.01))
        tree.add_stream(iter(value_stream), combine_chunk=4096)
        return tree

    tree = benchmark(run)
    assert tree.events == EVENTS


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_hot_range_extraction(benchmark, backend, value_stream):
    """Hot-range fold over a settled profile, per backend.

    The columnar lineage times the level-kernel fast path
    (``_hot_range_rows``); the object lineage times the reference
    post-order walk. Both must return the identical ranges.
    """
    tree = RapTree.from_config(
        RapConfig(
            range_max=value_stream.universe, epsilon=0.01, backend=backend
        )
    )
    tree.add_stream(iter(value_stream), combine_chunk=4096)
    hot = benchmark(find_hot_ranges, tree, 0.10)
    assert hot


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_merge_pass(benchmark, backend, value_stream):
    """Build with merging deferred, then one full-tree merge pass."""

    def run():
        tree = RapTree.from_config(
            RapConfig(
                range_max=value_stream.universe,
                epsilon=0.01,
                merge_initial_interval=10**9,  # defer all merging
                backend=backend,
            )
        )
        tree.add_stream(iter(value_stream), combine_chunk=4096)
        tree.merge_now()
        return tree

    tree = benchmark(run)
    assert tree.node_count > 0


def test_pipelined_engine_throughput(benchmark, code_values):
    """The cycle-level engine model (TCAM search per record)."""
    subset = code_values[:10_000]

    def run():
        engine = PipelinedRapEngine(
            RapConfig(range_max=2**32, epsilon=0.05),
            HardwareParams(buffer_capacity=1024, combine_events=True),
        )
        engine.process_stream(subset)
        return engine

    engine = benchmark(run)
    assert engine.events == len(subset)
