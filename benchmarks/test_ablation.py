"""Bench: design-choice ablations (merge batching, b, combining)."""

from conftest import run_once

from repro.experiments import ablation


def test_ablation(benchmark, save_report):
    result = run_once(benchmark, ablation.run, events=120_000)
    save_report("ablation", result.render())
    assert result.same_hot_ranges
    assert result.scan_ratio > 5.0
