"""Bench: Figure 7 — max/average RAP tree size across the suite."""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_memory(benchmark, save_report):
    result = run_once(benchmark, fig7.run, events=150_000)
    save_report("fig7", result.render())
    assert result.max_of_panel("code", 0.10).benchmark == "gcc"
    for row in result.panel("code", 0.10):
        assert row.max_nodes <= 600  # paper: 500 nodes suffice
