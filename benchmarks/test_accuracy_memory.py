"""Bench: the 8 KB -> 98% and 64 KB -> 99.73% accuracy claims."""

from conftest import run_once

from repro.experiments import accuracy_memory


def test_accuracy_memory(benchmark, save_report):
    result = run_once(benchmark, accuracy_memory.run, events=120_000)
    save_report("accuracy_memory", result.render())
    assert result.accuracy_within(8 * 1024) >= 98.0
    assert result.accuracy_within(64 * 1024) >= 99.0
