"""Bench: TCAM versus multibit-trie range lookup (Section 3.3, [36]).

The paper assumes a TCAM but notes the tree "is really a multibit trie"
implementable with network-algorithm techniques. This benchmark installs
the same live RAP range set in both structures and compares lookup
throughput and memory, reporting the trade: the TCAM answers in one
(expensive, ternary) access, the trie in ``width/stride`` cheap SRAM
steps at some prefix-expansion memory cost.
"""

import numpy as np
import pytest

from repro.core import RapConfig, RapTree
from repro.hardware.tcam import TernaryCam, range_to_entry
from repro.hardware.trie import MultibitTrie, TrieEntry, range_to_prefix
from repro.workloads import benchmark as load_benchmark

WIDTH = 32
KEYS = 5_000


@pytest.fixture(scope="module")
def installed():
    stream = load_benchmark("gcc").code_stream(60_000, seed=4)
    tree = RapTree(RapConfig(range_max=2**WIDTH, epsilon=0.05))
    tree.add_stream(iter(stream), combine_chunk=4096)

    cam = TernaryCam(capacity=8192, width_bits=WIDTH)
    trie = MultibitTrie(width_bits=WIDTH, stride=4)
    for index, node in enumerate(tree.nodes()):
        cam.insert(range_to_entry(node.lo, node.hi, WIDTH))
        value, prefix_len = range_to_prefix(node.lo, node.hi, WIDTH)
        trie.insert(TrieEntry(value=value, prefix_len=prefix_len, item=index))

    rng = np.random.default_rng(9)
    keys = [int(v) for v in stream.values[
        rng.integers(0, len(stream), size=KEYS)
    ]]
    return cam, trie, keys


def test_tcam_lookup_throughput(benchmark, installed):
    cam, _, keys = installed

    def run():
        total = 0
        for key in keys:
            total += cam.search(key)[-1]
        return total

    assert benchmark(run) > 0


def test_trie_lookup_throughput(benchmark, installed, save_report):
    cam, trie, keys = installed

    def run():
        total = 0
        for key in keys:
            total += trie.longest_match(key).item
        return total

    assert benchmark(run) >= 0
    save_report(
        "trie_vs_tcam",
        (
            f"range set: {len(cam.rows)} live ranges\n"
            f"TCAM rows: {len(cam.rows)} ternary entries\n"
            f"trie: {trie.node_count} nodes, "
            f"{trie.stored_entries()} expanded entries "
            f"({trie.expansions} total expansions), "
            f"{trie.memory_bytes():,} bytes, "
            f"{trie.average_lookup_steps:.1f} table steps/lookup "
            f"(constant <= {trie.levels})"
        ),
    )
