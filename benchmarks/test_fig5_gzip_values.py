"""Bench: Figure 5 — hot load-value ranges of gzip (eps = 1%)."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5_gzip_values(benchmark, save_report):
    result = run_once(benchmark, fig5.run, events=300_000)
    save_report("fig5", result.render())
    assert 5 <= result.hot_count <= 9  # paper: 7
    assert result.small_value_coverage > 0.45
    assert result.pointer_band_coverage > 0.12
