"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (see the experiment index
in ``DESIGN.md``): it times the reproduction via pytest-benchmark and
writes the rendered rows/series — the same ones the paper's table or
figure reports — to ``benchmarks/_reports/<id>.txt``.
"""

from __future__ import annotations

import json
import os
import pathlib
import re

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"
REPO_ROOT = pathlib.Path(__file__).parent.parent
CORE_THROUGHPUT_JSON = REPO_ROOT / "BENCH_core_throughput.json"
DEFAULT_EVENTS = 50_000


def machine_calibration() -> float:
    """Time a fixed pure-python workload on this interpreter/machine.

    Stored in the benchmark payload so ``check_regression.py`` can
    compare runs from different machines *relatively*: a runner that is
    2x slower on this loop is allowed to be ~2x slower on the
    benchmarks before anything counts as a regression.
    """
    import time

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        table = {}
        total = 0
        for i in range(200_000):
            key = (i * 2654435761) % 4096
            table[key] = table.get(key, 0) + i
            total += key
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture
def save_report():
    """Persist an experiment's rendered report for inspection."""

    def _save(name: str, text: str) -> None:
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The reproductions are deterministic and seconds-long, so one round
    is the honest measurement (re-running would only re-profile the same
    seeded stream).
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def pytest_sessionfinish(session, exitstatus):
    """Publish the core-throughput numbers as a repo-root JSON artifact.

    Only the micro-benchmarks from ``test_core_throughput.py`` and
    ``test_runtime_shards.py`` are machine-readable regression
    baselines; the experiment reproductions keep their human-readable
    ``_reports/*.txt`` instead.
    """
    benchsession = getattr(session.config, "_benchmarksession", None)
    if benchsession is None:
        return
    results = []
    for bench in getattr(benchsession, "benchmarks", []):
        fullname = getattr(bench, "fullname", "")
        if not any(
            module in fullname
            for module in ("test_core_throughput", "test_runtime_shards")
        ):
            continue
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        # Backend-parametrized rows ("...[columnar]") are separate
        # regression lineages; un-parametrized benchmarks run the
        # default object backend.
        match = re.search(r"\[(object|columnar)\]", bench.name)
        results.append(
            {
                "name": bench.name,
                "backend": match.group(1) if match else "object",
                "mean_s": stats.mean,
                "min_s": stats.min,
                "max_s": stats.max,
                "stddev_s": stats.stddev,
                "rounds": stats.rounds,
                "ops_per_s": stats.ops,
            }
        )
    if not results:
        return
    events = int(os.environ.get("RAP_BENCH_EVENTS", str(DEFAULT_EVENTS)))
    out_path = os.environ.get("RAP_BENCH_OUT")
    if out_path:
        target = pathlib.Path(out_path)
    elif events == DEFAULT_EVENTS:
        target = CORE_THROUGHPUT_JSON
    else:
        # Scaled-down smoke runs (e.g. CI at 10k events) must not
        # clobber the checked-in full-scale baseline; they opt into an
        # explicit output path via RAP_BENCH_OUT instead.
        return
    payload = {
        "benchmark": "core_throughput",
        "source": "benchmarks/test_core_throughput.py",
        "events": events,
        "units": "seconds",
        "calibration_s": machine_calibration(),
        "results": sorted(results, key=lambda row: row["name"]),
    }
    target.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
