"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (see the experiment index
in ``DESIGN.md``): it times the reproduction via pytest-benchmark and
writes the rendered rows/series — the same ones the paper's table or
figure reports — to ``benchmarks/_reports/<id>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"


@pytest.fixture
def save_report():
    """Persist an experiment's rendered report for inspection."""

    def _save(name: str, text: str) -> None:
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The reproductions are deterministic and seconds-long, so one round
    is the honest measurement (re-running would only re-profile the same
    seeded stream).
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
