"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (see the experiment index
in ``DESIGN.md``): it times the reproduction via pytest-benchmark and
writes the rendered rows/series — the same ones the paper's table or
figure reports — to ``benchmarks/_reports/<id>.txt``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"
REPO_ROOT = pathlib.Path(__file__).parent.parent
CORE_THROUGHPUT_JSON = REPO_ROOT / "BENCH_core_throughput.json"


@pytest.fixture
def save_report():
    """Persist an experiment's rendered report for inspection."""

    def _save(name: str, text: str) -> None:
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The reproductions are deterministic and seconds-long, so one round
    is the honest measurement (re-running would only re-profile the same
    seeded stream).
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def pytest_sessionfinish(session, exitstatus):
    """Publish the core-throughput numbers as a repo-root JSON artifact.

    Only the micro-benchmarks from ``test_core_throughput.py`` are
    machine-readable regression baselines; the experiment reproductions
    keep their human-readable ``_reports/*.txt`` instead.
    """
    benchsession = getattr(session.config, "_benchmarksession", None)
    if benchsession is None:
        return
    results = []
    for bench in getattr(benchsession, "benchmarks", []):
        if "test_core_throughput" not in getattr(bench, "fullname", ""):
            continue
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        results.append(
            {
                "name": bench.name,
                "mean_s": stats.mean,
                "min_s": stats.min,
                "max_s": stats.max,
                "stddev_s": stats.stddev,
                "rounds": stats.rounds,
                "ops_per_s": stats.ops,
            }
        )
    if not results:
        return
    payload = {
        "benchmark": "core_throughput",
        "source": "benchmarks/test_core_throughput.py",
        "events": 50_000,
        "units": "seconds",
        "results": sorted(results, key=lambda row: row["name"]),
    }
    CORE_THROUGHPUT_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
