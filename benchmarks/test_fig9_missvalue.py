"""Bench: Figure 9 — value locality of cache misses vs all loads."""

from conftest import run_once

from repro.experiments import fig9


def test_fig9_missvalue(benchmark, save_report):
    result = run_once(benchmark, fig9.run, events=200_000)
    save_report("fig9", result.render())
    order = result.locality_order()
    assert order.index("dl1_misses") < order.index("all_loads")
    assert order.index("dl2_misses") < order.index("all_loads")
