"""Bench: profile quality under TCAM capacity pressure."""

from conftest import run_once

from repro.experiments import capacity


def test_capacity_pressure(benchmark, save_report):
    result = run_once(benchmark, capacity.run, events=60_000)
    save_report("capacity", result.render())
    ample = result.rows[-1]
    assert ample.suppressed_splits == 0
    assert ample.hot_recall == 1.0
