"""Bench: Figure 6 — gcc code-profile tree size over time (eps = 10%)."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6_gcc_nodes(benchmark, save_report):
    result = run_once(benchmark, fig6.run, events=300_000)
    save_report("fig6", result.render())
    assert result.max_nodes <= 1_000  # paper: 453 max for gcc
    assert result.drops_at_merges >= len(result.merge_points) - 2
