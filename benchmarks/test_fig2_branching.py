"""Bench: Figure 2 — branching factor and merge-interval trade-offs."""

from conftest import run_once

from repro.experiments import fig2


def test_fig2_branching(benchmark, save_report):
    result = run_once(benchmark, fig2.run, events=60_000)
    save_report("fig2", result.render())
    assert result.chosen_branching == 4
    assert result.chosen_growth == 2.0
