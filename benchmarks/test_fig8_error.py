"""Bench: Figure 8 — percent error on hot ranges across the suite."""

from conftest import run_once

from repro.experiments import fig8


def test_fig8_error(benchmark, save_report):
    result = run_once(benchmark, fig8.run, events=150_000)
    save_report("fig8", result.render())
    assert result.average_accuracy("code", 0.10) >= 96.0   # paper ~98%
    assert result.average_accuracy("value", 0.10) >= 95.0  # paper ~96.6%
    assert result.worst_epsilon_error() <= 0.10
