"""Analytic area/delay/energy model of the RAP engine (Section 3.4).

The paper extracts component models from Cacti-3.2 and Orion at a
"very conservative" 0.18 µm technology and reports, for a 4096×36 TCAM
with a 16 KB SRAM data array:

* total area **24.73 mm²**;
* TCAM search critical path **7 ns**, reducible by byte/nibble pipelining
  until the **1.26 ns** SRAM stage dominates;
* worst-case energy **1.272 nJ** per event;
* a 400-node engine "more than a factor of 10" smaller in area and power.

We do not have Cacti/Orion, so this module provides per-component
closed-form models (linear cell arrays plus logarithmic decode/search
delays — the standard first-order shapes those tools produce) whose
constants are *calibrated* so the paper's configuration reproduces the
published numbers; the scaling laws then give the 400-node claim and
arbitrary other configurations. The calibration is explicit in the
constants below and checked by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# ----------------------------------------------------------------------
# Calibrated constants (0.18 um reference technology)
# ----------------------------------------------------------------------

REFERENCE_FEATURE_UM = 0.18

# Area (um^2 per unit at 0.18 um, periphery folded in)
TCAM_CELL_AREA_UM2 = 140.0          # per ternary cell (entry x width bit)
SRAM_BIT_AREA_UM2 = 28.0            # per data-array bit
ARBITER_LINE_AREA_UM2 = 90.0        # per priority line
FIXED_LOGIC_AREA_MM2 = 0.047        # comparator, threshold registers, glue

# Delay (ns)
TCAM_DELAY_BASE_NS = 1.0            # match-line precharge etc.
TCAM_DELAY_PER_LOG2_ENTRY_NS = 0.5  # priority/search depth term
SRAM_DELAY_BASE_NS = 0.42
SRAM_DELAY_PER_LOG2_BYTE_NS = 0.06
ARBITER_DELAY_PER_LOG2_LINE_NS = 0.07
COMPARATOR_DELAY_NS = 0.35

# Energy (nJ per event, worst-case switching)
TCAM_SEARCH_ENERGY_PER_CELL_NJ = 7.19e-6
SRAM_ACCESS_ENERGY_PER_BYTE_NJ = 5.493e-6   # per access (read or write)
ARBITER_ENERGY_PER_LINE_NJ = 7.3e-6
FIXED_LOGIC_ENERGY_NJ = 0.002


@dataclass(frozen=True)
class TechnologyNode:
    """First-order scaling from the 0.18 µm reference process.

    Area scales with feature size squared, delay linearly, and dynamic
    energy with feature size times the voltage ratio squared (CV²).
    """

    feature_um: float = 0.18
    voltage: float = 1.8

    def __post_init__(self) -> None:
        if self.feature_um <= 0 or self.voltage <= 0:
            raise ValueError("feature size and voltage must be positive")

    @property
    def area_scale(self) -> float:
        return (self.feature_um / REFERENCE_FEATURE_UM) ** 2

    @property
    def delay_scale(self) -> float:
        return self.feature_um / REFERENCE_FEATURE_UM

    @property
    def energy_scale(self) -> float:
        return (self.feature_um / REFERENCE_FEATURE_UM) * (
            self.voltage / 1.8
        ) ** 2


@dataclass(frozen=True)
class EngineCostConfig:
    """Sizing of one RAP engine instance."""

    tcam_entries: int = 4096
    tcam_width_bits: int = 36
    sram_bytes: int = 16 * 1024
    technology: TechnologyNode = TechnologyNode()

    def __post_init__(self) -> None:
        if self.tcam_entries < 1 or self.tcam_width_bits < 1:
            raise ValueError("TCAM dimensions must be positive")
        if self.sram_bytes < 1:
            raise ValueError("sram_bytes must be positive")


@dataclass(frozen=True)
class EngineCostReport:
    """Area, timing, and energy of one engine configuration."""

    config: EngineCostConfig
    tcam_area_mm2: float
    sram_area_mm2: float
    arbiter_area_mm2: float
    fixed_area_mm2: float
    tcam_delay_ns: float
    sram_delay_ns: float
    arbiter_delay_ns: float
    tcam_energy_nj: float
    sram_energy_nj: float
    arbiter_energy_nj: float
    fixed_energy_nj: float

    @property
    def total_area_mm2(self) -> float:
        return (
            self.tcam_area_mm2
            + self.sram_area_mm2
            + self.arbiter_area_mm2
            + self.fixed_area_mm2
        )

    @property
    def critical_path_ns(self) -> float:
        """Unpipelined clock: the TCAM search dominates (7 ns)."""
        return max(
            self.tcam_delay_ns,
            self.sram_delay_ns,
            self.arbiter_delay_ns,
            COMPARATOR_DELAY_NS * self.config.technology.delay_scale,
        )

    @property
    def pipelined_critical_path_ns(self) -> float:
        """Clock with the TCAM search byte/nibble-pipelined (Section 3.3):
        the critical path shifts to the SRAM stage (1.26 ns)."""
        return max(
            self.sram_delay_ns,
            self.arbiter_delay_ns,
            COMPARATOR_DELAY_NS * self.config.technology.delay_scale,
        )

    @property
    def clock_mhz(self) -> float:
        return 1e3 / self.critical_path_ns

    @property
    def pipelined_clock_mhz(self) -> float:
        return 1e3 / self.pipelined_critical_path_ns

    @property
    def energy_per_event_nj(self) -> float:
        """Worst-case energy per processed event (1.272 nJ in the paper)."""
        return (
            self.tcam_energy_nj
            + self.sram_energy_nj
            + self.arbiter_energy_nj
            + self.fixed_energy_nj
        )

    def events_per_second(self, cycles_per_event: float = 4.0) -> float:
        """Peak event throughput with the pipelined TCAM clock."""
        if cycles_per_event <= 0:
            raise ValueError("cycles_per_event must be positive")
        return self.pipelined_clock_mhz * 1e6 / cycles_per_event

    def power_watts(self, cycles_per_event: float = 4.0) -> float:
        """Worst-case dynamic power at peak throughput."""
        return (
            self.energy_per_event_nj
            * 1e-9
            * self.events_per_second(cycles_per_event)
        )


def estimate_costs(config: EngineCostConfig) -> EngineCostReport:
    """Evaluate the calibrated model for one engine configuration."""
    tech = config.technology
    cells = config.tcam_entries * config.tcam_width_bits
    sram_bits = config.sram_bytes * 8

    log2_entries = math.log2(max(2, config.tcam_entries))
    log2_bytes = math.log2(max(2, config.sram_bytes))

    return EngineCostReport(
        config=config,
        tcam_area_mm2=cells * TCAM_CELL_AREA_UM2 * 1e-6 * tech.area_scale,
        sram_area_mm2=sram_bits * SRAM_BIT_AREA_UM2 * 1e-6 * tech.area_scale,
        arbiter_area_mm2=(
            config.tcam_entries * ARBITER_LINE_AREA_UM2 * 1e-6 * tech.area_scale
        ),
        fixed_area_mm2=FIXED_LOGIC_AREA_MM2 * tech.area_scale,
        tcam_delay_ns=(
            (TCAM_DELAY_BASE_NS + TCAM_DELAY_PER_LOG2_ENTRY_NS * log2_entries)
            * tech.delay_scale
        ),
        sram_delay_ns=(
            (SRAM_DELAY_BASE_NS + SRAM_DELAY_PER_LOG2_BYTE_NS * log2_bytes)
            * tech.delay_scale
        ),
        arbiter_delay_ns=(
            ARBITER_DELAY_PER_LOG2_LINE_NS * log2_entries * tech.delay_scale
        ),
        tcam_energy_nj=cells * TCAM_SEARCH_ENERGY_PER_CELL_NJ * tech.energy_scale,
        sram_energy_nj=(
            2  # one read + one write per event (stage 3)
            * config.sram_bytes
            * SRAM_ACCESS_ENERGY_PER_BYTE_NJ
            * tech.energy_scale
        ),
        arbiter_energy_nj=(
            config.tcam_entries * ARBITER_ENERGY_PER_LINE_NJ * tech.energy_scale
        ),
        fixed_energy_nj=FIXED_LOGIC_ENERGY_NJ * tech.energy_scale,
    )


def paper_configuration() -> EngineCostConfig:
    """The paper's aggressive off-chip configuration (4096 ranges)."""
    return EngineCostConfig()


def small_configuration(nodes: int = 400) -> EngineCostConfig:
    """The paper's on-chip-sized engine ("a 400-node version").

    SRAM is scaled at the paper's 4 data bytes per entry.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    return EngineCostConfig(
        tcam_entries=nodes,
        tcam_width_bits=36,
        sram_bytes=nodes * 4,
    )
