"""Hardware model: the pipelined RAP engine and its cost model (Figure 4)."""

from .arbiter import PriorityArbiter
from .costmodel import (
    EngineCostConfig,
    EngineCostReport,
    TechnologyNode,
    estimate_costs,
    paper_configuration,
    small_configuration,
)
from .event_buffer import CombiningEventBuffer
from .pipeline import (
    EngineStats,
    HardwareParams,
    PipelinedRapEngine,
    RapTreeExport,
)
from .sram import CounterSram, SramFullError
from .trie import MultibitTrie, TrieEntry, range_to_prefix
from .tcam import (
    TcamEntry,
    TcamFullError,
    TernaryCam,
    entry_to_range,
    range_to_entry,
)

__all__ = [
    "CombiningEventBuffer",
    "CounterSram",
    "EngineCostConfig",
    "EngineCostReport",
    "EngineStats",
    "HardwareParams",
    "MultibitTrie",
    "PipelinedRapEngine",
    "PriorityArbiter",
    "RapTreeExport",
    "SramFullError",
    "TcamEntry",
    "TcamFullError",
    "TechnologyNode",
    "TernaryCam",
    "TrieEntry",
    "entry_to_range",
    "estimate_costs",
    "paper_configuration",
    "range_to_entry",
    "small_configuration",
    "range_to_prefix",
]
