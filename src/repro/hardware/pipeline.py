"""The pipelined RAP engine (Figure 4, Sections 3.3–3.4).

A cycle-level model of the 5-stage hardware profiler:

* **Stage 0** — combining event buffer
  (:class:`~repro.hardware.event_buffer.CombiningEventBuffer`);
* **Stage 1** — TCAM range match (:class:`~repro.hardware.tcam.TernaryCam`);
* **Stage 2** — fixed-priority arbiter picking the longest prefix
  (:class:`~repro.hardware.arbiter.PriorityArbiter`);
* **Stage 3** — SRAM counter increment
  (:class:`~repro.hardware.sram.CounterSram`);
* **Stage 4** — split comparator against the threshold register.

The engine implements the RAP algorithm *independently* of the software
tree — updates are resolved by TCAM search + arbitration, not by tree
descent — and the test suite checks that both produce identical profiles
for identical input. Splits flush the pipeline; merges batch with the
exponential schedule and stall the pipeline while rows are scanned; the
paper's headline throughput ("on an average, RAP requires 4 cycles to
process an event, and requires 2 cycles each for TCAM and SRAM accesses
per event") falls out of the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.config import (
    MergeScheduler,
    RapConfig,
    bits_for_range,
    split_crossing_point,
)
from ..core.node import partition_range
from .arbiter import PriorityArbiter
from .event_buffer import CombiningEventBuffer
from .sram import CounterSram
from .tcam import TernaryCam, range_to_entry


@dataclass(frozen=True)
class HardwareParams:
    """Physical configuration of the engine (the paper's Section 3.4).

    Defaults are the paper's aggressive off-chip configuration: a
    4096-entry TCAM with a 16 KB SRAM data array and a 1k-event
    combining buffer.
    """

    tcam_capacity: int = 4096
    counter_bits: int = 32
    buffer_capacity: int = 1024
    combine_events: bool = True
    pipeline_depth: int = 5
    tcam_cycles_per_event: int = 2
    sram_cycles_per_event: int = 2
    insert_cycles: int = 2
    delete_cycles: int = 2
    merge_scan_cycles_per_row: int = 1

    def __post_init__(self) -> None:
        if self.tcam_capacity < 1:
            raise ValueError("tcam_capacity must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")

    @property
    def update_cycles(self) -> int:
        """Cycles per ordinary update (the paper's 4: 2 TCAM + 2 SRAM)."""
        return self.tcam_cycles_per_event + self.sram_cycles_per_event


@dataclass
class EngineStats:
    """Cycle and operation accounting for one engine run."""

    events: int = 0
    records: int = 0
    update_cycles: int = 0
    split_stall_cycles: int = 0
    merge_stall_cycles: int = 0
    splits: int = 0
    suppressed_splits: int = 0
    reentries: int = 0
    merge_batches: int = 0
    nodes_merged: int = 0
    forced_merges: int = 0
    max_rows: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.update_cycles
            + self.split_stall_cycles
            + self.merge_stall_cycles
        )

    @property
    def cycles_per_event(self) -> float:
        if self.events == 0:
            return 0.0
        return self.total_cycles / self.events

    @property
    def cycles_per_record(self) -> float:
        if self.records == 0:
            return 0.0
        return self.total_cycles / self.records

    @property
    def stall_fraction(self) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return (self.split_stall_cycles + self.merge_stall_cycles) / total


class _HwNode:
    """Per-row metadata: the range, its SRAM slot, and tree links.

    The hardware keeps this in the SRAM data array next to the counter
    ("corresponding entries in the memory are inserted storing the
    counter and other information of the newly created nodes",
    Section 3.3) — 128 bits per node in the paper's budget.
    """

    __slots__ = ("lo", "hi", "slot", "parent", "children")

    def __init__(
        self, lo: int, hi: int, slot: int, parent: Optional["_HwNode"]
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.slot = slot
        self.parent = parent
        self.children: List[_HwNode] = []


class PipelinedRapEngine:
    """Hardware RAP: same algorithm, resolved through TCAM hardware."""

    def __init__(
        self,
        config: RapConfig,
        params: Optional[HardwareParams] = None,
    ) -> None:
        if config.range_max & (config.range_max - 1):
            raise ValueError(
                "hardware engine needs a power-of-two universe (prefix "
                f"ranges); got {config.range_max}"
            )
        if config.branching & (config.branching - 1):
            raise ValueError(
                "hardware engine needs a power-of-two branching factor; "
                f"got {config.branching}"
            )
        self.config = config
        self.params = params or HardwareParams()
        self.width_bits = bits_for_range(config.range_max)

        self.tcam = TernaryCam(self.params.tcam_capacity, self.width_bits)
        self.arbiter = PriorityArbiter(self.params.tcam_capacity)
        self.sram = CounterSram(
            self.params.tcam_capacity, self.params.counter_bits
        )
        self.buffer = CombiningEventBuffer(
            capacity=self.params.buffer_capacity,
            combine=self.params.combine_events,
        )
        self.stats = EngineStats()
        self._scheduler = MergeScheduler(
            initial_interval=config.merge_initial_interval,
            growth=config.merge_growth,
        )
        self._events = 0
        self._eps_over_height = config.epsilon / config.max_height
        self._min_threshold = config.min_split_threshold

        # Install the root range as the first row.
        root_slot = self.sram.allocate()
        self._root = _HwNode(0, config.range_max - 1, root_slot, parent=None)
        self._nodes: List[_HwNode] = [self._root]
        self.tcam.insert(range_to_entry(0, config.range_max - 1, self.width_bits))

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    @property
    def events(self) -> int:
        return self._events

    @property
    def threshold_register(self) -> float:
        """Current split/merge threshold (one shared register, stage 4)."""
        raw = self._eps_over_height * self._events
        return raw if raw > self._min_threshold else self._min_threshold

    def process_stream(self, events: Iterable[int]) -> EngineStats:
        """Run a raw event stream through stage 0 and the pipeline.

        Stage 1 is batched: each stage-0 window's TCAM winners are
        precomputed in one :meth:`~repro.hardware.tcam.TernaryCam.search_batch`
        matrix compare. Precomputed winners are valid only while the row
        table is unchanged, so consumption is gated on ``tcam.writes``;
        after any split or merge rewrite the remainder of the window is
        re-searched. Every record is still billed one TCAM access and
        one arbiter grant, so stats are bit-identical to the per-record
        loop (``tests/hardware/test_pipeline.py`` asserts this).
        """
        for window in self.buffer.windows(events):
            total = len(window)
            try:
                keys = np.fromiter(
                    (record[0] for record in window), np.uint64, total
                )
            except (OverflowError, TypeError, ValueError):
                # Out-of-domain values: let the scalar path raise its
                # usual validation errors in arrival order.
                for value, count in window:
                    self.process_record(value, count)
                continue
            start = 0
            lookahead = 8
            while start < total:
                version = self.tcam.writes
                stop = min(total, start + lookahead)
                winners = self.tcam.search_batch(keys[start:stop])
                index = start
                while index < stop and self.tcam.writes == version:
                    value, count = window[index]
                    self._process(value, count, int(winners[index - start]))
                    index += 1
                # Splits invalidate winners, so the lookahead adapts to
                # the split cadence: grow while batches drain cleanly,
                # reset when a rewrite discards precomputed work.
                if index == stop and self.tcam.writes == version:
                    lookahead = min(lookahead * 2, 1024)
                else:
                    lookahead = 8
                start = index
        return self.stats

    def process_record(self, value: int, count: int = 1) -> None:
        """One combined ``(value, count)`` record through stages 1–4.

        When the granted counter would blow past the threshold, the
        counter absorbs up to the threshold, the node splits, the
        pipeline flushes, and the remaining weight re-enters from the
        buffer and lands in the new child ("the pipeline will need to be
        flushed and reset to the point directly before where the split
        should have occurred. In this case the buffer will re-enter
        those events into the pipeline", Section 3.3) — mirroring the
        software tree's cascade exactly.
        """
        self._process(value, count, None)

    def _process(
        self, value: int, count: int, winner_row: Optional[int]
    ) -> None:
        """Stages 1–4 for one record, with an optional precomputed winner.

        ``winner_row`` (from :meth:`TernaryCam.search_batch`) replaces
        the first stage-1 search only; cascade re-entries always
        re-search because the row table may have changed underneath.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if not 0 <= value < self.config.range_max:
            raise ValueError(f"value {value} outside universe")

        self.stats.events += count
        self.stats.records += 1
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        scheduler = self._scheduler
        events = self._events

        remaining = count
        while True:
            if winner_row is None:
                # Stage 1: all covering ranges match in one TCAM search.
                matches = self.tcam.search(value)
                # Stage 2: the arbiter grants the longest prefix.
                winner = self.arbiter.grant(matches)
                assert winner is not None, "root row always matches"
            else:
                # Precomputed by search_batch — still one TCAM access
                # and one arbiter grant in hardware terms.
                winner = winner_row
                winner_row = None
                self.tcam.searches += 1
                self.arbiter.grants += 1
            node = self._nodes[winner]
            self.stats.update_cycles += self.params.update_cycles

            # Stage 3 + 4: counter update against the threshold register.
            # The register tracks the event total, so unit m of the run
            # sees threshold(events + m) — the same per-unit evaluation
            # as the software cascade, which keeps the two engines
            # bit-identical on counted records. Closed forms find the
            # next split or merge boundary so whole runs are absorbed
            # per SRAM access.
            current = self.sram.read(node.slot)
            next_at = scheduler.next_at
            m_merge = int(next_at - events)
            if events + m_merge < next_at:
                m_merge += 1
            if m_merge < 1:
                m_merge = 1
            m = remaining if remaining < m_merge else m_merge

            m_split = 0
            if node.lo != node.hi:
                cap_th = eps_h * (events + m)
                if cap_th < min_th:
                    cap_th = min_th
                if current + m > cap_th:
                    th1 = eps_h * (events + 1)
                    if th1 < min_th:
                        th1 = min_th
                    if current > int(th1):
                        # Over threshold before absorbing anything
                        # (merge churn re-deposited weight): split,
                        # flush, and re-enter the whole run.
                        if self._split(node):
                            self.stats.reentries += 1
                            continue
                        # Capacity exhausted: the run stays at this
                        # precision.
                        self.sram.write(node.slot, current + remaining)
                        events += remaining
                        self._events = events
                        if events >= next_at:
                            self._merge_batch()
                        break
                    m_split = split_crossing_point(
                        current, events, eps_h, min_th
                    )
                    if 0 < m_split < m:
                        m = m_split

            self.sram.write(node.slot, current + m)
            events += m
            remaining -= m
            self._events = events
            if m_split != 0 and m == m_split:
                if not self._split(node) and remaining:
                    # Capacity exhausted: the rest stays at this precision.
                    self.sram.write(
                        node.slot, self.sram.read(node.slot) + remaining
                    )
                    events += remaining
                    remaining = 0
                    self._events = events
            if events >= next_at:
                # Mid-record merge batches fire exactly where the
                # schedule puts them, as in the software tree.
                self._merge_batch()
            if not remaining:
                break
            # Pipeline flush (split or merge): the remainder re-enters
            # from the buffer.
            self.stats.reentries += 1

        self.stats.max_rows = max(self.stats.max_rows, len(self._nodes))

    # ------------------------------------------------------------------
    # Split (pipeline flush + TCAM/SRAM inserts)
    # ------------------------------------------------------------------

    def _split(self, node: _HwNode) -> bool:
        """Burst a node; returns False when TCAM capacity forbids it."""
        cells = partition_range(node.lo, node.hi, self.config.branching)
        existing = {(child.lo, child.hi) for child in node.children}
        missing = [cell for cell in cells if cell not in existing]
        if not missing:
            return True
        rows_needed = len(missing)
        if len(self._nodes) + rows_needed > self.params.tcam_capacity:
            # Capacity pressure: force an early merge batch to make room.
            self._merge_batch(forced=True)
            if len(self._nodes) + rows_needed > self.params.tcam_capacity:
                # Still no room: keep profiling at current precision.
                self.stats.suppressed_splits += 1
                return False
        stall = self.params.pipeline_depth
        for lo, hi in missing:
            slot = self.sram.allocate()
            child = _HwNode(lo, hi, slot, parent=node)
            # _HwNode rows mirror TCAM state, not the software tree; the
            # engine is its own (hardware) implementation of RAP.
            node.children.append(child)  # noqa: RAP-LINT003 - hardware's own row table
            row = self.tcam.insert(range_to_entry(lo, hi, self.width_bits))
            self._nodes.insert(row, child)
            stall += self.params.insert_cycles
        self.stats.splits += 1
        self.stats.split_stall_cycles += stall
        self.buffer.absorb_stall(stall)
        return True

    # ------------------------------------------------------------------
    # Merge (batched bottom-up TCAM scan)
    # ------------------------------------------------------------------

    def _merge_batch(self, forced: bool = False) -> None:
        """Scan rows bottom-up and collapse light subtrees.

        "Batch merges are initiated periodically and in every batch of
        merges entries in the TCAM are scanned bottom-up to find
        candidate nodes to be merged" (Section 3.3).
        """
        threshold = self.threshold_register
        scanned = len(self._nodes)
        removed = self._merge_subtree(self._root, threshold)
        stall = (
            scanned * self.params.merge_scan_cycles_per_row
            + removed * self.params.delete_cycles
        )
        self.stats.merge_stall_cycles += stall
        self.stats.merge_batches += 1
        self.stats.nodes_merged += removed
        if forced:
            self.stats.forced_merges += 1
        else:
            self._scheduler.fired(self._events)
        self.buffer.absorb_stall(stall)

    def _merge_subtree(self, node: _HwNode, threshold: float) -> int:
        removed = 0
        weight_total = self.sram.read(node.slot)
        kept: List[_HwNode] = []
        for child in node.children:
            removed += self._merge_subtree(child, threshold)
            child_weight = self._subtree_weight(child)
            weight_total += child_weight
            if child_weight <= threshold:
                # Fold the (now leaf) child into this node's counter.
                current = self.sram.read(node.slot)
                self.sram.write(node.slot, current + child_weight)
                self._remove_row(child)
                removed += 1
            else:
                kept.append(child)
        node.children = kept  # noqa: RAP-LINT003 - _HwNode row table
        return removed

    def _subtree_weight(self, node: _HwNode) -> int:
        total = self.sram.read(node.slot)
        for child in node.children:
            total += self._subtree_weight(child)
        return total

    def _remove_row(self, node: _HwNode) -> None:
        # The row table mirrors the TCAM exactly, so the node's position
        # IS its row; list.index on _HwNode compares by identity, which
        # avoids find_row's per-row TcamEntry equality scan.
        row = self._nodes.index(node)
        entry = self.tcam.rows[row]
        assert entry.matches(node.lo), "row table out of sync"
        self.tcam.delete(row)
        del self._nodes[row]
        self.sram.release(node.slot)
        node.parent = None

    # ------------------------------------------------------------------
    # Result extraction
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def counters(self) -> Dict[Tuple[int, int], int]:
        """Snapshot ``{(lo, hi): count}`` of every live range counter."""
        return {
            (node.lo, node.hi): self.sram.read(node.slot)
            for node in self._nodes
        }

    def to_software_tree(self) -> "RapTreeExport":
        """Export ranges/counters for comparison against the software tree."""
        return RapTreeExport(
            events=self._events,
            counters=self.counters(),
        )

    def check_invariants(self) -> None:
        """Row order, range nesting, and weight conservation checks."""
        self.tcam.check_sorted()
        assert len(self.tcam.rows) == len(self._nodes)
        total = 0
        for entry, node in zip(self.tcam.rows, self._nodes):
            assert entry.matches(node.lo), "row/node mismatch"
            total += self.sram.read(node.slot)
        assert total == self._events, (
            f"counter sum {total} != events {self._events}"
        )


@dataclass(frozen=True)
class RapTreeExport:
    """Flat snapshot of a profile: stream length plus range counters."""

    events: int
    counters: Dict[Tuple[int, int], int]

    def estimate(self, lo: int, hi: int) -> int:
        """Lower-bound estimate over the snapshot (sums contained ranges)."""
        return sum(
            count
            for (range_lo, range_hi), count in self.counters.items()
            if lo <= range_lo and range_hi <= hi
        )
