"""Multibit-trie range lookup — the paper's TCAM alternative.

Section 3.3: "while in this paper we assume a TCAM based approach, with
a branching factor of b, the tree is really a multibit trie and there
are a variety of techniques that can be used to build high speed
implementations from network algorithms [Srinivasan & Varghese,
controlled prefix expansion]".

This module implements that alternative: a fixed-stride multibit trie
with controlled prefix expansion. A RAP range (a binary prefix) whose
length is not a multiple of the stride is *expanded* into the
``2**(stride_boundary - length)`` longer prefixes that end exactly on a
stride boundary; lookup then walks a constant ``width / stride`` levels,
remembering the longest matching entry — no ternary cells, just SRAM
tables, at the cost of expansion memory.

Each slot keeps its (tiny) bucket of expanded entries sorted by original
prefix length, so deletions restore shadowed shorter prefixes without
any subtree rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TrieEntry:
    """One stored prefix: ``prefix_len`` leading bits of ``value``."""

    value: int
    prefix_len: int
    item: int                    # caller's id (e.g. a counter index)


class _TrieNode:
    __slots__ = ("children", "buckets")

    def __init__(self, fanout: int) -> None:
        self.children: List[Optional["_TrieNode"]] = [None] * fanout
        # slot -> entries expanded into that slot, longest-original first
        self.buckets: Dict[int, List[TrieEntry]] = {}


class MultibitTrie:
    """Fixed-stride longest-prefix-match structure over ``width_bits`` keys."""

    def __init__(self, width_bits: int, stride: int = 4) -> None:
        if width_bits < 1:
            raise ValueError(f"width_bits must be >= 1, got {width_bits}")
        if not 1 <= stride <= 16:
            raise ValueError(f"stride must be in [1, 16], got {stride}")
        if width_bits % stride:
            raise ValueError(
                f"stride {stride} must divide width {width_bits}"
            )
        self.width_bits = width_bits
        self.stride = stride
        self.fanout = 1 << stride
        self.levels = width_bits // stride
        self._root = _TrieNode(self.fanout)
        self._nodes = 1
        self._default: Optional[TrieEntry] = None  # the /0 prefix
        self.lookups = 0
        self.lookup_steps = 0
        self.expansions = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, entry: TrieEntry) -> None:
        """Store a prefix (with controlled expansion to stride boundaries)."""
        self._validate(entry)
        if entry.prefix_len == 0:
            self._default = entry
            return
        # Boundary the prefix expands to, and how many expansions.
        level = -(-entry.prefix_len // self.stride)  # ceil division
        boundary = level * self.stride
        expand_bits = boundary - entry.prefix_len
        base = entry.value >> (self.width_bits - boundary)
        for offset in range(1 << expand_bits):
            expanded = (base & ~((1 << expand_bits) - 1)) | offset
            self._insert_expanded(expanded, level, entry)
            self.expansions += 1

    def _insert_expanded(
        self, expanded: int, level: int, entry: TrieEntry
    ) -> None:
        node = self._root
        for depth in range(level - 1):
            slot = (expanded >> ((level - 1 - depth) * self.stride)) & (
                self.fanout - 1
            )
            child = node.children[slot]
            if child is None:
                child = _TrieNode(self.fanout)
                node.children[slot] = child
                self._nodes += 1
            node = child
        slot = expanded & (self.fanout - 1)
        bucket = node.buckets.setdefault(slot, [])
        bucket.append(entry)
        bucket.sort(key=lambda item: item.prefix_len, reverse=True)

    def delete(self, entry: TrieEntry) -> None:
        """Remove a previously inserted prefix (all its expansions)."""
        self._validate(entry)
        if entry.prefix_len == 0:
            if self._default != entry:
                raise KeyError(f"default entry {entry} not present")
            self._default = None
            return
        level = -(-entry.prefix_len // self.stride)
        boundary = level * self.stride
        expand_bits = boundary - entry.prefix_len
        base = entry.value >> (self.width_bits - boundary)
        for offset in range(1 << expand_bits):
            expanded = (base & ~((1 << expand_bits) - 1)) | offset
            node = self._walk(expanded, level)
            if node is None:
                raise KeyError(f"entry {entry} not present")
            bucket = node.buckets.get(expanded & (self.fanout - 1), [])
            try:
                bucket.remove(entry)
            except ValueError:
                raise KeyError(f"entry {entry} not present") from None

    def _walk(self, expanded: int, level: int) -> Optional[_TrieNode]:
        node = self._root
        for depth in range(level - 1):
            slot = (expanded >> ((level - 1 - depth) * self.stride)) & (
                self.fanout - 1
            )
            child = node.children[slot]
            if child is None:
                return None
            node = child
        return node

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def longest_match(self, key: int) -> Optional[TrieEntry]:
        """The stored prefix with the most leading bits matching ``key``.

        Walks at most ``levels`` tables — the constant-time property the
        paper wants from a pipelined hardware lookup.
        """
        if not 0 <= key < (1 << self.width_bits):
            raise ValueError(f"key {key} wider than {self.width_bits} bits")
        self.lookups += 1
        best = self._default
        node: Optional[_TrieNode] = self._root
        for depth in range(self.levels):
            if node is None:
                break
            self.lookup_steps += 1
            slot = (key >> (self.width_bits - (depth + 1) * self.stride)) & (
                self.fanout - 1
            )
            bucket = node.buckets.get(slot)
            if bucket:
                candidate = bucket[0]  # longest original prefix first
                if self._matches(candidate, key):
                    if best is None or candidate.prefix_len > best.prefix_len:
                        best = candidate
            node = node.children[slot]
        return best

    def _matches(self, entry: TrieEntry, key: int) -> bool:
        if entry.prefix_len == 0:
            return True
        shift = self.width_bits - entry.prefix_len
        return (key >> shift) == (entry.value >> shift)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self._nodes

    def stored_entries(self) -> int:
        """Expanded slot entries currently held (memory proxy)."""
        total = 1 if self._default is not None else 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += sum(len(bucket) for bucket in node.buckets.values())
            stack.extend(child for child in node.children if child is not None)
        return total

    def memory_bytes(self, pointer_bytes: int = 4, entry_bytes: int = 8) -> int:
        """First-order SRAM footprint: child tables plus slot entries."""
        return (
            self._nodes * self.fanout * pointer_bytes
            + self.stored_entries() * entry_bytes
        )

    @property
    def average_lookup_steps(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.lookup_steps / self.lookups

    def _validate(self, entry: TrieEntry) -> None:
        if not 0 <= entry.prefix_len <= self.width_bits:
            raise ValueError(
                f"prefix_len {entry.prefix_len} outside [0, {self.width_bits}]"
            )
        if not 0 <= entry.value < (1 << self.width_bits):
            raise ValueError(f"value {entry.value:#x} wider than key")


def range_to_prefix(lo: int, hi: int, width_bits: int) -> Tuple[int, int]:
    """``(value, prefix_len)`` of an aligned power-of-two range.

    The trie twin of :func:`repro.hardware.tcam.range_to_entry`.
    """
    width = hi - lo + 1
    if width <= 0 or width & (width - 1):
        raise ValueError(
            f"range [{lo:#x}, {hi:#x}] width {width} is not a power of two"
        )
    if lo % width:
        raise ValueError(f"range [{lo:#x}, {hi:#x}] is not aligned")
    prefix_len = width_bits - (width.bit_length() - 1)
    if prefix_len < 0:
        raise ValueError("range wider than the key")
    return lo, prefix_len
