"""Ternary CAM model (pipeline stage 1).

"For every point fetched from the buffer, we need to find the set of
ranges that include that point. This operation is very similar to the
Longest Prefix Match and can be carried out in constant time with a
Ternary CAM" (Section 3.3). RAP ranges produced by power-of-two b-ary
splits of a power-of-two universe are binary prefixes, so each range is
one TCAM entry ``(value, mask)``.

"In order to figure out the smallest range which is also the longest
prefix, the TCAM entries have to be partially sorted by prefix length" —
this model keeps rows sorted by ascending prefix length so the *last*
matching row is the longest prefix, which is what the priority arbiter
selects. "There can never be matches from two different entries of the
same range width" (ranges of equal width are disjoint), an invariant the
model asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TcamEntry:
    """One ternary row: ``key`` matches iff ``key & mask == value``.

    ``prefix_bits`` is the number of fixed (non-wildcard) leading bits;
    a longer prefix means a smaller range.
    """

    value: int
    mask: int
    prefix_bits: int

    def matches(self, key: int) -> bool:
        return (key & self.mask) == self.value


def range_to_entry(lo: int, hi: int, width_bits: int) -> TcamEntry:
    """Encode the aligned power-of-two range ``[lo, hi]`` as a TCAM entry.

    Raises ``ValueError`` for ranges that are not binary prefixes — the
    hardware engine only ever produces prefix ranges (power-of-two
    universe, power-of-two branching).
    """
    width = hi - lo + 1
    if width <= 0 or width & (width - 1):
        raise ValueError(
            f"range [{lo:#x}, {hi:#x}] width {width} is not a power of two"
        )
    if lo % width:
        raise ValueError(f"range [{lo:#x}, {hi:#x}] is not aligned to its width")
    wildcard_bits = width.bit_length() - 1
    prefix_bits = width_bits - wildcard_bits
    if prefix_bits < 0:
        raise ValueError(
            f"range [{lo:#x}, {hi:#x}] wider than the {width_bits}-bit key"
        )
    mask = ((1 << width_bits) - 1) & ~(width - 1)
    return TcamEntry(value=lo, mask=mask, prefix_bits=prefix_bits)


def entry_to_range(entry: TcamEntry, width_bits: int) -> Tuple[int, int]:
    """Decode a TCAM entry back to its ``[lo, hi]`` range."""
    width = 1 << (width_bits - entry.prefix_bits)
    return entry.value, entry.value + width - 1


def _array_insert(arr: "np.ndarray", index: int, value: int) -> "np.ndarray":
    """``np.insert`` without its axis bookkeeping — three slice copies."""
    out = np.empty(arr.size + 1, dtype=arr.dtype)
    out[:index] = arr[:index]
    out[index] = value
    out[index + 1:] = arr[index:]
    return out


def _array_delete(arr: "np.ndarray", index: int) -> "np.ndarray":
    """``np.delete`` without its axis bookkeeping — two slice copies."""
    out = np.empty(arr.size - 1, dtype=arr.dtype)
    out[:index] = arr[:index]
    out[index:] = arr[index + 1:]
    return out


class TernaryCam:
    """A capacity-limited TCAM with prefix-length-ordered rows.

    Row order is the priority order: the arbiter grants the highest
    matching row index, i.e. the longest prefix. Inserting a row shifts
    later rows (tracked for cycle accounting, like a real sorted TCAM
    doing hole management).
    """

    def __init__(self, capacity: int, width_bits: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if width_bits < 1:
            raise ValueError(f"width_bits must be >= 1, got {width_bits}")
        self.capacity = capacity
        self.width_bits = width_bits
        self.rows: List[TcamEntry] = []
        self.searches = 0
        self.insert_shifts = 0
        self.writes = 0
        # Vectorized mirror of the rows: all cells compare in parallel in
        # real hardware, and numpy is the software analogue of that. The
        # mirror is maintained incrementally on insert/delete — an O(rows)
        # memcpy, exactly the shift a sorted TCAM performs physically.
        self._values = np.empty(0, dtype=np.uint64)
        self._masks = np.empty(0, dtype=np.uint64)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def full(self) -> bool:
        return len(self.rows) >= self.capacity

    def search(self, key: int) -> List[int]:
        """Indices of all matching rows, in priority (prefix) order.

        This is the parallel compare of every TCAM cell; one search is
        one access regardless of how many rows match.
        """
        self.searches += 1
        hits = np.uint64(key) & self._masks == self._values
        matches = np.flatnonzero(hits).tolist()
        # Invariant from the paper: one match per distinct range width.
        assert len({self.rows[i].prefix_bits for i in matches}) == len(matches), (
            "two matching entries share a prefix length"
        )
        return matches

    def search_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Longest-prefix winner row for each key, in one matrix compare.

        Rows are sorted by ascending prefix length, so the winner is the
        *last* matching row — the row the priority arbiter would grant.
        The caller accounts one TCAM access and one arbiter grant per
        record it actually consumes (winners computed ahead of a row
        rewrite are discarded, not billed), keeping the cycle accounting
        identical to per-record :meth:`search`. The per-search distinct
        prefix-length assertion lives on the scalar path only.

        Winners are a *snapshot*: any :meth:`insert`/:meth:`delete`
        bumps ``writes`` and invalidates them, so callers must gate
        consumption on ``writes`` staying unchanged.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        hits = (keys[:, None] & self._masks[None, :]) == self._values[None, :]
        return self._values.size - 1 - np.argmax(hits[:, ::-1], axis=1)

    def insert(self, entry: TcamEntry) -> int:
        """Insert keeping rows sorted by ascending prefix length.

        Returns the row index. Counts the shifted rows — the physical
        cost a sorted TCAM pays on insertion.
        """
        if self.full:
            raise TcamFullError(
                f"TCAM at capacity {self.capacity}; merge before splitting"
            )
        low, high = 0, len(self.rows)
        while low < high:
            mid = (low + high) // 2
            if self.rows[mid].prefix_bits <= entry.prefix_bits:
                low = mid + 1
            else:
                high = mid
        self.rows.insert(low, entry)
        self.insert_shifts += len(self.rows) - low - 1
        self.writes += 1
        self._values = _array_insert(self._values, low, entry.value)
        self._masks = _array_insert(self._masks, low, entry.mask)
        return low

    def delete(self, index: int) -> TcamEntry:
        """Remove and return the row at ``index``."""
        entry = self.rows.pop(index)
        self.writes += 1
        if index < 0:
            index += len(self.rows) + 1
        self._values = _array_delete(self._values, index)
        self._masks = _array_delete(self._masks, index)
        return entry

    def find_row(self, entry: TcamEntry) -> Optional[int]:
        """Row index of an exact entry, if present."""
        try:
            return self.rows.index(entry)
        except ValueError:
            return None

    def check_sorted(self) -> None:
        """Assert the prefix-length ordering invariant."""
        for first, second in zip(self.rows, self.rows[1:]):
            assert first.prefix_bits <= second.prefix_bits, (
                "TCAM rows out of prefix order"
            )


class TcamFullError(RuntimeError):
    """Raised when an insert is attempted on a full TCAM."""
