"""Fixed-priority arbiter (pipeline stage 2).

"Given N match lines in order, sorted by prefix length, finding the
longest match is simply a matter of giving highest priority to longest
matches and allowing only one match to proceed. This is exactly the
function of a fixed priority N x 1 arbiter" (Section 3.3). Because TCAM
rows are sorted by ascending prefix length, the highest matching row
index is the longest prefix, i.e. the smallest covering range.
"""

from __future__ import annotations

from typing import List, Optional


class PriorityArbiter:
    """An N×1 fixed-priority arbiter over TCAM match lines."""

    def __init__(self, lines: int) -> None:
        if lines < 1:
            raise ValueError(f"lines must be >= 1, got {lines}")
        self.lines = lines
        self.grants = 0

    def grant(self, match_lines: List[int]) -> Optional[int]:
        """The single granted line: the highest-index match, or None.

        ``match_lines`` are the asserted line indices (any order); the
        arbiter drives exactly one output word line.
        """
        self.grants += 1
        winner: Optional[int] = None
        for line in match_lines:
            if not 0 <= line < self.lines:
                raise ValueError(
                    f"match line {line} outside arbiter width {self.lines}"
                )
            if winner is None or line > winner:
                winner = line
        return winner
