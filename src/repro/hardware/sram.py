"""SRAM counter array (pipeline stage 3).

"Once the smallest range match has been found, we simply need to update
the appropriate counter. To handle a continuous stream of data to the
array, one read port and one write port is needed" (Section 3.3). The
paper's configuration is a 16 KB data array backing a 4096-entry TCAM —
32 bits of counter per entry (the remaining per-node state lives in the
same row's metadata; Section 4.2 budgets 128 bits per node in total).

Counters saturate rather than wrap, and saturation is counted — a
profile must never silently lose weight.
"""

from __future__ import annotations

from typing import List


class CounterSram:
    """A slot-allocated counter array with read/write accounting."""

    def __init__(self, slots: int, counter_bits: int = 32) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if counter_bits < 1:
            raise ValueError(f"counter_bits must be >= 1, got {counter_bits}")
        self.slots = slots
        self.counter_bits = counter_bits
        self.max_value = (1 << counter_bits) - 1
        self._values: List[int] = [0] * slots
        self._free: List[int] = list(range(slots - 1, -1, -1))
        self.reads = 0
        self.writes = 0
        self.saturations = 0

    @property
    def allocated(self) -> int:
        return self.slots - len(self._free)

    @property
    def full(self) -> bool:
        return not self._free

    def allocate(self) -> int:
        """Claim a free slot (initialized to zero); returns its index."""
        if not self._free:
            raise SramFullError(f"all {self.slots} counter slots in use")
        slot = self._free.pop()
        self._values[slot] = 0
        self.writes += 1
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list."""
        self._check(slot)
        self._free.append(slot)

    def read(self, slot: int) -> int:
        self._check(slot)
        self.reads += 1
        return self._values[slot]

    def write(self, slot: int, value: int) -> None:
        self._check(slot)
        if value > self.max_value:
            value = self.max_value
            self.saturations += 1
        if value < 0:
            raise ValueError("counters are unsigned")
        self._values[slot] = value
        self.writes += 1

    def increment(self, slot: int, amount: int = 1) -> int:
        """Read-modify-write one counter; returns the new value."""
        current = self.read(slot)
        updated = current + amount
        self.write(slot, updated)
        return min(updated, self.max_value)

    def total_bytes(self) -> int:
        """Data-array size in bytes (16 KB in the paper's configuration)."""
        return self.slots * self.counter_bits // 8

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} outside SRAM of {self.slots} slots")


class SramFullError(RuntimeError):
    """Raised when allocation is attempted with no free slots."""
