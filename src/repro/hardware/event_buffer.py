"""Combining event buffer (pipeline stage 0).

"The small buffer shown at stage 0 stores incoming points... It is quite
possible to make this buffer pre-process the points by combining
identical events. We have observed that a 1k buffer can reduce the
throughput requirements on RAP by a factor of 10 for code profiling"
(Section 3.3). The buffer also absorbs events while the pipeline stalls
for splits and merge batches.

The model works in windows of ``capacity`` events: duplicates within a
window are combined into one ``(value, count)`` record, which is what
the RAP engine then processes. ``combining_factor`` is the paper's
throughput-reduction metric.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np


class CombiningEventBuffer:
    """FIFO event window that merges duplicate events.

    Also tracks occupancy pressure from pipeline stalls: while the
    engine is stalled, arriving events accumulate; the high-water mark
    shows whether ``capacity`` suffices for the stall lengths seen.
    """

    def __init__(
        self,
        capacity: int = 1024,
        combine: bool = True,
        sort_records: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.combine = combine
        self.sort_records = sort_records
        self.events_in = 0
        self.records_out = 0
        self.high_water = 0
        self._backlog = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------

    def windows(
        self, events: Iterable[int]
    ) -> Iterator[List[Tuple[int, int]]]:
        """Yield the stream as windows of combined ``(value, count)`` records.

        Each window covers ``capacity`` raw events (the buffer filling
        once). With combining disabled every event is its own record.

        Materialised integer streams (lists, tuples, arrays) combine
        each window with one ``np.unique`` pass — the software analogue
        of the buffer's CAM cells comparing in parallel. Generic
        iterables and values outside the uint64 domain take the scalar
        path; both produce identical windows and identical stats.
        """
        if isinstance(events, (list, tuple, np.ndarray)):
            try:
                arr = np.asarray(events)
            except (OverflowError, TypeError, ValueError):
                arr = None
            # Only genuine non-negative integer arrays qualify: floats,
            # big ints (object dtype), and negatives keep the exact
            # scalar semantics instead of being silently coerced.
            if (
                arr is not None
                and arr.ndim == 1
                and arr.dtype.kind in "iu"
                and (
                    arr.dtype.kind == "u"
                    or arr.size == 0
                    or int(arr.min()) >= 0
                )
            ):
                yield from self._windows_vector(
                    arr.astype(np.uint64, copy=False)
                )
                return
        window: Dict[int, int] = {}
        ordered: List[int] = []
        filled = 0
        for value in events:
            self.events_in += 1
            if self.combine:
                if value in window:
                    window[value] += 1
                else:
                    window[value] = 1
                    ordered.append(value)
            else:
                ordered.append(value)
            filled += 1
            if filled >= self.capacity:
                yield self._flush(window, ordered)
                window = {}
                ordered = []
                filled = 0
        if filled:
            yield self._flush(window, ordered)

    def _windows_vector(
        self, arr: "np.ndarray"
    ) -> Iterator[List[Tuple[int, int]]]:
        """Vectorized ``windows``: one ``np.unique`` per full buffer."""
        capacity = self.capacity
        for start in range(0, arr.size, capacity):
            chunk = arr[start:start + capacity]
            self.events_in += int(chunk.size)
            if self.combine:
                uniq, first, counts = np.unique(
                    chunk, return_index=True, return_counts=True
                )
                if self.sort_records:
                    records = list(zip(uniq.tolist(), counts.tolist()))
                else:
                    # First-occurrence order, matching the scalar path.
                    order = np.argsort(first, kind="stable")
                    records = list(
                        zip(uniq[order].tolist(), counts[order].tolist())
                    )
                occupancy = int(uniq.size)
            else:
                values = chunk.tolist()
                if self.sort_records:
                    values.sort()
                records = [(value, 1) for value in values]
                occupancy = len(values)
            self.records_out += len(records)
            self.high_water = max(self.high_water, occupancy)
            yield records

    def _flush(
        self, window: Dict[int, int], ordered: List[int]
    ) -> List[Tuple[int, int]]:
        if self.combine:
            records = [(value, window[value]) for value in ordered]
        else:
            records = [(value, 1) for value in ordered]
        if self.sort_records:
            # Drain the window in address order, like a CAM read out by
            # ascending match line. Value-adjacent records tend to share
            # covering tree nodes, so sorted drains raise the engine's
            # descent-cache hit rate; opt-in because it reorders records
            # relative to arrival and so changes profile evolution.
            records.sort()
        self.records_out += len(records)
        self.high_water = max(self.high_water, len(ordered))
        return records

    # ------------------------------------------------------------------
    # Stall pressure accounting
    # ------------------------------------------------------------------

    def absorb_stall(self, cycles: int, arrival_rate: float = 1.0) -> None:
        """Account events arriving while the pipeline is stalled.

        ``arrival_rate`` is events per cycle from the profiled source.
        The backlog drains as the pipeline resumes; the high-water mark
        records the worst pressure.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._backlog += int(cycles * arrival_rate)
        self.high_water = max(self.high_water, min(self._backlog, self.capacity))

    def drain_backlog(self, cycles: int, service_rate: float = 1.0) -> None:
        """Drain stall backlog at ``service_rate`` records per cycle."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._backlog = max(0, self._backlog - int(cycles * service_rate))

    @property
    def backlog(self) -> int:
        return self._backlog

    @property
    def overflowed(self) -> bool:
        """Whether stall pressure ever exceeded the buffer capacity."""
        return self.high_water >= self.capacity

    @property
    def combining_factor(self) -> float:
        """Raw events per record reaching the engine (the "10x" claim)."""
        if self.records_out == 0:
            return 1.0
        return self.events_in / self.records_out
