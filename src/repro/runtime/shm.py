"""Shared-memory column arena for the process executor.

Every :class:`~repro.core.columnar.ColumnarRapTree` column is exactly
one contiguous numpy array, which is precisely the shape
``multiprocessing.shared_memory`` hands out: a shard worker builds its
tree with :class:`ShmArena` as the column allocator, so every column —
and every ``_grow`` remap — lands in a ``SharedMemory`` segment the
parent can map by name. Snapshot folds then attach the quiesced
worker's segments read-only (:class:`ShmAttachment`) and wrap them via
``ColumnarRapTree.attach_columns`` without copying a single column.

This module is the **only** place in the package that may touch
``multiprocessing.shared_memory`` directly (RAP-LINT024 enforces
this), because the stdlib's lifecycle needs three corrections that
must not be scattered around call sites:

* **Ownership is manual.** CPython's ``resource_tracker`` registers
  every segment on *both* create and attach (3.9–3.12), then unlinks
  registered segments when the first process exits — which would tear
  shared columns out from under a still-running sibling and spam
  ``KeyError`` warnings at shutdown. Both sides here unregister
  immediately and own unlink explicitly: the worker unlinks what it
  created, the parent sweeps the name prefix as a crash backstop
  (:func:`sweep_prefix`).
* **Grow is remap, not resize.** POSIX shared memory cannot grow a
  mapping in place portably, so ``_grow`` re-allocates every column
  and copies the live prefix. The arena is a *slab* allocator: each
  ``SharedMemory`` segment is a bump-allocated slab holding many
  column regions (segment creation is three syscalls plus tracker
  traffic — per column per generation it dominated worker ingest), and
  a slab is retired only when its last live column has been remapped
  away: *unlinked immediately* (Linux keeps the mapping alive until
  the last unmap, so grow-copies still read it) but *closed only at
  quiescent points* (``reap_retired`` on sync, or ``close``). Closing
  earlier would unmap under the tree's feet: ``SharedMemory.close``
  only sees memoryview exports, and a numpy array built over
  ``segment.buf`` is **not** one — close unmaps immediately and the
  next column read is a segfault, not an exception.
* **Names are the contract.** Slabs are named ``<prefix>slab-g<n>``;
  the worker ships the current column table (slab name, dtype,
  capacity, byte offset) to the parent in its sync frame, and the
  parent never guesses — except in :func:`sweep_prefix`, which
  deliberately matches the whole prefix so even slabs orphaned
  mid-grow by a crash are reclaimed.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ShmArena", "ShmAttachment", "sweep_prefix"]

#: Where Linux exposes POSIX shared memory as files; the crash-backstop
#: sweep works on this directory directly so it needs no attach dance.
_SHM_DIR = "/dev/shm"


def _disown(shm: shared_memory.SharedMemory) -> shared_memory.SharedMemory:
    """Remove ``shm`` from the resource tracker's cleanup list.

    The tracker would otherwise unlink the segment when *any* process
    that touched it exits — exactly wrong for segments whose lifetime
    this module manages explicitly. Best-effort: a tracker that never
    saw the name (or is already gone at interpreter teardown) is fine.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001 - _name is the tracker-registered key; no public accessor exists
    except Exception:
        pass
    return shm


#: Smallest slab, in bytes. A fresh tree's full column set (thirteen
#: columns at the initial capacity) fits in one slab, and doubling from
#: here keeps a worker's lifetime segment count logarithmic in its peak
#: footprint — the whole point of slab allocation (see module
#: docstring).
_SLAB_MIN = 1 << 18

#: Column regions start on cache-line boundaries.
_ALIGN = 64


class ShmArena:
    """Worker-side slab allocator placing tree columns in shared memory.

    Pass :meth:`allocate` as the ``allocator=`` hook of
    :class:`~repro.core.columnar.ColumnarRapTree`: each call carves a
    zero-filled, cache-line-aligned region for the column out of the
    current slab segment, creating a new (doubled) slab when the
    current one is exhausted. A repeat call for the same column (a
    ``_grow`` remap) vacates the column's old region; when a slab's
    last region is vacated, the slab is retired — unlinked at once,
    closed only when :meth:`reap_retired` runs at a quiescent point
    (the caller's ``_grow`` still reads old arrays for the prefix
    copies *after* ``allocate`` returns, and close() would unmap them
    mid-copy).
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        # Slabs by index; retired entries become None. Parallel lists
        # hold each slab's byte size and live-region count.
        self._slabs: List[Optional[shared_memory.SharedMemory]] = []
        self._slab_size: List[int] = []
        self._slab_live: List[int] = []
        self._current = -1  # index of the bump slab, -1 before the first
        self._bump = 0  # next free byte offset in the bump slab
        # column name -> (slab index, byte offset, dtype, capacity).
        self._columns: Dict[str, Tuple[int, int, np.dtype, int]] = {}
        # Unlinked slabs awaiting a quiescent-point close (reap_retired);
        # closing any earlier unmaps memory the tree's grow-copy may
        # still be reading.
        self._retired: List[shared_memory.SharedMemory] = []
        self._closed = False

    def _retire_slab(self, index: int) -> None:
        segment = self._slabs[index]
        self._slabs[index] = None
        _unlink_quietly(segment)
        self._retired.append(segment)

    def allocate(self, name: str, dtype: np.dtype, capacity: int) -> np.ndarray:
        """Create (or grow-remap) the column ``name``; zero-filled."""
        if self._closed:
            raise RuntimeError(f"ShmArena {self.prefix!r} is closed")
        dtype = np.dtype(dtype)
        nbytes = max(1, capacity * dtype.itemsize)
        if (
            self._current < 0
            or self._slab_size[self._current] - self._bump < nbytes
        ):
            size = _SLAB_MIN
            if self._current >= 0:
                size = max(size, 2 * self._slab_size[self._current])
            while size < nbytes:
                size *= 2
            segment = _disown(
                shared_memory.SharedMemory(
                    name=f"{self.prefix}slab-g{len(self._slabs)}",
                    create=True,
                    size=size,
                )
            )
            if self._current >= 0 and self._slab_live[self._current] == 0:
                # The outgoing bump slab was fully vacated by earlier
                # remaps in this grow pass; it only survived as the
                # bump target.
                self._retire_slab(self._current)
            self._current = len(self._slabs)
            self._slabs.append(segment)
            self._slab_size.append(size)
            self._slab_live.append(0)
            self._bump = 0
        index = self._current
        offset = self._bump
        self._bump = -(-(offset + nbytes) // _ALIGN) * _ALIGN
        self._slab_live[index] += 1
        previous = self._columns.get(name)
        self._columns[name] = (index, offset, dtype, capacity)
        if previous is not None:
            # The caller still holds the old array for the prefix copy;
            # if this vacated its slab, unlink now (the mapping survives
            # until unmapped) and close once the buffer export is gone.
            old_index = previous[0]
            self._slab_live[old_index] -= 1
            if self._slab_live[old_index] == 0 and old_index != index:
                self._retire_slab(old_index)
        array = np.ndarray(
            capacity, dtype=dtype, buffer=self._slabs[index].buf, offset=offset
        )
        # Bump regions are never reused, so fresh slabs hand out zero
        # pages — but the allocator contract says zero-filled, so make
        # it unconditional.
        array.fill(0)
        return array

    def segment_table(self) -> Dict[str, Tuple[str, str, int, int]]:
        """Current ``column -> (slab name, dtype str, capacity, offset)``.

        Plain strings and ints — the shape that crosses the pipe in a
        worker's sync frame for :class:`ShmAttachment` to consume.
        """
        return {
            name: (self._slabs[index].name, dtype.str, capacity, offset)
            for name, (index, offset, dtype, capacity)
            in self._columns.items()
        }

    def reap_retired(self) -> None:
        """Close retired slabs; call only when the tree is quiescent.

        After a ``_grow`` completes, the tree holds no reference into
        any retired slab (columns replaced, views rebound), so at a
        quiescent point — a worker sync, with no ingest in flight —
        the mappings can close safely. ``close()`` unmaps even under
        live numpy views (see module docstring), which is exactly why
        this must never run between an ``allocate`` and the end of the
        grow-copy that follows it.
        """
        still = []
        for segment in self._retired:
            try:
                segment.close()
            except (BufferError, ValueError):
                still.append(segment)
        self._retired = still

    def close(self) -> None:
        """Unlink every slab this arena ever created.

        Unlink is the part that matters for leaks — the backing memory
        of any mapping that cannot be closed yet (live ndarray views)
        is released when the process unmaps it at exit.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._slabs:
            if segment is None:
                continue
            _unlink_quietly(segment)
            try:
                segment.close()
            except (BufferError, ValueError):
                pass
        for segment in self._retired:
            try:
                segment.close()
            except (BufferError, ValueError):
                pass
        self._slabs.clear()
        self._slab_size.clear()
        self._slab_live.clear()
        self._columns.clear()
        self._retired.clear()


class ShmAttachment:
    """Parent-side read-only mapping of a worker's segment table.

    Attaches each named slab once (columns share slabs) and exposes
    ``column -> ndarray`` views at their recorded offsets;
    :meth:`close` drops the mappings (never unlinks — the worker owns
    segment lifetime while it lives). Callers must drop every
    array/tree reference derived from :attr:`arrays` before closing,
    or the stdlib raises ``BufferError``; close therefore swallows
    that error and leaves such mappings to process exit.
    """

    def __init__(self, table: Dict[str, Tuple[str, str, int, int]]) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self.arrays: Dict[str, np.ndarray] = {}
        attached: Dict[str, shared_memory.SharedMemory] = {}
        try:
            for column, (slab_name, dtype_str, capacity, offset) in (
                table.items()
            ):
                segment = attached.get(slab_name)
                if segment is None:
                    segment = _disown(
                        shared_memory.SharedMemory(name=slab_name)
                    )
                    attached[slab_name] = segment
                    self._segments.append(segment)
                self.arrays[column] = np.ndarray(
                    capacity,
                    dtype=np.dtype(dtype_str),
                    buffer=segment.buf,
                    offset=offset,
                )
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        """Unmap the attached segments (best-effort, never unlink)."""
        self.arrays = {}
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:
                # A derived view outlived the fold; the mapping falls
                # with the process, and unlink is the worker's job.
                pass
        self._segments = []


def _unlink_quietly(segment: shared_memory.SharedMemory) -> None:
    # unlink() unregisters the name with the resource tracker, but
    # _disown already did — re-register first so the pair balances and
    # the tracker process does not spam KeyError at shutdown.
    try:
        resource_tracker.register(segment._name, "shared_memory")  # noqa: SLF001 - _name is the tracker-registered key; no public accessor exists
    except Exception:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def sweep_prefix(prefix: str) -> List[str]:
    """Unlink every leftover ``/dev/shm`` entry under ``prefix``.

    The parent's crash backstop: normally workers unlink their own
    segments and this finds nothing, but a SIGKILLed worker (or a
    crash between a grow's create and retire) leaves named segments
    behind. Returns the names it removed. No-op on platforms without
    a ``/dev/shm`` view of POSIX shared memory.
    """
    removed: List[str] = []
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return removed
    for entry in entries:
        if entry.startswith(prefix):
            try:
                os.unlink(os.path.join(_SHM_DIR, entry))
            except OSError:
                continue
            removed.append(entry)
    return removed
