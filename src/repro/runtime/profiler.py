"""The ``Profiler`` service object: sharded ingestion over RAP trees.

``Profiler`` is the API v2 top-level entry point for profiling a
stream. It owns ``N`` shard trees, a deterministic partitioner mapping
each event value to its shard, and (in the threaded executor) one
worker thread per shard fed through a bounded :class:`ShardQueue`:

.. code-block:: text

    ingest(values)                       coordinating thread
        └─ partition + duplicate-combine (numpy, one pass)
             ├─ queue[0] ── worker 0 ── RapTree shard 0   (confined)
             ├─ queue[1] ── worker 1 ── RapTree shard 1   (confined)
             └─ ...
    snapshot()  =  quiesce every queue, then fold the shard trees
                   with ``combine_many`` into one consistent tree

Lifecycle: ``open() → ingest()* → snapshot()* → close()``; the object
is also a context manager. ``query(lo, hi)`` is sugar for
``snapshot().estimate(lo, hi)`` (snapshots are cached per epoch, so
repeated queries between ingests fold only once).

Consistency model: a snapshot is taken on an *epoch boundary* — new
ingests are locked out, every accepted batch is drained, and only then
are the shard trees folded. The snapshot therefore reflects exactly the
events accepted before the call, no torn batches. Under the ``block``
and ``spill`` backpressure policies the shard trees (and hence every
snapshot) are a deterministic function of the ingested stream; ``drop``
trades that determinism for bounded memory and latency.

Accuracy: each shard undercounts by at most ``eps_shard * n_shard``, so
the folded snapshot undercounts any range by at most
``eps_shard * n_total`` (see :func:`repro.core.combine.combine_many`).
By default shards inherit ``config.epsilon`` and the single-tree bound
``epsilon * n`` carries over verbatim — at the cost of shards splitting
~``N`` times more aggressively in aggregate (each sees ``n/N`` events
against the same epsilon). Passing ``shard_epsilon = N * epsilon``
instead holds the *total* node budget at the single-tree level (each
shard's budget guards ``n/N`` events), with the documented snapshot
bound relaxing to ``shard_epsilon * n_total``.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import RapConfig
from ..core.combine import combine_many
from ..core.tree import RapTree
from .metrics import RuntimeMetrics, ShardMetrics
from .partition import Partitioner, make_partitioner
from .queues import Batch, ShardQueue

Clock = Callable[[], float]
Values = Union[np.ndarray, Iterable[int]]

_EXECUTORS = ("serial", "thread")


class Profiler:
    """Sharded, concurrent RAP profiling service.

    Parameters
    ----------
    config:
        Tree configuration; ``config.epsilon`` is the accuracy target of
        the folded snapshot (see ``shard_epsilon`` for the trade-off).
    shards:
        Number of shard trees (``>= 1``).
    executor:
        ``"thread"`` (default) runs one worker thread per shard behind
        bounded queues; ``"serial"`` processes every batch inline on the
        calling thread — deterministic scheduling, no queues, the mode
        the deprecation shim and oracle tests use.
    partition:
        ``"hash"`` (default) or ``"range"`` — see
        :mod:`repro.runtime.partition`.
    shard_epsilon:
        Epsilon each shard profiles at. ``None`` (default) inherits
        ``config.epsilon`` — strict bound, ~N× aggregate node budget.
        ``N * config.epsilon`` keeps the single-tree node budget with an
        ``shard_epsilon * n`` snapshot bound (the equal-memory config
        the multi-shard benchmark uses).
    queue_capacity / backpressure:
        Bounds and overflow policy of each shard queue (threaded
        executor only) — ``"block"`` / ``"drop"`` / ``"spill"``, see
        :mod:`repro.runtime.queues`.
    batch_size:
        Ingest calls chop their input into chunks of this many events
        before partitioning, bounding queue memory per slot.
    clock:
        Optional zero-arg callable returning seconds (e.g.
        ``time.perf_counter`` passed *as a function*). When provided,
        time-shaped metrics are recorded; when ``None`` they stay
        ``0.0`` and every metric is deterministic.
    """

    def __init__(
        self,
        config: RapConfig,
        *,
        shards: int = 1,
        executor: str = "thread",
        partition: str = "hash",
        shard_epsilon: Optional[float] = None,
        queue_capacity: int = 8,
        backpressure: str = "block",
        batch_size: int = 4096,
        clock: Optional[Clock] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._config = config
        self._shards = shards
        self._executor = executor
        self._partitioner: Partitioner = make_partitioner(
            partition, shards, config.range_max
        )
        shard_config = config
        if shard_epsilon is not None:
            shard_config = config.with_updates(epsilon=shard_epsilon)
        self._shard_config = shard_config
        self._batch_size = batch_size
        self._clock = clock
        self._trees: List[RapTree] = [
            RapTree.from_config(shard_config) for _ in range(shards)
        ]
        self._queues: List[ShardQueue] = []
        self._workers: List[threading.Thread] = []
        if executor == "thread":
            self._queues = [
                ShardQueue(queue_capacity, backpressure)
                for _ in range(shards)
            ]
        # created → open → closed
        self._state = "created"
        # Serializes producers against snapshot epochs.
        self._ingest_lock = threading.Lock()
        # Optional race sanitizer: wraps the trees, queues and the
        # ingest lock with confinement/lock-discipline assertions.
        self._sanitizer = None
        if config.debug_sanitize:
            # Lazy import: checks.sanitizer is a debug facility and the
            # runtime must stay importable without the checks package.
            from ..checks.sanitizer import RapSanitizer

            self._sanitizer = RapSanitizer()
            self._ingest_lock = self._sanitizer.track_lock(
                self._ingest_lock, "Profiler._ingest_lock"
            )
            for index, tree in enumerate(self._trees):
                self._sanitizer.attach_tree(tree, f"shard[{index}]")
            for index, queue in enumerate(self._queues):
                self._sanitizer.attach_queue(queue, f"queue[{index}]")
        self._errors: List[BaseException] = []
        # Per-shard accepted-event / batch counters (producer side).
        self._shard_events = [0] * shards
        self._shard_batches = [0] * shards
        self._snapshots = 0
        self._snapshot_seconds = 0.0
        self._ingest_seconds = 0.0
        self._snapshot_cache: Optional[RapTree] = None
        self._snapshot_epoch: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_config(cls, config: RapConfig, **options: object) -> "Profiler":
        """API v2 constructor; ``options`` are the keyword knobs above."""
        return cls(config, **options)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def config(self) -> RapConfig:
        return self._config

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def closed(self) -> bool:
        return self._state == "closed"

    @property
    def sanitizer(self):
        """The attached RapSanitizer, or None when ``debug_sanitize`` is off."""
        return self._sanitizer

    def open(self) -> "Profiler":
        """Start the runtime (spawns workers under the threaded executor)."""
        if self._state != "created":
            raise RuntimeError(f"cannot open a {self._state} Profiler")
        self._state = "open"
        for shard in range(len(self._queues)):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"rap-shard-{shard}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()
        return self

    def __enter__(self) -> "Profiler":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        if self._state == "open":
            self.close()

    def close(self) -> RapTree:
        """Drain every shard, stop workers, return the final snapshot.

        After ``close()`` the profiler accepts no more events;
        ``snapshot()`` and ``query()`` keep answering from the final
        fold.
        """
        if self._state == "closed":
            assert self._snapshot_cache is not None
            return self._snapshot_cache
        if self._state != "open":
            raise RuntimeError("cannot close a Profiler that was never opened")
        with self._ingest_lock:
            for queue in self._queues:
                queue.close()
            for worker in self._workers:
                worker.join()  # noqa: RAP-LINT016 - workers never take this lock
            self._raise_worker_errors()
            self._state = "closed"
            for tree in self._trees:
                tree.unconfine()
            return self._fold_locked()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, values: Values) -> None:
        """Feed raw event values (any iterable of ints or numpy array).

        Values are chopped into chunks of ``batch_size``, partitioned to
        shards, duplicate-combined per shard (``np.unique``), and either
        enqueued to the shard workers (threaded) or applied inline
        (serial). Returns once every chunk is accepted — which, under
        ``block`` backpressure, may wait for queue space.
        """
        self._check_ingestible()
        array = np.asarray(
            values if isinstance(values, np.ndarray) else list(values)
        )
        clock = self._clock
        start = clock() if clock is not None else 0.0
        with self._ingest_lock:
            self._check_ingestible()
            step = self._batch_size
            for at in range(0, len(array), step):
                self._dispatch_chunk(array[at:at + step])
        if clock is not None:
            self._ingest_seconds += clock() - start

    def ingest_counted(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed pre-combined ``(value, count)`` pairs."""
        self._check_ingestible()
        items = list(pairs)
        clock = self._clock
        start = clock() if clock is not None else 0.0
        with self._ingest_lock:
            self._check_ingestible()
            shard_of = self._partitioner.shard_of
            buckets: List[List[Tuple[int, int]]] = [
                [] for _ in range(self._shards)
            ]
            for value, count in items:
                buckets[shard_of(int(value))].append((int(value), int(count)))
            for shard, bucket in enumerate(buckets):
                if bucket:
                    weight = sum(count for _, count in bucket)
                    self._submit(shard, bucket, weight)
        if clock is not None:
            self._ingest_seconds += clock() - start

    def _dispatch_chunk(self, chunk: np.ndarray) -> None:
        if self._shards == 1 and self._executor == "serial":
            # Single-shard passthrough: no partition, no combine — the
            # same per-event path a bare tree takes (and the honest
            # baseline the multi-shard benchmark compares against).
            tree = self._trees[0]
            tree.extend(int(value) for value in chunk)
            self._shard_events[0] += len(chunk)
            self._shard_batches[0] += 1
            return
        for shard, batch in enumerate(
            self._partitioner.split_counted(chunk)
        ):
            if batch:
                weight = sum(count for _, count in batch)
                self._submit(shard, batch, weight)

    def _submit(self, shard: int, batch: Batch, weight: int) -> None:
        if self._executor == "serial":
            self._trees[shard].add_batch(batch)
            self._shard_events[shard] += weight
            self._shard_batches[shard] += 1
            return
        disposition = self._queues[shard].put(  # noqa: RAP-LINT016 - consumers never take this lock
            batch, weight
        )
        if disposition != "dropped":
            self._shard_events[shard] += weight
            self._shard_batches[shard] += 1
        self._raise_worker_errors()

    def _worker_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        tree = self._trees[shard]
        tree.confine_to_current_thread()
        failed = False
        while True:
            # One take drains the main queue plus any spill backlog as a
            # single FIFO-ordered, per-constituent-sorted batch, so the
            # whole backlog rides one add_counted fast-path run instead
            # of a take/ingest/ack round-trip per batch. Observably
            # identical to add_batch per constituent (see take_combined).
            batch = queue.take_combined()
            if batch is None:
                return
            if not failed:
                try:
                    tree.add_counted(batch)
                except BaseException as error:  # surfaced to producers
                    self._errors.append(error)
                    failed = True
            queue.task_done()

    def _check_ingestible(self) -> None:
        if self._state != "open":
            hint = " (call open() first)" if self._state == "created" else ""
            raise RuntimeError(
                f"cannot ingest into a {self._state} Profiler{hint}"
            )
        self._raise_worker_errors()

    def _raise_worker_errors(self) -> None:
        if self._errors:
            raise RuntimeError(
                "shard worker failed while ingesting"
            ) from self._errors[0]

    # ------------------------------------------------------------------
    # Snapshots and queries
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Wait until every accepted batch is applied to its shard tree.

        A quiesce without the fold: after ``drain()`` returns, the shard
        trees reflect every event accepted so far, but no snapshot is
        built. Useful to bound ingest latency measurements and to make
        backpressure deterministic before reading :attr:`metrics`.
        """
        if self._state != "open":
            raise RuntimeError("cannot drain a Profiler that is not open")
        with self._ingest_lock:
            for queue in self._queues:
                queue.join()  # noqa: RAP-LINT016 - drain locks out producers; workers never take this lock
            self._raise_worker_errors()

    def snapshot(self) -> RapTree:
        """Fold every shard into one consistent tree (epoch boundary).

        Locks out new ingests, drains every accepted batch, then folds
        the shard trees with :func:`~repro.core.combine.combine_many`.
        The result is independent of the live shards (single-shard
        profiles are cloned) and cached: repeated snapshots with no
        intervening ingest return the same tree without re-folding.
        """
        if self._state == "closed":
            assert self._snapshot_cache is not None
            return self._snapshot_cache
        if self._state != "open":
            raise RuntimeError("cannot snapshot a Profiler that is not open")
        with self._ingest_lock:
            for queue in self._queues:
                queue.join()  # noqa: RAP-LINT016 - epoch boundary locks out producers; workers never take this lock
            self._raise_worker_errors()
            return self._fold_locked()

    def _fold_locked(self) -> RapTree:
        if self._sanitizer is not None:
            self._sanitizer.begin_fold("Profiler._ingest_lock")
        epoch = tuple(tree.mutation_generation for tree in self._trees)
        if (
            self._snapshot_cache is not None
            and epoch == self._snapshot_epoch
        ):
            if self._sanitizer is not None:
                self._sanitizer.end_fold()
            return self._snapshot_cache
        clock = self._clock
        start = clock() if clock is not None else 0.0
        if len(self._trees) == 1:
            folded = self._trees[0].clone()
        else:
            folded = combine_many(self._trees)
        if clock is not None:
            self._snapshot_seconds += clock() - start
        self._snapshots += 1
        self._snapshot_cache = folded
        self._snapshot_epoch = epoch
        if self._sanitizer is not None:
            self._sanitizer.end_fold()
        return folded

    def query(self, lo: int, hi: int) -> int:
        """Lower-bound estimate of events in ``[lo, hi]`` (snapshot sugar)."""
        return self.snapshot().estimate(lo, hi)

    def hot_ranges(self, hot_fraction: float = 0.1) -> List[Tuple[int, int, int]]:
        """Hot-range report over the current snapshot.

        Returns ``(lo, hi, estimate)`` for every snapshot leaf whose
        estimated weight is at least ``hot_fraction`` of the total,
        heaviest first — the report ``rap_finalize`` historically
        printed, now answered from the folded snapshot.
        """
        tree = self.snapshot()
        threshold = hot_fraction * tree.events
        ranges = [
            (node.lo, node.hi, node.subtree_weight())
            for node in tree.nodes()
            if node.is_leaf and node.subtree_weight() >= threshold
        ]
        ranges.sort(key=lambda item: (-item[2], item[0]))
        return ranges

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> RuntimeMetrics:
        """Current per-shard and aggregate runtime metrics."""
        shards: List[ShardMetrics] = []
        for index, tree in enumerate(self._trees):
            stats = tree.stats
            entry = ShardMetrics(
                shard=index,
                events=self._shard_events[index],
                batches=self._shard_batches[index],
                splits=stats.splits,
                merge_batches=stats.merge_batches,
                node_count=tree.node_count,
            )
            if self._queues:
                queue = self._queues[index]
                entry.dropped_batches = queue.dropped_batches
                entry.dropped_events = queue.dropped_events
                entry.spilled_batches = queue.spilled_batches
                entry.max_queue_depth = queue.max_depth
            shards.append(entry)
        return RuntimeMetrics(
            shards=shards,
            snapshots=self._snapshots,
            snapshot_seconds=self._snapshot_seconds,
            ingest_seconds=self._ingest_seconds,
        )

    def shard_trees(self) -> Sequence[RapTree]:
        """The live shard trees (read-only view; do not mutate)."""
        return tuple(self._trees)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Profiler(shards={self._shards}, executor={self._executor!r}, "
            f"state={self._state!r}, events={sum(self._shard_events)})"
        )
