"""The ``Profiler`` service object: sharded ingestion over RAP trees.

``Profiler`` is the API v2 top-level entry point for profiling a
stream. It owns ``N`` shard trees, a deterministic partitioner mapping
each event value to its shard, and — depending on the executor — a
worker thread or worker *process* per shard fed through a bounded
:class:`ShardQueue`:

.. code-block:: text

    ingest(values)                       coordinating thread
        └─ partition + duplicate-combine (numpy, one pass)
             ├─ queue[0] ── worker 0 ── RapTree shard 0   (confined)
             ├─ queue[1] ── worker 1 ── RapTree shard 1   (confined)
             └─ ...
    snapshot()  =  quiesce every queue, then fold the shard trees
                   with ``combine_many`` into one consistent tree

The executor is selected uniformly through the config —
``RapConfig(executor="serial"|"thread"|"process", shards=N)`` — with
the constructor keywords as call-site overrides:

* ``"serial"`` applies every batch inline on the calling thread.
* ``"thread"`` (default) runs one worker thread per shard; shard trees
  live in this process, thread-confined.
* ``"process"`` runs one worker *process* per shard (requires
  ``backend="columnar"``): each worker owns a columnar tree whose
  columns live in shared memory (:mod:`repro.runtime.shm`), fed
  array-shaped counted frames over a pipe by a per-shard feeder thread
  that drains the same bounded :class:`ShardQueue` — so the
  block/drop/spill backpressure discipline, dispositions and metrics
  are identical across executors. Snapshots attach the quiesced
  workers' columns zero-copy and fold them in the parent (serialized
  exchange as fallback when shared memory is unavailable).

Lifecycle: ``open() → ingest()* → snapshot()* → close()``; the object
is also a context manager. ``query(lo, hi)`` is sugar for
``snapshot().estimate(lo, hi)`` (snapshots are cached per epoch, so
repeated queries between ingests fold only once). ``close()`` reaps
every worker — threads joined, processes exited and their
shared-memory segments unlinked — on all paths, including after a
worker failure.

Consistency model: a snapshot is taken on an *epoch boundary* — new
ingests are locked out, every accepted batch is drained (and, under
the process executor, every worker acknowledges a sync marker that
trails its batches in pipe order), and only then are the shard trees
folded. The snapshot therefore reflects exactly the events accepted
before the call, no torn batches. Under the ``block`` and ``spill``
backpressure policies the shard trees (and hence every snapshot) are a
deterministic function of the ingested stream; ``drop`` trades that
determinism for bounded memory and latency.

Accuracy: each shard undercounts by at most ``eps_shard * n_shard``, so
the folded snapshot undercounts any range by at most
``eps_shard * n_total`` (see :func:`repro.core.combine.combine_many`).
By default shards inherit ``config.epsilon`` and the single-tree bound
``epsilon * n`` carries over verbatim — at the cost of shards splitting
~``N`` times more aggressively in aggregate (each sees ``n/N`` events
against the same epsilon). Passing ``shard_epsilon = N * epsilon``
instead holds the *total* node budget at the single-tree level (each
shard's budget guards ``n/N`` events), with the documented snapshot
bound relaxing to ``shard_epsilon * n_total``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import warnings
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.config import RapConfig
from ..core.combine import combine_many
from ..core.serialize import FRAME_BATCH, FRAME_CBATCH
from ..core.tree import RapTree
from .metrics import RuntimeMetrics, ShardMetrics
from .partition import Partitioner, make_partitioner
from .queues import Batch, ShardQueue
from .ring import (
    DEFAULT_RING_BYTES,
    MIN_RING_BYTES,
    RingProducer,
    RingStalled,
)
from .shm import ShmArena, ShmAttachment, sweep_prefix

Clock = Callable[[], float]
Values = Union[np.ndarray, Iterable[int]]

_EXECUTORS = ("serial", "thread", "process")

#: How long (seconds) to poll a live worker for a protocol reply before
#: re-checking liveness, and how long to wait for voluntary exit before
#: escalating to terminate/kill. Generous — a live worker replies as
#: soon as it drains the frames ahead of the request.
_POLL_INTERVAL = 0.1
_EXIT_GRACE = 5.0

#: Value dtypes the binary frame format carries natively.
_FRAME_DTYPES = (np.dtype("<u8"), np.dtype("<i8"), np.dtype("<f8"))


def _frame_values(part: np.ndarray) -> np.ndarray:
    """Coerce a partitioned slice to a frame-encodable dtype.

    Workload arrays are already ``uint64`` and pass through untouched;
    plain Python lists arrive as ``int64`` (also native). Anything else
    — ``int32``, object arrays of Python ints — is widened once here.
    Values the tree would reject (negatives, non-integers) still flow
    through and fail inside the worker exactly as the pipe transport's
    pickled frames would, except out-of-``int64``-range object arrays,
    which are re-tried as ``uint64``.
    """
    if part.dtype in _FRAME_DTYPES:
        return part
    if part.dtype.kind == "u":
        return part.astype(np.uint64)
    try:
        return part.astype(np.int64)
    except OverflowError:
        return part.astype(np.uint64)


class WorkerCrashed(RuntimeError):
    """A shard worker process died without completing the protocol.

    Raised by ``drain()``/``snapshot()``/``close()`` instead of hanging
    when a worker was killed (OOM, SIGKILL, crash): carries the shard
    index and exit code so the failure is diagnosable from the message.
    Under the ring transport it also carries the ring's frame counters
    — ``committed`` frames published by the producer and ``consumed``
    frames the worker had taken — pinpointing exactly how far the
    shard's stream got before the crash.
    """

    def __init__(
        self,
        shard: int,
        exitcode: Optional[int],
        doing: str,
        *,
        committed: Optional[int] = None,
        consumed: Optional[int] = None,
    ):
        self.shard = shard
        self.exitcode = exitcode
        self.committed = committed
        self.consumed = consumed
        detail = ""
        if committed is not None:
            detail = (
                f" Ring state at death: {committed} frames committed by "
                f"the producer, {consumed} consumed by the worker."
            )
        super().__init__(
            f"shard {shard} worker process died while {doing} "
            f"(exit code {exitcode}); its accepted events are lost — "
            "the profiler cannot produce a consistent snapshot. "
            "Check worker memory limits and logs; shared-memory "
            "segments are reclaimed on close()." + detail
        )


class Profiler:
    """Sharded, concurrent RAP profiling service.

    Parameters
    ----------
    config:
        Tree configuration; ``config.epsilon`` is the accuracy target of
        the folded snapshot (see ``shard_epsilon`` for the trade-off).
        ``config.executor`` and ``config.shards`` are the declarative
        defaults for the two runtime knobs below.
    shards:
        Number of shard trees (``>= 1``). ``None`` (default) inherits
        ``config.shards``.
    executor:
        ``None`` (default) inherits ``config.executor``. ``"thread"``
        runs one worker thread per shard behind bounded queues;
        ``"serial"`` processes every batch inline on the calling thread
        — deterministic scheduling, no queues, the mode the deprecation
        shim and oracle tests use; ``"process"`` runs one worker
        process per shard over shared-memory columnar trees (requires
        ``backend="columnar"``).
    threads:
        Deprecated alias from the thread-only runtime: ``threads=N``
        means ``shards=N, executor="thread"``. Emits a
        ``DeprecationWarning``; use ``shards=``/``executor=`` (or the
        config fields) instead.
    partition:
        ``"hash"`` (default) or ``"range"`` — see
        :mod:`repro.runtime.partition`.
    shard_epsilon:
        Epsilon each shard profiles at. ``None`` (default) inherits
        ``config.epsilon`` — strict bound, ~N× aggregate node budget.
        ``N * config.epsilon`` keeps the single-tree node budget with an
        ``shard_epsilon * n`` snapshot bound (the equal-memory config
        the multi-shard benchmark uses).
    queue_capacity / backpressure:
        Bounds and overflow policy of the per-shard transport —
        ``"block"`` / ``"drop"`` / ``"spill"``. Under the thread
        executor (and the process executor's pipe transport) the policy
        lives on each bounded :class:`ShardQueue`; under the ring
        transport the same policy vocabulary, dispositions and
        counters apply to the shared-memory ring directly
        (``queue_capacity`` is then unused — the bound is
        ``ring_bytes``). See :mod:`repro.runtime.queues` and
        :mod:`repro.runtime.ring`.
    batch_size:
        Ingest calls chop their input into chunks of this many events
        before partitioning, bounding queue memory per slot.
    transport:
        Process-executor frame transport: ``"ring"`` (shared-memory
        SPSC ring buffers carrying binary counted frames — the
        default, zero pickle on the data path) or ``"pipe"``
        (pickle-framed pipes fed by feeder threads). ``None``
        (default) inherits ``config.transport``. Ignored by the
        serial and thread executors. If POSIX shared memory turns out
        to be unavailable at ``open()``, the profiler falls back to
        ``"pipe"`` automatically.
    ring_bytes:
        Size of each shard's shared ring region under the ring
        transport (counter header included). The default (4 MiB)
        comfortably holds several worker combining windows; tests use
        small rings to exercise wrap-around and backpressure.
    clock:
        Optional zero-arg callable returning seconds (e.g.
        ``time.perf_counter`` passed *as a function*). When provided,
        time-shaped metrics are recorded; when ``None`` they stay
        ``0.0`` and every metric is deterministic.
    """

    def __init__(
        self,
        config: RapConfig,
        *,
        shards: Optional[int] = None,
        executor: Optional[str] = None,
        threads: Optional[int] = None,
        partition: str = "hash",
        shard_epsilon: Optional[float] = None,
        queue_capacity: int = 8,
        backpressure: str = "block",
        batch_size: int = 4096,
        transport: Optional[str] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        clock: Optional[Clock] = None,
    ) -> None:
        if threads is not None:
            warnings.warn(
                "Profiler(threads=N) is deprecated; use "
                "Profiler(config, shards=N, executor='thread') or set "
                "RapConfig(shards=N, executor='thread')",
                DeprecationWarning,
                stacklevel=2,
            )
            if shards is None:
                shards = threads
            if executor is None:
                executor = "thread"
        if shards is None:
            shards = config.shards
        if executor is None:
            executor = config.executor
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if transport is None:
            transport = config.transport
        if ring_bytes < MIN_RING_BYTES:
            raise ValueError(
                f"ring_bytes must be >= {MIN_RING_BYTES}, got {ring_bytes}"
            )
        # Route the resolved knobs through the config's own validation
        # so every executor/backend/transport combination fails with one
        # message (notably executor='process' + backend='object').
        config.with_updates(
            executor=executor, shards=shards, transport=transport
        )
        self._config = config
        self._shards = shards
        self._executor = executor
        self._transport = transport
        self._backpressure = backpressure
        self._ring_bytes = ring_bytes
        self._partitioner: Partitioner = make_partitioner(
            partition, shards, config.range_max
        )
        shard_config = config
        if shard_epsilon is not None:
            shard_config = config.with_updates(epsilon=shard_epsilon)
        self._shard_config = shard_config
        self._batch_size = batch_size
        self._clock = clock
        # In-process shard trees (serial and thread executors). Under
        # the process executor the trees live in the workers; the
        # parent holds per-shard sync state instead.
        self._trees: List[RapTree] = []
        if executor != "process":
            self._trees = [
                RapTree.from_config(shard_config) for _ in range(shards)
            ]
        self._queues: List[ShardQueue] = []
        if executor in ("thread", "process"):
            self._queues = [
                ShardQueue(queue_capacity, backpressure)
                for _ in range(shards)
            ]
        self._workers: List[threading.Thread] = []
        # Process-executor plumbing: one worker process + duplex pipe
        # per shard (plus, under the pipe transport, a feeder thread),
        # plus the latest synced payload. Under the ring transport the
        # parent owns one ring arena + producer per shard; the final
        # producer stats survive teardown for post-close metrics.
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._conns: List = []
        self._ring_arenas: List[ShmArena] = []
        self._rings: List[RingProducer] = []
        self._ring_tables: List[Optional[Dict[str, object]]] = []
        self._ring_stats: List[Optional[Dict[str, object]]] = [
            None for _ in range(shards)
        ]
        self._shard_states: List[Optional[Dict[str, object]]] = [
            None for _ in range(shards)
        ]
        # Namespace for this profiler's shared-memory segments; close()
        # sweeps it as a crash backstop, so it must exist before open().
        self._shm_prefix = f"rap-{os.getpid():x}-{os.urandom(3).hex()}-"
        # created → open → closed
        self._state = "created"
        # Serializes producers against snapshot epochs.
        self._ingest_lock = threading.Lock()
        # Optional race sanitizer: wraps the trees, queues and the
        # ingest lock with confinement/lock-discipline assertions. The
        # process executor runs one more sanitizer *inside* each worker
        # (trees in another address space cannot be wrapped from here)
        # and merges their reports on every sync.
        self._sanitizer = None
        if config.debug_sanitize:
            # Lazy import: checks.sanitizer is a debug facility and the
            # runtime must stay importable without the checks package.
            from ..checks.sanitizer import RapSanitizer

            self._sanitizer = RapSanitizer()
            self._ingest_lock = self._sanitizer.track_lock(
                self._ingest_lock, "Profiler._ingest_lock"
            )
            for index, tree in enumerate(self._trees):
                self._sanitizer.attach_tree(tree, f"shard[{index}]")
            for index, queue in enumerate(self._queues):
                self._sanitizer.attach_queue(queue, f"queue[{index}]")
        self._errors: List[BaseException] = []
        # Per-shard accepted-event / batch counters (producer side).
        self._shard_events = [0] * shards
        self._shard_batches = [0] * shards
        self._snapshots = 0
        self._snapshot_seconds = 0.0
        self._ingest_seconds = 0.0
        self._snapshot_cache: Optional[RapTree] = None
        self._snapshot_epoch: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_config(cls, config: RapConfig, **options: object) -> "Profiler":
        """API v2 constructor; ``options`` are the keyword knobs above."""
        return cls(config, **options)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def config(self) -> RapConfig:
        return self._config

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def executor(self) -> str:
        """The resolved executor this profiler runs on."""
        return self._executor

    @property
    def transport(self) -> str:
        """The resolved frame transport (``"ring"`` or ``"pipe"``).

        Meaningful under the process executor only; after ``open()``
        this reflects any fallback from ring to pipe.
        """
        return self._transport

    @property
    def closed(self) -> bool:
        return self._state == "closed"

    @property
    def sanitizer(self):
        """The attached RapSanitizer, or None when ``debug_sanitize`` is off."""
        return self._sanitizer

    def open(self) -> "Profiler":
        """Start the runtime (spawns workers under thread/process executors)."""
        if self._state != "created":
            raise RuntimeError(f"cannot open a {self._state} Profiler")
        if self._executor == "process":
            if self._transport == "ring":
                self._setup_rings()  # may fall back to the pipe transport
            self._spawn_processes()
        self._state = "open"
        if self._executor == "process" and self._transport == "ring":
            # Ring transport: the dispatching thread writes frames
            # straight into each shard's ring — no feeder threads, no
            # queue hop, no pickle. The queues stay constructed but
            # idle (close() and drain() treat them uniformly).
            return self
        for shard in range(len(self._queues)):
            worker = threading.Thread(
                target=(
                    self._feeder_loop
                    if self._executor == "process"
                    else self._worker_loop
                ),
                args=(shard,),
                name=f"rap-shard-{shard}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()
        return self

    def _setup_rings(self) -> None:
        """Allocate one shared ring region + producer per shard.

        Runs before the workers fork so both sides see the segments.
        If this host has no usable POSIX shared memory the profiler
        silently falls back to the pipe transport — the same probe the
        workers run for their column arenas.
        """
        try:
            for shard in range(self._shards):
                arena = ShmArena(f"{self._shm_prefix}r{shard}-")
                self._ring_arenas.append(arena)
                region = arena.allocate("ring", np.uint8, self._ring_bytes)
                self._rings.append(
                    RingProducer(
                        region,
                        policy=self._backpressure,
                        liveness=self._worker_alive(shard),
                        on_wake=self._nudger(shard),
                        clock=self._clock,
                    )
                )
                self._ring_tables.append(arena.segment_table())
        except OSError:
            self._teardown_rings(keep_stats=False)
            self._transport = "pipe"

    def _worker_alive(self, shard: int) -> Callable[[], bool]:
        def alive() -> bool:
            if shard >= len(self._processes):
                return True  # not spawned yet — nothing to be dead
            return self._processes[shard].is_alive()

        return alive

    def _nudger(self, shard: int) -> Callable[[], None]:
        # Edge-triggered wakeup: the producer calls this when it writes
        # into an *empty* ring, so a worker parked on its control pipe
        # re-checks the ring immediately instead of after the poll
        # timeout. Low rate by construction (one nudge per
        # empty-to-non-empty transition, not per frame).
        def nudge() -> None:
            if shard >= len(self._conns):
                return
            try:
                self._conns[shard].send(("wake",))
            except (BrokenPipeError, OSError):
                pass  # a dead worker surfaces via liveness, not here

        return nudge

    def _teardown_rings(self, keep_stats: bool = True) -> None:
        """Drop producers and unlink ring arenas (idempotent).

        Producer views must die before the arena mappings close; the
        final counters are snapshotted first so :attr:`metrics` keeps
        reporting transport stalls after close().
        """
        if keep_stats:
            for shard, producer in enumerate(self._rings):
                self._ring_stats[shard] = {
                    "transport_stalls": producer.stalls,
                    "transport_stall_s": producer.stall_seconds,
                    "ring_peak_bytes": producer.peak_bytes,
                    "dropped_batches": producer.dropped_batches,
                    "dropped_events": producer.dropped_events,
                    "spilled_batches": producer.spilled_batches,
                }
        self._rings = []
        self._ring_tables = []
        for arena in self._ring_arenas:
            arena.close()
        self._ring_arenas = []

    def _spawn_processes(self) -> None:
        """Fork one worker per shard, before any feeder thread exists.

        Fork context when the platform offers it (cheap, inherits the
        loaded interpreter; safe here because no profiler threads are
        running yet), spawn otherwise. Workers are daemonic so a
        crashed parent cannot leave orphans ingesting forever.
        """
        # Lazy import, noqa'd like the fold path: the worker module
        # necessarily names the columnar kernel.
        from .worker import worker_main

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        try:
            for shard in range(self._shards):
                parent_conn, worker_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=worker_main,
                    args=(
                        worker_conn,
                        self._shard_config,
                        shard,
                        self._shm_prefix,
                        (
                            self._ring_tables[shard]
                            if self._transport == "ring" and self._ring_tables
                            else None
                        ),
                    ),
                    name=f"rap-shard-{shard}",
                    daemon=True,
                )
                process.start()
                worker_conn.close()  # parent keeps only its own end
                self._processes.append(process)
                self._conns.append(parent_conn)
            # Wait for every worker's ready handshake (sent after it
            # has built its tree and warmed its ingest path), so
            # open() returns a runtime that is actually ready to
            # ingest — start-up cost lands here, not inside the first
            # ingest/drain. Waiting after starting them all lets the
            # warm-ups overlap across workers.
            for shard in range(self._shards):
                self._recv_reply(shard, "ready")
        except BaseException:
            self._reap_processes()
            raise

    def __enter__(self) -> "Profiler":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        if self._state == "open":
            self.close()

    def close(self) -> RapTree:
        """Drain every shard, stop workers, return the final snapshot.

        After ``close()`` the profiler accepts no more events;
        ``snapshot()`` and ``query()`` keep answering from the final
        fold. Worker teardown is unconditional: even when a shard
        failed mid-ingest and this raises, every worker thread is
        joined, every worker process is exited (terminated if it will
        not go), and every shared-memory segment is unlinked.
        """
        if self._state == "closed":
            if self._snapshot_cache is None:
                raise RuntimeError(
                    "Profiler was closed after a worker failure; "
                    "no final snapshot exists"
                )
            return self._snapshot_cache
        if self._state != "open":
            raise RuntimeError("cannot close a Profiler that was never opened")
        with self._ingest_lock:
            try:
                for queue in self._queues:
                    queue.close()
                for worker in self._workers:
                    worker.join()  # noqa: RAP-LINT016 - workers never take this lock
                if self._executor == "process":
                    self._sync_workers()
                self._raise_worker_errors()
                for tree in self._trees:
                    tree.unconfine()
                return self._fold_locked()
            finally:
                self._state = "closed"
                self._reap_processes()

    def _reap_processes(self) -> None:
        """Exit, join and if necessary kill every worker process.

        Ends with a sweep of this profiler's shared-memory namespace:
        workers unlink their own segments on a clean exit, so the sweep
        normally removes nothing — it exists for killed workers. Safe
        to call repeatedly and on partially-constructed state.
        """
        if not self._processes:
            if self._executor == "process":
                self._teardown_rings()
                sweep_prefix(self._shm_prefix)
            return
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for shard, conn in enumerate(self._conns):
            # Wait for the goodbye (sent *after* the worker unlinks its
            # segments) so a clean shutdown leaves /dev/shm empty the
            # moment close() returns; a dead worker just times out.
            process = self._processes[shard]
            waited = 0.0
            try:
                while waited < _EXIT_GRACE:
                    if conn.poll(_POLL_INTERVAL):
                        if conn.recv()[0] == "bye":
                            break
                    elif not process.is_alive():
                        break
                    else:
                        waited += _POLL_INTERVAL
            except (EOFError, OSError):
                pass
        for process in self._processes:
            process.join(_EXIT_GRACE)  # noqa: RAP-LINT016 - worker processes live in another address space and cannot take this lock
            if process.is_alive():
                process.terminate()
                process.join(_EXIT_GRACE)  # noqa: RAP-LINT016 - bounded wait on a terminated process; no lock interaction possible
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(_EXIT_GRACE)  # noqa: RAP-LINT016 - bounded wait on a killed process; no lock interaction possible
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._processes = []
        self._conns = []
        self._teardown_rings()
        sweep_prefix(self._shm_prefix)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, values: Values) -> None:
        """Feed raw event values (any iterable of ints or numpy array).

        Values are chopped into chunks of ``batch_size``, partitioned to
        shards, duplicate-combined per shard (``np.unique``), and either
        enqueued to the shard workers (thread/process) or applied inline
        (serial). Returns once every chunk is accepted — which, under
        ``block`` backpressure, may wait for queue space.
        """
        self._check_ingestible()
        array = np.asarray(
            values if isinstance(values, np.ndarray) else list(values)
        )
        clock = self._clock
        start = clock() if clock is not None else 0.0
        with self._ingest_lock:
            self._check_ingestible()
            step = self._batch_size
            for at in range(0, len(array), step):
                self._dispatch_chunk(array[at:at + step])
        if clock is not None:
            self._ingest_seconds += clock() - start

    def ingest_counted(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed pre-combined ``(value, count)`` pairs."""
        self._check_ingestible()
        items = list(pairs)
        clock = self._clock
        start = clock() if clock is not None else 0.0
        with self._ingest_lock:
            self._check_ingestible()
            shard_of = self._partitioner.shard_of
            buckets: List[List[Tuple[int, int]]] = [
                [] for _ in range(self._shards)
            ]
            for value, count in items:
                buckets[shard_of(int(value))].append((int(value), int(count)))
            for shard, bucket in enumerate(buckets):
                if bucket:
                    weight = sum(count for _, count in bucket)
                    if self._executor == "process":
                        # Array-shaped counted frame; the worker's
                        # combining buffer treats its counts as
                        # weights, so this is observably one
                        # pre-combined batch like the threaded path's.
                        bucket.sort()
                        values = np.asarray(
                            [value for value, _ in bucket],
                            dtype=np.uint64,
                        )
                        counts = np.asarray(
                            [count for _, count in bucket],
                            dtype=np.int64,
                        )
                        if self._transport == "ring":
                            self._submit_ring(
                                shard, FRAME_CBATCH, values, counts, weight
                            )
                        else:
                            self._submit(
                                shard, ("cbatch", values, counts), weight
                            )
                    else:
                        self._submit(shard, bucket, weight)
        if clock is not None:
            self._ingest_seconds += clock() - start

    def _dispatch_chunk(self, chunk: np.ndarray) -> None:
        if self._shards == 1 and self._executor == "serial":
            # Single-shard passthrough: no partition, no combine — the
            # same per-event path a bare tree takes (and the honest
            # baseline the multi-shard benchmark compares against).
            tree = self._trees[0]
            tree.extend(int(value) for value in chunk)
            self._shard_events[0] += len(chunk)
            self._shard_batches[0] += 1
            return
        if self._executor == "process":
            # Raw partitioned frames: no producer-side np.unique. The
            # worker buffers frames and duplicate-combines its whole
            # buffered substream in one pass (see ``worker_main``),
            # which both shrinks the transport payload and moves the
            # combining sort off the dispatching thread. Under the
            # ring transport the partitioner's output arrays are
            # encoded straight into each shard's shared ring — no
            # queue hop, no feeder thread, no pickle.
            for shard, part in enumerate(self._partitioner.split(chunk)):
                if len(part):
                    if self._transport == "ring":
                        self._submit_ring(
                            shard,
                            FRAME_BATCH,
                            _frame_values(part),
                            None,
                            len(part),
                        )
                    else:
                        self._submit(shard, ("batch", part), len(part))
            return
        for shard, batch in enumerate(
            self._partitioner.split_counted(chunk)
        ):
            if batch:
                weight = sum(count for _, count in batch)
                self._submit(shard, batch, weight)

    def _submit_ring(
        self,
        shard: int,
        kind: int,
        values: np.ndarray,
        counts: Optional[np.ndarray],
        weight: int,
    ) -> None:
        """Write one binary frame into the shard's ring (ring transport).

        Runs on the dispatching thread under the ingest lock (which is
        what makes the producer side single-writer). A consumer that
        died while we were blocked on ring space surfaces as
        :class:`WorkerCrashed` with the ring's commit counters.
        """
        producer = self._rings[shard]
        try:
            disposition = producer.write_frame(kind, values, counts)  # noqa: RAP-LINT016 - ring waits block on the worker *process*, which never takes this lock; liveness-checked so a dead peer raises instead of deadlocking
        except RingStalled as stall:
            raise WorkerCrashed(
                shard,
                self._processes[shard].exitcode,
                "draining its ring",
                committed=stall.committed,
                consumed=stall.consumed,
            ) from None
        if disposition != "dropped":
            self._shard_events[shard] += weight
            self._shard_batches[shard] += 1
        self._raise_worker_errors()

    def _submit(self, shard: int, batch, weight: int) -> None:
        if self._executor == "serial":
            self._trees[shard].add_batch(batch)
            self._shard_events[shard] += weight
            self._shard_batches[shard] += 1
            return
        disposition = self._queues[shard].put(  # noqa: RAP-LINT016 - consumers never take this lock
            batch, weight
        )
        if disposition != "dropped":
            self._shard_events[shard] += weight
            self._shard_batches[shard] += 1
        self._raise_worker_errors()

    def _worker_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        tree = self._trees[shard]
        tree.confine_to_current_thread()
        failed = False
        while True:
            # One take drains the main queue plus any spill backlog as a
            # single FIFO-ordered, per-constituent-sorted batch, so the
            # whole backlog rides one add_counted fast-path run instead
            # of a take/ingest/ack round-trip per batch. Observably
            # identical to add_batch per constituent (see take_combined).
            batch = queue.take_combined()
            if batch is None:
                return
            if not failed:
                try:
                    tree.add_counted(batch)
                except BaseException as error:  # surfaced to producers
                    self._errors.append(error)
                    failed = True
            queue.task_done()

    def _feeder_loop(self, shard: int) -> None:
        """Producer-side pump: shard queue → worker pipe (process mode).

        Backpressure stays on the queue (identical policies and
        counters across executors); the feeder just forwards accepted
        frames in FIFO order. ``task_done`` fires only after the send,
        so ``queue.join()`` implies every accepted frame is *in the
        pipe ahead of any subsequent sync marker* — the ordering the
        epoch-boundary protocol relies on. A dead worker breaks the
        pipe; the feeder records the diagnosis and keeps draining so
        joins and closes never hang on a crashed shard.
        """
        queue = self._queues[shard]
        conn = self._conns[shard]
        broken = False
        while True:
            frames = queue.take_all()
            if frames is None:
                return
            if not broken:
                try:
                    # Frames are enqueued pipe-ready (("batch", values)
                    # or ("cbatch", values, counts)) — forward as-is.
                    for frame in frames:
                        conn.send(frame)
                except (BrokenPipeError, OSError):
                    broken = True
                    self._errors.append(
                        WorkerCrashed(
                            shard,
                            self._processes[shard].exitcode,
                            "receiving batches",
                        )
                    )
            queue.task_done()

    def _check_ingestible(self) -> None:
        if self._state != "open":
            hint = " (call open() first)" if self._state == "created" else ""
            raise RuntimeError(
                f"cannot ingest into a {self._state} Profiler{hint}"
            )
        self._raise_worker_errors()

    def _raise_worker_errors(self) -> None:
        if self._errors:
            raise RuntimeError(
                "shard worker failed while ingesting"
            ) from self._errors[0]

    # ------------------------------------------------------------------
    # Process-executor protocol (parent side)
    # ------------------------------------------------------------------

    def _worker_crashed(self, shard: int, doing: str) -> WorkerCrashed:
        """Build the dead-worker diagnostic, with ring counters when the
        ring transport is live: the last-committed/last-consumed frame
        sequences pinpoint how far the shard's stream got."""
        committed = consumed = None
        if self._transport == "ring" and shard < len(self._rings):
            producer = self._rings[shard]
            committed = producer.committed_frames
            consumed = producer.consumed_frames
        return WorkerCrashed(
            shard,
            self._processes[shard].exitcode,
            doing,
            committed=committed,
            consumed=consumed,
        )

    def _recv_reply(self, shard: int, expected: str):
        """Receive one protocol reply, failing fast on a dead worker."""
        conn = self._conns[shard]
        process = self._processes[shard]
        while True:
            try:
                if conn.poll(_POLL_INTERVAL):
                    reply = conn.recv()
                    break
            except (EOFError, OSError):
                raise self._worker_crashed(
                    shard, f"answering {expected!r}"
                ) from None
            if not process.is_alive():
                raise self._worker_crashed(shard, f"answering {expected!r}")
        if reply[0] != expected:
            raise RuntimeError(
                f"shard {shard} worker protocol error: expected "
                f"{expected!r}, got {reply[0]!r}"
            )
        return reply[1]

    def _sync_workers(self) -> None:
        """Quiesce every worker and cache its synced state.

        Callers hold the ingest lock with all queues joined (or closed
        and feeders exited), so no frame is mid-flight and the sync
        marker trails every accepted frame in transport order: a
        ``synced`` reply proves the worker applied them all. Worker
        ingest failures and sanitizer reports ride back on the reply.

        Under the ring transport the sync travels *in-band* — a sync
        frame written behind the shard's data frames — and is broadcast
        to every ring before any reply is collected, so the workers'
        wakeup and flush latencies overlap instead of serializing one
        sync round-trip per shard. Each reply echoes the sync frame's
        sequence number, proving it answers *this* epoch boundary.
        """
        if self._transport == "ring" and self._rings:
            expected: List[int] = []
            for shard, producer in enumerate(self._rings):
                try:
                    expected.append(producer.write_sync())  # noqa: RAP-LINT016 - ring waits block on the worker *process*, which never takes this lock; liveness-checked so a dead peer raises instead of deadlocking
                except RingStalled as stall:
                    raise WorkerCrashed(
                        shard,
                        self._processes[shard].exitcode,
                        "accepting a sync frame",
                        committed=stall.committed,
                        consumed=stall.consumed,
                    ) from None
            for shard in range(self._shards):
                payload = self._recv_reply(shard, "synced")
                if payload.get("sync_seq") != expected[shard]:
                    raise RuntimeError(
                        f"shard {shard} worker protocol error: sync reply "
                        f"for frame {payload.get('sync_seq')!r}, expected "
                        f"{expected[shard]}"
                    )
                self._accept_sync_payload(shard, payload)
            return
        for shard, conn in enumerate(self._conns):
            process = self._processes[shard]
            try:
                conn.send(("sync",))
            except (BrokenPipeError, OSError):
                raise WorkerCrashed(
                    shard, process.exitcode, "accepting a sync marker"
                ) from None
            self._accept_sync_payload(
                shard, self._recv_reply(shard, "synced")
            )

    def _accept_sync_payload(
        self, shard: int, payload: Dict[str, object]
    ) -> None:
        """Record one shard's synced state; surface its errors/reports."""
        self._shard_states[shard] = payload
        if payload.get("sanitizer") and self._sanitizer is not None:
            self._sanitizer.merge_worker_report(
                str(payload["label"]), payload["sanitizer"]
            )
        if payload.get("error"):
            self._errors.append(
                RuntimeError(
                    f"shard {shard} worker ingest failed:\n"
                    f"{payload['error']}"
                )
            )

    # ------------------------------------------------------------------
    # Snapshots and queries
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Wait until every accepted batch is applied to its shard tree.

        A quiesce without the fold: after ``drain()`` returns, the shard
        trees reflect every event accepted so far, but no snapshot is
        built. Useful to bound ingest latency measurements and to make
        backpressure deterministic before reading :attr:`metrics` (under
        the process executor this also refreshes the per-shard synced
        state those metrics are served from).
        """
        if self._state != "open":
            raise RuntimeError("cannot drain a Profiler that is not open")
        with self._ingest_lock:
            for queue in self._queues:
                queue.join()  # noqa: RAP-LINT016 - drain locks out producers; workers never take this lock
            if self._executor == "process":
                self._sync_workers()
            self._raise_worker_errors()

    def snapshot(self) -> RapTree:
        """Fold every shard into one consistent tree (epoch boundary).

        Locks out new ingests, drains every accepted batch, then folds
        the shard trees with :func:`~repro.core.combine.combine_many`.
        The result is independent of the live shards (single-shard
        profiles are cloned; process-executor shards are folded from
        attached or serialized copies) and cached: repeated snapshots
        with no intervening ingest return the same tree without
        re-folding.
        """
        if self._state == "closed":
            if self._snapshot_cache is None:
                raise RuntimeError(
                    "Profiler was closed after a worker failure; "
                    "no final snapshot exists"
                )
            return self._snapshot_cache
        if self._state != "open":
            raise RuntimeError("cannot snapshot a Profiler that is not open")
        with self._ingest_lock:
            for queue in self._queues:
                queue.join()  # noqa: RAP-LINT016 - epoch boundary locks out producers; workers never take this lock
            if self._executor == "process":
                self._sync_workers()
            self._raise_worker_errors()
            return self._fold_locked()

    def _fold_locked(self) -> RapTree:
        if self._sanitizer is not None:
            self._sanitizer.begin_fold("Profiler._ingest_lock")
        try:
            if self._executor == "process":
                epoch = tuple(
                    int(state["state"]["generation"])  # type: ignore[index]
                    for state in self._shard_states
                )
            else:
                epoch = tuple(
                    tree.mutation_generation for tree in self._trees
                )
            if (
                self._snapshot_cache is not None
                and epoch == self._snapshot_epoch
            ):
                return self._snapshot_cache
            clock = self._clock
            start = clock() if clock is not None else 0.0
            if self._executor == "process":
                folded = self._fold_process_locked()
            elif len(self._trees) == 1:
                folded = self._trees[0].clone()
            else:
                folded = combine_many(self._trees)
            if clock is not None:
                self._snapshot_seconds += clock() - start
            self._snapshots += 1
            self._snapshot_cache = folded
            self._snapshot_epoch = epoch
            return folded
        finally:
            if self._sanitizer is not None:
                self._sanitizer.end_fold()

    def _fold_process_locked(self) -> RapTree:
        """Fold synced worker shards: zero-copy attach, dump fallback.

        Every worker is quiesced (``_sync_workers`` ran under this
        lock). Shards whose columns live in shared memory are attached
        read-only and wrapped via ``ColumnarRapTree.attach_columns`` —
        the fold walks them without copying a column; shards without
        shared memory are fetched as serialized-v2 text. The result is
        always independent of worker state: a single shard is cloned,
        multiple shards fold through ``combine_many`` (which builds a
        fresh tree from the constituents' node views).
        """
        from ..core.columnar import ColumnarRapTree  # noqa: RAP-LINT012 - the fold attaches worker column segments; the attach protocol is columnar-only by design
        from ..core.serialize import load_tree

        trees: List[RapTree] = []
        attachments: List[ShmAttachment] = []
        try:
            for shard, payload in enumerate(self._shard_states):
                assert payload is not None, "fold before first sync"
                if payload["shm"]:
                    attachment = ShmAttachment(payload["table"])  # type: ignore[arg-type]
                    attachments.append(attachment)
                    trees.append(
                        ColumnarRapTree.attach_columns(
                            self._shard_config,
                            attachment.arrays,
                            payload["state"],  # type: ignore[arg-type]
                        )
                    )
                else:
                    try:
                        self._conns[shard].send(("dump",))
                    except (BrokenPipeError, OSError):
                        raise WorkerCrashed(
                            shard,
                            self._processes[shard].exitcode,
                            "accepting a dump request",
                        ) from None
                    trees.append(
                        load_tree(self._recv_reply(shard, "dumped"))
                    )
            if len(trees) == 1:
                return trees[0].clone()
            return combine_many(trees)
        finally:
            # Attached trees (and their memoryview rebinds) must die
            # before the mappings close; the fold result never aliases
            # worker memory.
            del trees
            for attachment in attachments:
                attachment.close()

    def query(self, lo: int, hi: int) -> int:
        """Lower-bound estimate of events in ``[lo, hi]`` (snapshot sugar)."""
        return self.snapshot().estimate(lo, hi)

    def hot_ranges(self, hot_fraction: float = 0.1) -> List[Tuple[int, int, int]]:
        """Hot-range report over the current snapshot.

        Returns ``(lo, hi, estimate)`` for every snapshot leaf whose
        estimated weight is at least ``hot_fraction`` of the total,
        heaviest first — the report ``rap_finalize`` historically
        printed, now answered from the folded snapshot.
        """
        tree = self.snapshot()
        threshold = hot_fraction * tree.events
        ranges = [
            (node.lo, node.hi, node.subtree_weight())
            for node in tree.nodes()
            if node.is_leaf and node.subtree_weight() >= threshold
        ]
        ranges.sort(key=lambda item: (-item[2], item[0]))
        return ranges

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> RuntimeMetrics:
        """Current per-shard and aggregate runtime metrics.

        Producer-side counters (events, batches, backpressure) are
        always live. Tree-side fields (splits, merges, node counts)
        read the live trees under the serial/thread executors; under
        the process executor they come from each shard's latest synced
        state — call :meth:`drain` (or take a snapshot) first for
        exact, deterministic values.
        """
        shards: List[ShardMetrics] = []
        for index in range(self._shards):
            entry = ShardMetrics(
                shard=index,
                events=self._shard_events[index],
                batches=self._shard_batches[index],
            )
            if self._executor == "process":
                payload = self._shard_states[index]
                if payload is not None:
                    entry.splits = int(payload["splits"])  # type: ignore[arg-type]
                    entry.merge_batches = int(payload["merge_batches"])  # type: ignore[arg-type]
                    entry.node_count = int(payload["node_count"])  # type: ignore[arg-type]
            else:
                tree = self._trees[index]
                stats = tree.stats
                entry.splits = stats.splits
                entry.merge_batches = stats.merge_batches
                entry.node_count = tree.node_count
            if self._queues:
                queue = self._queues[index]
                entry.dropped_batches = queue.dropped_batches
                entry.dropped_events = queue.dropped_events
                entry.spilled_batches = queue.spilled_batches
                entry.max_queue_depth = queue.max_depth
            # Ring transport: backpressure lives on the ring producer,
            # not the (idle) queue — its counters override the queue
            # zeros above. Live producers win; after teardown the
            # snapshot taken by ``_teardown_rings`` keeps answering.
            if index < len(self._rings):
                producer = self._rings[index]
                entry.dropped_batches = producer.dropped_batches
                entry.dropped_events = producer.dropped_events
                entry.spilled_batches = producer.spilled_batches
                entry.transport_stalls = producer.stalls
                entry.transport_stall_s = producer.stall_seconds
                entry.ring_peak_bytes = producer.peak_bytes
            elif self._ring_stats[index] is not None:
                stats = self._ring_stats[index]
                assert stats is not None
                entry.dropped_batches = int(stats["dropped_batches"])  # type: ignore[arg-type]
                entry.dropped_events = int(stats["dropped_events"])  # type: ignore[arg-type]
                entry.spilled_batches = int(stats["spilled_batches"])  # type: ignore[arg-type]
                entry.transport_stalls = int(stats["transport_stalls"])  # type: ignore[arg-type]
                entry.transport_stall_s = float(stats["transport_stall_s"])  # type: ignore[arg-type]
                entry.ring_peak_bytes = int(stats["ring_peak_bytes"])  # type: ignore[arg-type]
            shards.append(entry)
        return RuntimeMetrics(
            shards=shards,
            snapshots=self._snapshots,
            snapshot_seconds=self._snapshot_seconds,
            ingest_seconds=self._ingest_seconds,
        )

    def shard_trees(self) -> Sequence[RapTree]:
        """The live shard trees (read-only view; do not mutate).

        Serial and thread executors only: process-executor shard trees
        live in worker address spaces — take a :meth:`snapshot` (or use
        :attr:`metrics`) instead of reaching for the live objects.
        """
        if self._executor == "process":
            raise RuntimeError(
                "shard_trees() is not available under executor='process': "
                "the trees live in worker processes; use snapshot() for a "
                "folded copy or metrics for per-shard counters"
            )
        return tuple(self._trees)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Profiler(shards={self._shards}, executor={self._executor!r}, "
            f"state={self._state!r}, events={sum(self._shard_events)})"
        )
