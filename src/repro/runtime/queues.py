"""Bounded per-shard batch queues with explicit backpressure.

Each worker shard is fed through one :class:`ShardQueue`. The queue is
bounded (``capacity`` batches); what happens when it is full is an
explicit, named policy chosen by the producer:

* ``"block"`` — the producer waits until the worker drains a slot. The
  default: end-to-end deterministic (every batch is processed, FIFO per
  shard) and self-throttling.
* ``"drop"`` — the batch is discarded and counted. Bounded latency at
  the cost of data loss; the drop count is surfaced in shard metrics so
  lost weight is never silent. Which batches drop depends on thread
  scheduling, so drop mode is *not* deterministic.
* ``"spill"`` — the batch is diverted to an unbounded overflow list the
  worker drains opportunistically. No loss and no producer stall, at
  the cost of unbounded memory under sustained overload. Per-shard FIFO
  is preserved: the worker only takes spilled batches when the main
  queue is empty, and producers keep spilling while any spill backlog
  remains (so spilled batches can never be overtaken by newer ones).

The queue also tracks ``outstanding`` work (queued + spilled + currently
being processed) so :meth:`join` can quiesce a shard — the barrier the
snapshot fold uses to get a consistent epoch.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

Batch = Sequence[Tuple[int, int]]

_POLICIES = ("block", "drop", "spill")


class QueueClosed(RuntimeError):
    """Raised when putting to or taking from a closed, drained queue."""


class ShardQueue:
    """Bounded FIFO of batches feeding one worker shard."""

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._queue: Deque[Batch] = deque()
        self._spill: Deque[Batch] = deque()
        self._closed = False
        # Batches accepted but not yet fully processed (queued, spilled,
        # or in the worker's hands). join() waits for this to hit zero.
        self._outstanding = 0
        # Constituent counts of combined takes, FIFO: task_done() after a
        # take_combined() acknowledges this many accepted batches at once.
        self._acks: Deque[int] = deque()
        self.dropped_batches = 0
        self.dropped_events = 0
        self.spilled_batches = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def put(self, batch: Batch, weight: int) -> str:
        """Enqueue one batch; returns its disposition.

        ``weight`` is the total event count of the batch (used for the
        dropped-events counter). Returns ``"queued"``, ``"dropped"`` or
        ``"spilled"``.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed")
            if self.policy == "block":
                while len(self._queue) >= self.capacity:
                    self._not_full.wait()
                    if self._closed:
                        raise QueueClosed("queue closed while blocked")
                disposition = "queued"
            elif len(self._queue) >= self.capacity or self._spill:
                # Spill while a backlog exists even if a main slot just
                # freed up, else spilled batches would be overtaken.
                if self.policy == "drop":
                    self.dropped_batches += 1
                    self.dropped_events += weight
                    return "dropped"
                self._spill.append(batch)
                self.spilled_batches += 1
                self._outstanding += 1
                self._not_empty.notify()
                return "spilled"
            else:
                disposition = "queued"
            self._queue.append(batch)
            depth = len(self._queue) + len(self._spill)
            if depth > self.max_depth:
                self.max_depth = depth
            self._outstanding += 1
            self._not_empty.notify()
            return disposition

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def take(self) -> Optional[Batch]:
        """Dequeue the next batch, blocking; ``None`` once closed + empty."""
        with self._lock:
            while not self._queue and not self._spill:
                if self._closed:
                    return None
                self._not_empty.wait()
            if self._queue:
                batch = self._queue.popleft()
                self._not_full.notify()
            else:
                batch = self._spill.popleft()
            self._acks.append(1)
            return batch

    def take_combined(self) -> Optional[Batch]:
        """Dequeue *everything* available as one FIFO-ordered counted batch.

        Blocks like :meth:`take`; ``None`` once closed and empty. The
        main queue drains first (oldest batches), then the whole spill
        backlog — the acceptance order, so per-shard FIFO holds. Each
        constituent batch is value-sorted individually, which reuses the
        batch-combining sort path: feeding the result to
        ``RapTree.add_counted`` is observably identical to calling
        ``add_batch`` on each constituent in turn (``add_batch(pairs)``
        ≡ ``add_counted(sorted(pairs))``), while the worker pays one
        lock round-trip and one tree-ingest call for the entire backlog
        instead of re-entering per spilled batch.

        The matching :meth:`task_done` acknowledges every constituent at
        once; combined and plain takes can be mixed freely (every take
        records its constituent count, acknowledged FIFO).
        """
        with self._lock:
            while not self._queue and not self._spill:
                if self._closed:
                    return None
                self._not_empty.wait()
            taken = 0
            combined: List[Tuple[int, int]] = []
            while self._queue:
                combined.extend(sorted(self._queue.popleft()))
                taken += 1
            self._not_full.notify_all()
            while self._spill:
                combined.extend(sorted(self._spill.popleft()))
                taken += 1
            self._acks.append(taken)
            return combined

    def take_all(self) -> Optional[List[Batch]]:
        """Dequeue everything available as the raw FIFO batch list.

        Blocks like :meth:`take`; ``None`` once closed and empty. Main
        queue first, then the spill backlog — acceptance order, same as
        :meth:`take_combined` — but the constituents are returned
        untouched instead of being sorted and concatenated. This is the
        process executor's feeder path: each batch is already an
        array-shaped frame that crosses the worker pipe as-is, so
        flattening here would only force a re-split on the other side.
        The matching :meth:`task_done` acknowledges every returned
        batch at once.
        """
        with self._lock:
            while not self._queue and not self._spill:
                if self._closed:
                    return None
                self._not_empty.wait()
            batches: List[Batch] = []
            while self._queue:
                batches.append(self._queue.popleft())
            self._not_full.notify_all()
            while self._spill:
                batches.append(self._spill.popleft())
            self._acks.append(len(batches))
            return batches

    def task_done(self) -> None:
        """Worker acknowledgement that the last taken batch is processed.

        After a :meth:`take_combined`, acknowledges every batch folded
        into that take.
        """
        with self._lock:
            self._outstanding -= self._acks.popleft() if self._acks else 1
            if self._outstanding == 0:
                self._drained.notify_all()

    # ------------------------------------------------------------------
    # Coordination
    # ------------------------------------------------------------------

    def join(self) -> None:
        """Block until every accepted batch has been fully processed."""
        with self._lock:
            while self._outstanding:
                self._drained.wait()

    def close(self) -> None:
        """Stop accepting batches; the worker drains what remains."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def depth(self) -> int:
        """Current queued + spilled batch count (racy snapshot)."""
        return len(self._queue) + len(self._spill)
