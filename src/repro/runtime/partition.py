"""Partitioning an event stream across worker shards.

Two schemes, both deterministic functions of the event value alone (so
any replay of a stream lands every event on the same shard, regardless
of batch boundaries or thread scheduling):

* **hash** — Fibonacci multiplicative hashing spreads values uniformly
  across shards regardless of the input distribution. The default: RAP
  workloads are heavily skewed (that is the point of the profiler), and
  contiguous-range assignment would put an entire hot range on one
  shard.
* **range** — shard ``i`` owns the contiguous slice
  ``[floor(i * R / N), floor((i + 1) * R / N))`` of the universe. Keeps
  each shard's tree spatially compact (useful when shards map to
  NUMA-style locality domains) at the cost of skew sensitivity.

Both offer a scalar path (``shard_of``) and a vectorized numpy path
(``split``) that produce identical assignments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

# Knuth's multiplicative hash constant: the nearest odd integer to
# 2**64 / phi. Multiplying by it diffuses low-order structure (stride
# patterns, small dense universes) into the high bits we shard on.
_FIB_MULT = 11400714819323198485


class Partitioner:
    """Deterministic value → shard assignment over ``[0, R-1]``."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, value: int) -> int:
        """Shard index owning ``value``."""
        raise NotImplementedError

    def split(self, values: np.ndarray) -> List[np.ndarray]:
        """Partition ``values`` into per-shard arrays (vectorized).

        Returns one array per shard; shard ``i``'s array preserves the
        relative order of its events in the input. The concatenation of
        all outputs is a permutation of the input.
        """
        raise NotImplementedError

    def split_counted(
        self, values: np.ndarray
    ) -> List[Sequence[Tuple[int, int]]]:
        """Partition and duplicate-combine in one pass.

        For each shard, returns ``(value, count)`` pairs with duplicates
        merged via ``np.unique`` — the vectorized analogue of the
        paper's event-combining buffer (Section 3.3, stage 0), feeding
        :meth:`RapTree.add_batch` directly.
        """
        combined: List[Sequence[Tuple[int, int]]] = []
        for part in self.split(values):
            if len(part) == 0:
                combined.append([])
                continue
            uniques, counts = np.unique(part, return_counts=True)
            combined.append(
                list(zip(uniques.tolist(), counts.tolist()))
            )
        return combined

    def split_counted_arrays(
        self, values: np.ndarray
    ) -> List[Optional[Tuple[np.ndarray, np.ndarray]]]:
        """Partition and duplicate-combine, staying array-shaped.

        The array-native sibling of :meth:`split_counted`: per shard,
        ``(uniques, counts)`` ndarrays (``None`` for an empty shard)
        instead of a pair list. ``np.unique`` output is sorted
        ascending, so feeding a frame to
        ``ColumnarRapTree.add_counted_arrays`` is observably identical
        to ``add_batch`` on the equivalent pairs. (The process executor
        ships *raw* ``split`` frames instead and duplicate-combines
        across frames in each worker's combining buffer — see
        ``repro.runtime.worker`` — so this combined shape serves the
        in-process paths and counted feeds.)
        """
        frames: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        for part in self.split(values):
            if len(part) == 0:
                frames.append(None)
                continue
            uniques, counts = np.unique(part, return_counts=True)
            frames.append((uniques, counts))
        return frames


class HashPartitioner(Partitioner):
    """Fibonacci-hash assignment: uniform across shards under any skew."""

    def shard_of(self, value: int) -> int:
        mixed = (value * _FIB_MULT) & 0xFFFFFFFFFFFFFFFF
        return (mixed >> 32) % self.shards

    def split(self, values: np.ndarray) -> List[np.ndarray]:
        if self.shards == 1:
            return [np.asarray(values)]
        values = np.asarray(values, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = values * np.uint64(_FIB_MULT)
        assignment = (mixed >> np.uint64(32)) % np.uint64(self.shards)
        return [
            values[assignment == shard] for shard in range(self.shards)
        ]


class RangePartitioner(Partitioner):
    """Contiguous-slice assignment over the universe ``[0, R-1]``."""

    def __init__(self, shards: int, range_max: int) -> None:
        super().__init__(shards)
        if range_max < 2:
            raise ValueError(f"range_max must be >= 2, got {range_max}")
        self.range_max = range_max
        # boundaries[i] is the first value owned by shard i+1; shard i
        # owns [boundaries[i-1], boundaries[i]).
        self._boundaries = np.array(
            [(i * range_max) // shards for i in range(1, shards)],
            dtype=np.int64,
        )

    def shard_of(self, value: int) -> int:
        return int(np.searchsorted(self._boundaries, value, side="right"))

    def split(self, values: np.ndarray) -> List[np.ndarray]:
        if self.shards == 1:
            return [np.asarray(values)]
        values = np.asarray(values)
        assignment = np.searchsorted(
            self._boundaries, values, side="right"
        )
        return [
            values[assignment == shard] for shard in range(self.shards)
        ]


def make_partitioner(
    scheme: str, shards: int, range_max: int
) -> Partitioner:
    """Build the partitioner for ``scheme`` (``"hash"`` or ``"range"``)."""
    if scheme == "hash":
        return HashPartitioner(shards)
    if scheme == "range":
        return RangePartitioner(shards, range_max)
    raise ValueError(
        f"unknown partition scheme {scheme!r}; expected 'hash' or 'range'"
    )
