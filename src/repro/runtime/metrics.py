"""Runtime metrics: per-shard and aggregate ingestion statistics.

Everything event-count-shaped here is deterministic for a given stream
and configuration (under the ``block`` and ``spill`` backpressure
policies), so tests and the regression gate can assert on exact values.
Time-shaped fields (``ingest_seconds``, ``events_per_second``,
``snapshot_seconds``) are only populated when the profiler was given a
clock — timing stays caller-supplied (the same discipline RAP-LINT005
enforces for the rest of the library), and without a clock they read
``0.0`` so metric dumps stay reproducible byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ShardMetrics:
    """Ingestion counters for one worker shard.

    ``transport_stalls`` / ``transport_stall_s`` count how often (and,
    with a clock, for how long) the producer blocked waiting for the
    shard's transport to make room — ring-space waits under the
    process executor's ring transport. They read zero under the serial
    and thread executors and the pipe transport, whose blocking waits
    are already visible as queue backpressure. ``ring_peak_bytes`` is
    the high-water occupancy of the shard's ring (zero off-ring);
    ``transport_stall_s`` is time-shaped and stays ``0.0`` without a
    clock, like every other duration here.
    """

    shard: int
    events: int = 0
    batches: int = 0
    dropped_batches: int = 0
    dropped_events: int = 0
    spilled_batches: int = 0
    max_queue_depth: int = 0
    transport_stalls: int = 0
    transport_stall_s: float = 0.0
    ring_peak_bytes: int = 0
    splits: int = 0
    merge_batches: int = 0
    node_count: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "events": self.events,
            "batches": self.batches,
            "dropped_batches": self.dropped_batches,
            "dropped_events": self.dropped_events,
            "spilled_batches": self.spilled_batches,
            "max_queue_depth": self.max_queue_depth,
            "transport_stalls": self.transport_stalls,
            "transport_stall_s": self.transport_stall_s,
            "ring_peak_bytes": self.ring_peak_bytes,
            "splits": self.splits,
            "merge_batches": self.merge_batches,
            "node_count": self.node_count,
        }


@dataclass
class RuntimeMetrics:
    """Aggregate view over every shard plus profiler-level counters."""

    shards: List[ShardMetrics] = field(default_factory=list)
    snapshots: int = 0
    snapshot_seconds: float = 0.0
    ingest_seconds: float = 0.0

    @property
    def events(self) -> int:
        """Total events accepted into shard trees (drops excluded)."""
        return sum(shard.events for shard in self.shards)

    @property
    def dropped_events(self) -> int:
        return sum(shard.dropped_events for shard in self.shards)

    @property
    def spilled_batches(self) -> int:
        return sum(shard.spilled_batches for shard in self.shards)

    @property
    def node_count(self) -> int:
        return sum(shard.node_count for shard in self.shards)

    @property
    def transport_stalls(self) -> int:
        """Producer waits for transport space, summed over shards."""
        return sum(shard.transport_stalls for shard in self.shards)

    @property
    def transport_stall_s(self) -> float:
        """Seconds spent in those waits; ``0.0`` without a clock."""
        return sum(shard.transport_stall_s for shard in self.shards)

    @property
    def events_per_second(self) -> float:
        """Ingest throughput; ``0.0`` unless a clock was supplied."""
        if self.ingest_seconds <= 0.0:
            return 0.0
        return self.events / self.ingest_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "dropped_events": self.dropped_events,
            "spilled_batches": self.spilled_batches,
            "node_count": self.node_count,
            "transport_stalls": self.transport_stalls,
            "transport_stall_s": self.transport_stall_s,
            "snapshots": self.snapshots,
            "snapshot_seconds": self.snapshot_seconds,
            "ingest_seconds": self.ingest_seconds,
            "events_per_second": self.events_per_second,
            "shards": [shard.as_dict() for shard in self.shards],
        }
