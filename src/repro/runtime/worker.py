"""Shard worker process: a columnar tree in shared memory, fed by pipe.

``worker_main`` is the entry point the process executor spawns once per
shard. The worker owns a :class:`~repro.core.columnar.ColumnarRapTree`
whose columns live in a :class:`~repro.runtime.shm.ShmArena` (so the
parent can attach them zero-copy at fold time), confines it to itself,
and services a tiny command protocol on its pipe end:

``("batch", values)``
    Raw partitioned value frame, as produced by ``Partitioner.split``
    (one occurrence per element, producer chunk order). Frames are
    *buffered*, not ingested one by one: the worker accumulates them
    in a combining buffer and duplicate-combines the whole buffered
    substream in a single ``np.unique`` pass right before feeding one
    sorted counted frame to ``add_counted_arrays`` — the paper's
    event-combining buffer (Section 3.3, stage 0) stretched across
    frames, which is where the process executor's ingest advantage
    over the per-chunk-combining threaded path comes from. The buffer
    flushes when it holds ``_COMBINE_WINDOW`` events and at every
    sync, so its memory is bounded and its flush points are a pure
    function of the frame sequence (pipe FIFO = producer dispatch
    order): repeat runs build bit-identical trees. No reply; an
    ingest failure is remembered and surfaced on the next sync.
``("cbatch", values, counts)``
    Pre-counted frame (the ``ingest_counted`` path): sorted unique
    values with positive counts. Enters the same combining buffer
    with its counts as weights.
``("sync",)``
    Quiesce point: flushes the combining buffer, then replies
    ``("synced", payload)`` where the payload carries the
    shared-memory segment table, the tree's scalar state
    (:meth:`~repro.core.columnar.ColumnarRapTree.column_state`),
    ingest statistics, the recorded failure (if any) and the worker
    sanitizer's report. Because frames are processed in pipe order,
    a sync reply proves every earlier batch frame is applied.
``("dump",)``
    Replies ``("dumped", text)`` with the serialized-v2 tree — the
    fold fallback when shared memory is unavailable on this host.
``("exit",)``
    Tear down: drop the tree, unlink every shared-memory segment,
    reply ``("bye",)`` and return. The reply comes *after* the unlink,
    so a parent that has seen it knows ``/dev/shm`` is clean.

The worker never touches the parent's queues or locks; backpressure
lives entirely on the parent side (the feeder thread drains a
:class:`~repro.runtime.queues.ShardQueue` into this pipe). If the pipe
dies (parent crash), the worker cleans up its segments and exits — the
arena is unlinked on every path out of :func:`worker_main`.
"""

from __future__ import annotations

import gc
import traceback
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import RapConfig
from ..core.columnar import ColumnarRapTree  # noqa: RAP-LINT012 - the worker owns its shard kernel: the shm allocator hook and column_state/attach protocol are columnar-only by design
from ..core.serialize import dump_tree
from .shm import ShmArena

# Combining-buffer flush threshold, in buffered events. Large enough
# that a typical drain-bounded burst coalesces into one tree pass,
# small enough to bound worker memory under sustained overload (2**17
# uint64 values is 1 MiB). Flushes depend only on the frame sequence,
# never on timing, so the built tree stays a pure function of the
# stream.
_COMBINE_WINDOW = 1 << 17


def _combine_frames(
    raw: List[np.ndarray],
    counted: List[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Duplicate-combine buffered frames into one sorted counted frame.

    ``raw`` frames weight each occurrence 1; ``counted`` frames carry
    explicit counts. The result is exactly ``np.unique`` with counts
    over the concatenated expansion — ascending values, summed
    weights — without ever materializing the expansion. Dtypes pass
    through untouched: ``add_counted_arrays`` owns validation, so
    malformed values raise there exactly as they would have
    frame by frame.
    """
    if not counted:
        uniques, counts = np.unique(
            np.concatenate(raw), return_counts=True
        )
        return uniques, counts.astype(np.int64, copy=False)
    parts = list(raw) + [values for values, _ in counted]
    weights = [
        np.ones(len(values), dtype=np.int64) for values in raw
    ] + [counts for _, counts in counted]
    uniques, inverse = np.unique(
        np.concatenate(parts), return_inverse=True
    )
    combined = np.zeros(uniques.size, dtype=np.int64)
    np.add.at(combined, inverse, np.concatenate(weights))
    return uniques, combined


def worker_main(
    conn: Any,
    config: RapConfig,
    shard_index: int,
    shm_prefix: Optional[str],
) -> None:
    """Run one shard worker until ``exit`` or pipe loss.

    ``conn`` is the worker end of a duplex pipe; ``config`` is the
    (epsilon-adjusted) shard tree configuration; ``shm_prefix`` names
    this worker's shared-memory namespace, or ``None`` to force
    heap-backed columns (folds then use the serialize fallback).
    """
    label = f"shard[{shard_index}]"
    arena: Optional[ShmArena] = None
    tree: Optional[ColumnarRapTree] = None
    if shm_prefix is not None:
        try:
            arena = ShmArena(f"{shm_prefix}s{shard_index}-")
            tree = ColumnarRapTree(config, allocator=arena.allocate)
        except OSError:
            # No usable POSIX shared memory on this host: fall through
            # to heap columns; the parent folds via serialized dumps.
            if arena is not None:
                arena.close()
            arena = None
            tree = None
    if tree is None:
        tree = ColumnarRapTree(config)

    sanitizer = None
    if config.debug_sanitize:
        # Lazy import, same reasoning as the profiler: the runtime must
        # stay importable without the checks package.
        from ..checks.sanitizer import RapSanitizer

        sanitizer = RapSanitizer()
        sanitizer.attach_tree(tree, label)
    tree.confine_to_current_thread()

    failed: Optional[str] = None
    pending_raw: List[np.ndarray] = []
    pending_counted: List[Tuple[np.ndarray, np.ndarray]] = []
    buffered = 0

    def flush() -> None:
        # One combining pass over everything buffered, then one tree
        # ingest. Buffers are cleared even on failure (and after one,
        # dropped unprocessed) so a poisoned batch cannot cascade into
        # misleading follow-ups or pin memory.
        nonlocal failed, buffered
        raw = pending_raw[:]
        counted = pending_counted[:]
        pending_raw.clear()
        pending_counted.clear()
        buffered = 0
        if failed is not None or not (raw or counted):
            return
        try:
            values, counts = _combine_frames(raw, counted)
            # First flush on a fresh tree: build the partition offline
            # in one pass (same bounds, far cheaper than cascading a
            # cold tree through per-event splits). Preconditions not
            # met — or any later flush — take the online kernel.
            if not (
                tree.events == 0
                and tree.bootstrap_counted_arrays(values, counts)
            ):
                tree.add_counted_arrays(values, counts)
        except BaseException:
            # Remembered, reported on the next sync.
            failed = traceback.format_exc()

    try:
        while True:
            try:
                frame = conn.recv()
            except (EOFError, OSError):
                # Parent went away; clean up and die quietly.
                return
            kind = frame[0]
            if kind == "batch":
                pending_raw.append(frame[1])
                buffered += len(frame[1])
                if buffered >= _COMBINE_WINDOW:
                    flush()
            elif kind == "cbatch":
                pending_counted.append((frame[1], frame[2]))
                buffered += int(np.sum(frame[2]))
                if buffered >= _COMBINE_WINDOW:
                    flush()
            elif kind == "sync":
                flush()
                if arena is not None:
                    arena.reap_retired()
                conn.send(("synced", _sync_payload(
                    label, tree, arena, failed, sanitizer
                )))
            elif kind == "dump":
                flush()
                conn.send(("dumped", dump_tree(tree)))
            elif kind == "exit":
                return
            else:  # pragma: no cover - protocol bug, not a data path
                failed = f"unknown worker frame {kind!r}"
    finally:
        tree.unconfine()
        # Drop every ndarray/memoryview export over the arena's buffers
        # before unlinking, so the segments can actually close. The
        # sanitizer's method wrappers form a reference cycle with the
        # tree, so a collect is needed to actually release the views.
        del tree
        gc.collect()
        if arena is not None:
            arena.close()
        try:
            conn.send(("bye",))
        except (BrokenPipeError, OSError):
            pass
        conn.close()


def _sync_payload(
    label: str,
    tree: ColumnarRapTree,
    arena: Optional[ShmArena],
    failed: Optional[str],
    sanitizer: Any,
) -> Dict[str, object]:
    stats = tree.stats
    return {
        "label": label,
        "shm": arena is not None,
        "table": arena.segment_table() if arena is not None else None,
        "state": tree.column_state(),
        "events": tree.events,
        "node_count": tree.node_count,
        "splits": stats.splits,
        "merge_batches": stats.merge_batches,
        "error": failed,
        "sanitizer": sanitizer.report() if sanitizer is not None else None,
    }
