"""Shard worker process: a columnar tree in shared memory.

``worker_main`` is the entry point the process executor spawns once per
shard. The worker owns a :class:`~repro.core.columnar.ColumnarRapTree`
whose columns live in a :class:`~repro.runtime.shm.ShmArena` (so the
parent can attach them zero-copy at fold time), confines it to itself,
and consumes the partitioned event stream over one of two transports:

* **ring** (the default): data frames arrive as binary counted frames
  (:mod:`repro.core.serialize`) through a shared-memory SPSC ring
  (:class:`~repro.runtime.ring.RingConsumer`), decoded as read-only
  ndarray *views* over ring memory — zero copies until the combining
  flush. The pipe stays attached but carries only low-rate control
  (``wake``/``dump``/``exit``); sync markers travel *in-band* through
  the ring so they order behind every data frame by construction.
* **pipe** (fallback): every frame is a pickled tuple on the duplex
  pipe — the protocol below, unchanged.

Pipe command protocol:

``("batch", values)``
    Raw partitioned value frame, as produced by ``Partitioner.split``
    (one occurrence per element, producer chunk order). Frames are
    *buffered*, not ingested one by one: the worker accumulates them
    in a combining buffer and duplicate-combines the whole buffered
    substream in a single ``np.unique`` pass right before feeding one
    sorted counted frame to ``add_counted_arrays`` — the paper's
    event-combining buffer (Section 3.3, stage 0) stretched across
    frames, which is where the process executor's ingest advantage
    over the per-chunk-combining threaded path comes from. The buffer
    flushes when it holds ``_COMBINE_WINDOW`` events and at every
    sync, so its memory is bounded and its flush points are a pure
    function of the frame sequence (pipe FIFO = producer dispatch
    order): repeat runs build bit-identical trees. No reply; an
    ingest failure is remembered and surfaced on the next sync.
``("cbatch", values, counts)``
    Pre-counted frame (the ``ingest_counted`` path): sorted unique
    values with positive counts. Enters the same combining buffer
    with its counts as weights.
``("sync",)``
    Quiesce point: flushes the combining buffer, then replies
    ``("synced", payload)`` where the payload carries the
    shared-memory segment table, the tree's scalar state
    (:meth:`~repro.core.columnar.ColumnarRapTree.column_state`),
    ingest statistics, the recorded failure (if any) and the worker
    sanitizer's report. Because frames are processed in pipe order,
    a sync reply proves every earlier batch frame is applied.
``("dump",)``
    Replies ``("dumped", text)`` with the serialized-v2 tree — the
    fold fallback when shared memory is unavailable on this host.
``("exit",)``
    Tear down: drop the tree, unlink every shared-memory segment,
    reply ``("bye",)`` and return. The reply comes *after* the unlink,
    so a parent that has seen it knows ``/dev/shm`` is clean.

The worker never touches the parent's queues or locks; backpressure
lives entirely on the parent side (under the ring transport the
producer blocks/drops/spills against the ring itself; under the pipe
transport a feeder thread drains a
:class:`~repro.runtime.queues.ShardQueue` into this pipe). If the pipe
dies (parent crash), the worker cleans up its segments and exits — the
arena is unlinked on every path out of :func:`worker_main`.
"""

from __future__ import annotations

import gc
import traceback
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import RapConfig
from ..core.columnar import ColumnarRapTree  # noqa: RAP-LINT012 - the worker owns its shard kernel: the shm allocator hook and column_state/attach protocol are columnar-only by design
from ..core.serialize import FRAME_CBATCH, FRAME_SYNC, dump_tree
from .ring import RingConsumer
from .shm import ShmArena, ShmAttachment

# Combining-buffer flush threshold, in buffered events. Large enough
# that a typical drain-bounded burst coalesces into one tree pass,
# small enough to bound worker memory under sustained overload (2**17
# uint64 values is 1 MiB). Flushes depend only on the frame sequence,
# never on timing, so the built tree stays a pure function of the
# stream.
_COMBINE_WINDOW = 1 << 17

# How long the ring consumer parks on the control pipe when the ring is
# empty. The producer nudges the pipe ("wake") whenever it writes into
# an empty ring, so this timeout is only a lost-wakeup backstop — it
# bounds the worst-case latency of noticing an in-band frame after a
# nudge raced the park, not the steady-state latency (which is the
# nudge itself).
_RING_IDLE_POLL = 0.05


def _combine_frames(
    raw: List[np.ndarray],
    counted: List[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Duplicate-combine buffered frames into one sorted counted frame.

    ``raw`` frames weight each occurrence 1; ``counted`` frames carry
    explicit counts. The result is exactly ``np.unique`` with counts
    over the concatenated expansion — ascending values, summed
    weights — without ever materializing the expansion. Dtypes pass
    through untouched: ``add_counted_arrays`` owns validation, so
    malformed values raise there exactly as they would have
    frame by frame.
    """
    if not counted:
        uniques, counts = np.unique(
            np.concatenate(raw), return_counts=True
        )
        return uniques, counts.astype(np.int64, copy=False)
    parts = list(raw) + [values for values, _ in counted]
    weights = [
        np.ones(len(values), dtype=np.int64) for values in raw
    ] + [counts for _, counts in counted]
    uniques, inverse = np.unique(
        np.concatenate(parts), return_inverse=True
    )
    combined = np.zeros(uniques.size, dtype=np.int64)
    np.add.at(combined, inverse, np.concatenate(weights))
    return uniques, combined


def _warm_ingest_path(config: RapConfig) -> None:
    """Exercise the flush pipeline once on a scratch tree (then drop it).

    Runs the exact code the first real flush runs — cross-frame
    combining, the offline bootstrap build, the online counted kernel —
    over a tiny synthetic stream on heap-backed columns. Purely a
    warm-up: nothing escapes, and the profiler's trees are untouched.
    """
    try:
        span = min(4096, config.range_max)
        values = (np.arange(2048, dtype=np.uint64) * 7) % span
        uniques, counts = _combine_frames(
            [values], [(np.arange(8, dtype=np.uint64), np.ones(8, np.int64))]
        )
        scratch = ColumnarRapTree(config)
        if not scratch.bootstrap_counted_arrays(uniques, counts):
            scratch.add_counted_arrays(uniques, counts)
        scratch.add_counted_arrays(
            np.arange(16, dtype=np.uint64), np.full(16, 2, dtype=np.int64)
        )
    except BaseException:
        # Best-effort by definition: a failed warm-up must never take
        # the worker down — the real stream decides what actually fails.
        pass


def worker_main(
    conn: Any,
    config: RapConfig,
    shard_index: int,
    shm_prefix: Optional[str],
    ring_table: Optional[Dict[str, Tuple[str, str, int, int]]] = None,
) -> None:
    """Run one shard worker until ``exit`` or pipe loss.

    ``conn`` is the worker end of a duplex pipe; ``config`` is the
    (epsilon-adjusted) shard tree configuration; ``shm_prefix`` names
    this worker's shared-memory namespace, or ``None`` to force
    heap-backed columns (folds then use the serialize fallback).
    ``ring_table`` is the parent-allocated ring region's segment table
    under the ring transport, or ``None`` for the pipe transport.
    """
    label = f"shard[{shard_index}]"
    arena: Optional[ShmArena] = None
    tree: Optional[ColumnarRapTree] = None
    if shm_prefix is not None:
        try:
            arena = ShmArena(f"{shm_prefix}s{shard_index}-")
            tree = ColumnarRapTree(config, allocator=arena.allocate)
        except OSError:
            # No usable POSIX shared memory on this host: fall through
            # to heap columns; the parent folds via serialized dumps.
            if arena is not None:
                arena.close()
            arena = None
            tree = None
    if tree is None:
        tree = ColumnarRapTree(config)

    sanitizer = None
    if config.debug_sanitize:
        # Lazy import, same reasoning as the profiler: the runtime must
        # stay importable without the checks package.
        from ..checks.sanitizer import RapSanitizer

        sanitizer = RapSanitizer()
        sanitizer.attach_tree(tree, label)
    tree.confine_to_current_thread()

    # Warm the ingest path on a throwaway heap tree before reporting
    # ready: the first pass through the combining/bootstrap code in a
    # fresh process pays interpreter specialization and allocator
    # cold-start costs that belong to open(), not to the first
    # ingest's latency. The parent waits for the ``ready`` below, so
    # all of this happens before it dispatches a single frame.
    _warm_ingest_path(config)
    try:
        conn.send(("ready", None))
    except (BrokenPipeError, OSError):
        pass  # parent gone already; the loops below exit the same way

    failed: Optional[str] = None
    pending_raw: List[np.ndarray] = []
    pending_counted: List[Tuple[np.ndarray, np.ndarray]] = []
    buffered = 0

    def flush() -> None:
        # One combining pass over everything buffered, then one tree
        # ingest. Buffers are cleared even on failure (and after one,
        # dropped unprocessed) so a poisoned batch cannot cascade into
        # misleading follow-ups or pin memory.
        nonlocal failed, buffered
        raw = pending_raw[:]
        counted = pending_counted[:]
        pending_raw.clear()
        pending_counted.clear()
        buffered = 0
        if failed is not None or not (raw or counted):
            return
        try:
            values, counts = _combine_frames(raw, counted)
            # First flush on a fresh tree: build the partition offline
            # in one pass (same bounds, far cheaper than cascading a
            # cold tree through per-event splits). Preconditions not
            # met — or any later flush — take the online kernel.
            if not (
                tree.events == 0
                and tree.bootstrap_counted_arrays(values, counts)
            ):
                tree.add_counted_arrays(values, counts)
        except BaseException:
            # Remembered, reported on the next sync.
            failed = traceback.format_exc()

    def materialize() -> None:
        # Copy buffered ring views into worker-owned arrays so the ring
        # bytes under them can be released early (congestion relief).
        # Invisible to the tree: flush points and the combined stream
        # are unchanged — this only rebinds where the bytes live.
        pending_raw[:] = [np.array(part) for part in pending_raw]
        pending_counted[:] = [
            (np.array(values), np.array(counts))
            for values, counts in pending_counted
        ]

    def sync_payload(sync_seq: Optional[int]) -> Dict[str, object]:
        if arena is not None:
            arena.reap_retired()
        payload = _sync_payload(label, tree, arena, failed, sanitizer)
        payload["sync_seq"] = sync_seq
        return payload

    def pipe_loop() -> None:
        nonlocal failed, buffered
        while True:
            try:
                frame = conn.recv()
            except (EOFError, OSError):
                # Parent went away; clean up and die quietly.
                return
            kind = frame[0]
            if kind == "batch":
                pending_raw.append(frame[1])
                buffered += len(frame[1])
                if buffered >= _COMBINE_WINDOW:
                    flush()
            elif kind == "cbatch":
                pending_counted.append((frame[1], frame[2]))
                buffered += int(np.sum(frame[2]))
                if buffered >= _COMBINE_WINDOW:
                    flush()
            elif kind == "sync":
                flush()
                conn.send(("synced", sync_payload(None)))
            elif kind == "dump":
                flush()
                conn.send(("dumped", dump_tree(tree)))
            elif kind == "exit":
                return
            else:  # pragma: no cover - protocol bug, not a data path
                failed = f"unknown worker frame {kind!r}"

    def ring_loop(consumer: RingConsumer) -> None:
        # Data and sync frames arrive in-band through the ring; the
        # pipe is polled only when the ring runs empty, and then with a
        # timeout, so a "wake" nudge (or the backstop timeout) gets the
        # worker back onto the ring. Frames are *views* into ring
        # memory: the ring bytes are released right after each flush
        # copies them out, or copied aside (``materialize``) if the
        # buffered window starts crowding the producer.
        nonlocal failed, buffered
        congested = consumer.capacity // 2
        while True:
            frame = consumer.try_next()
            if frame is not None:
                if frame.kind == FRAME_SYNC:
                    flush()
                    consumer.release()
                    conn.send(("synced", sync_payload(frame.sequence)))
                elif frame.kind == FRAME_CBATCH:
                    pending_counted.append((frame.values, frame.counts))
                    buffered += int(np.sum(frame.counts))
                    if buffered >= _COMBINE_WINDOW:
                        flush()
                        consumer.release()
                    elif consumer.bytes_held > congested:
                        materialize()
                        consumer.release()
                else:
                    pending_raw.append(frame.values)
                    buffered += len(frame.values)
                    if buffered >= _COMBINE_WINDOW:
                        flush()
                        consumer.release()
                    elif consumer.bytes_held > congested:
                        materialize()
                        consumer.release()
                continue
            try:
                if not conn.poll(_RING_IDLE_POLL):
                    # Idle a full poll period with ring bytes still
                    # pinned by buffered views: copy them aside and
                    # free the space. Without this a producer whose
                    # next frame needs more than the unpinned
                    # remainder (large frame, small ring) would wait
                    # on a consumer that is parked waiting for it —
                    # a standoff neither side can break.
                    if consumer.bytes_held:
                        materialize()
                        consumer.release()
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "wake":
                continue  # nudge: data is (or was) in the ring
            if kind == "dump":
                flush()
                consumer.release()
                conn.send(("dumped", dump_tree(tree)))
            elif kind == "exit":
                return
            else:  # pragma: no cover - protocol bug, not a data path
                failed = f"unknown worker control {kind!r}"

    ring_attachment: Optional[ShmAttachment] = None
    try:
        if ring_table is not None:
            ring_attachment = ShmAttachment(ring_table)
            ring_loop(RingConsumer(ring_attachment.arrays["ring"]))
        else:
            pipe_loop()
    finally:
        tree.unconfine()
        # Drop every ndarray/memoryview export over the arena's buffers
        # before unlinking, so the segments can actually close. The
        # sanitizer's method wrappers form a reference cycle with the
        # tree, so a collect is needed to actually release the views.
        del tree
        pending_raw.clear()
        pending_counted.clear()
        gc.collect()
        if arena is not None:
            arena.close()
        if ring_attachment is not None:
            ring_attachment.close()
        try:
            conn.send(("bye",))
        except (BrokenPipeError, OSError):
            pass
        conn.close()


def _sync_payload(
    label: str,
    tree: ColumnarRapTree,
    arena: Optional[ShmArena],
    failed: Optional[str],
    sanitizer: Any,
) -> Dict[str, object]:
    stats = tree.stats
    return {
        "label": label,
        "shm": arena is not None,
        "table": arena.segment_table() if arena is not None else None,
        "state": tree.column_state(),
        "events": tree.events,
        "node_count": tree.node_count,
        "splits": stats.splits,
        "merge_batches": stats.merge_batches,
        "error": failed,
        "sanitizer": sanitizer.report() if sanitizer is not None else None,
    }
