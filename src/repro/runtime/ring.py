"""Shared-memory SPSC ring transport for the process executor.

One :class:`RingProducer`/:class:`RingConsumer` pair per shard worker
moves the partitioned event stream between the parent and its worker
process through a byte ring buffer living in a
:class:`~repro.runtime.shm.ShmArena` slab — zero pickle, zero
intermediate copies. The parent encodes binary counted frames
(:mod:`repro.core.serialize`) straight from the partitioner's output
arrays into the ring with two slice assignments; the worker decodes
them as *read-only ndarray views* over the same memory and feeds its
combining buffer without touching a byte. The duplex pipe the process
executor already owns stays, but carries only low-rate control
(dump/exit/crash/wake) — the data path never pickles.

Memory layout (all offsets relative to the shared region)::

    0    head      u64 — bytes released by the consumer   (cache line 0)
    64   tail      u64 — bytes committed by the producer   (cache line 1)
    128  committed u64 — frames committed by the producer  (cache line 2)
    192  consumed  u64 — frames consumed by the consumer   (cache line 3)
    256  data[capacity]                                    (the ring)

``head`` and ``tail`` are *monotonic* byte counters (they never wrap;
positions are ``counter % capacity``), each written by exactly one
side and read by the other, on separate cache lines so the two sides
never false-share. Occupancy is ``tail - head``; the producer may
write while ``tail - head + record <= capacity``.

Records and the commit protocol. Each frame is length-prefixed::

    u64 length | frame bytes | pad to 8

The producer writes the frame bytes first, then the length word, and
publishes ``tail`` (and bumps ``committed``) strictly last — so a
consumer that trusts ``tail`` can never observe a torn frame, and the
length word doubles as a per-record commit marker for crash forensics:
after a SIGKILL, ``committed``/``consumed`` say exactly how many
frames each side got through (surfaced in ``WorkerCrashed``). A frame
never straddles the wrap point: when the tail-to-end gap is too small
the producer stamps a one-word ``PAD`` record (length
``0xFFFF_FFFF_FFFF_FFFF``) that tells the consumer to skip to the ring
start, keeping every frame contiguous so decoded views stay zero-copy.

Backpressure reuses the :class:`~repro.runtime.queues.ShardQueue`
policy vocabulary, with the same dispositions and counters:

* ``block`` — wait for the consumer to release space, periodically
  invoking the ``liveness`` callback so a dead consumer raises
  :class:`RingStalled` instead of hanging forever.
* ``drop`` — a frame that does not fit is discarded and counted
  (``dropped_batches``/``dropped_events``).
* ``spill`` — overflow goes to an unbounded producer-side FIFO and is
  re-offered ahead of new frames, preserving stream order exactly like
  the queue's spill deque; a sync flushes the backlog first (blocking),
  so the no-loss guarantee carries over.

Determinism: the byte stream a consumer sees is a pure function of the
producer's frame sequence (ring order = write order), so the worker's
combining-buffer flush points — and therefore the shard tree — are
bit-identical to the pipe transport's for the same ingested stream.

Timing discipline: this module never reads the wall clock. Stall
*counts* are always recorded; stall *seconds* only accumulate when the
profiler injected a ``clock=`` callable (the RAP-LINT005 pattern), so
metric dumps stay byte-for-byte reproducible without one.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.serialize import (
    FRAME_CBATCH,
    FRAME_SYNC,
    BinaryFrame,
    FrameError,
    decode_frame,
    encode_frame_into,
    frame_nbytes,
)

__all__ = [
    "DEFAULT_RING_BYTES",
    "MIN_RING_BYTES",
    "RING_HEADER_BYTES",
    "RingConsumer",
    "RingProducer",
    "RingStalled",
]

#: Counter block at the start of the shared region: four u64s, one per
#: cache line (see module docstring).
RING_HEADER_BYTES = 256

#: Default shared region size per shard (header + data). 4 MiB of data
#: comfortably holds several combining windows (2**17 uint64 events is
#: 1 MiB), so a worker that defers releases until its flush never makes
#: the producer wait at benchmark scales.
DEFAULT_RING_BYTES = 1 << 22

#: Smallest usable region: header plus enough data for a sync frame,
#: a pad record and a minimal batch on both sides of a wrap.
MIN_RING_BYTES = RING_HEADER_BYTES + 1024

#: Length-word sentinel: "no frame here — skip to the ring start".
_PAD_WORD = 0xFFFF_FFFF_FFFF_FFFF

_LENGTH_BYTES = 8
_RECORD_ALIGN = 8

#: Blocked-side wait tuning: spin a little (the common stall is the
#: consumer mid-flush, microseconds away), then sleep in short slices,
#: checking liveness every few slices so a SIGKILLed peer surfaces in
#: well under a second without a wall-clock read anywhere.
_SPIN_ROUNDS = 128
_SLEEP_S = 0.0005
_LIVENESS_EVERY = 32

_POLICIES = ("block", "drop", "spill")


class RingStalled(RuntimeError):
    """The peer stopped making progress while we were blocked on it.

    Raised from a blocking ring operation when the ``liveness`` callback
    reports the other side dead. Carries the ring's frame counters so
    the caller (the profiler) can say exactly how far each side got —
    ``committed`` frames published by the producer, ``consumed`` frames
    the consumer had taken when it died.
    """

    def __init__(self, committed: int, consumed: int) -> None:
        self.committed = committed
        self.consumed = consumed
        super().__init__(
            f"ring peer died: {committed} frames committed, "
            f"{consumed} consumed"
        )


def _aligned(nbytes: int) -> int:
    return -(-nbytes // _RECORD_ALIGN) * _RECORD_ALIGN


class _RingEnd:
    """State shared by both ends: counter views plus the data window."""

    def __init__(self, region: np.ndarray) -> None:
        if region.dtype != np.uint8 or region.ndim != 1:
            raise ValueError("ring region must be a 1-D uint8 array")
        if len(region) < MIN_RING_BYTES:
            raise ValueError(
                f"ring region of {len(region)} bytes is below the "
                f"{MIN_RING_BYTES}-byte minimum"
            )
        self._counters = region[:RING_HEADER_BYTES].view(np.uint64)
        self._data = region[RING_HEADER_BYTES:]
        # Capacity is a multiple of the record alignment so a record
        # never ends at a misaligned position.
        self.capacity = (len(region) - RING_HEADER_BYTES) & ~(
            _RECORD_ALIGN - 1
        )
        self._data = self._data[: self.capacity]

    # Counter accessors: each u64 sits alone on its cache line; a read
    # or write is one aligned 8-byte access.
    @property
    def head(self) -> int:
        return int(self._counters[0])

    @property
    def tail(self) -> int:
        return int(self._counters[8])

    @property
    def committed_frames(self) -> int:
        """Frames published by the producer (the commit sequence)."""
        return int(self._counters[16])

    @property
    def consumed_frames(self) -> int:
        """Frames the consumer has taken out of the ring."""
        return int(self._counters[24])

    @property
    def occupancy(self) -> int:
        """Bytes currently committed and not yet released."""
        return self.tail - self.head


class RingProducer(_RingEnd):
    """The single writer of an SPSC ring (the profiler's dispatch side).

    Not thread-safe by design — the profiler's ingest lock already
    serializes producers, and the SPSC protocol is what keeps the ring
    coherent against the consumer without any lock at all.
    """

    def __init__(
        self,
        region: np.ndarray,
        *,
        policy: str = "block",
        liveness: Optional[Callable[[], bool]] = None,
        on_wake: Optional[Callable[[], None]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(region)
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {_POLICIES}"
            )
        self.policy = policy
        self._liveness = liveness
        self._on_wake = on_wake
        self._clock = clock
        self._tail = self.tail  # local mirror; the counter is ours
        # FIFO overflow backlog under the spill policy: (kind, values,
        # counts) triples re-offered ahead of any new frame.
        self._spill: List[
            Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]
        ] = []
        self.sequence = self.committed_frames
        # True when the consumer caught up (and may have parked) but a
        # frame was written without a nudge; the next wake-worthy event
        # must nudge even if the consumer no longer *looks* caught up.
        self._wake_owed = False
        self.stalls = 0
        self.stall_seconds = 0.0
        self.dropped_batches = 0
        self.dropped_events = 0
        self.spilled_batches = 0
        self.peak_bytes = 0

    # -- space management ----------------------------------------------

    def _record_bytes(self, frame_bytes: int) -> int:
        return _LENGTH_BYTES + _aligned(frame_bytes)

    def _need_for(self, frame_bytes: int) -> int:
        """Worst-case bytes to place one frame, pad record included."""
        record = self._record_bytes(frame_bytes)
        at = self._tail % self.capacity
        if self.capacity - at < record:
            return (self.capacity - at) + record
        return record

    def _free(self) -> int:
        return self.capacity - (self._tail - self.head)

    def max_frame_bytes(self) -> int:
        """Largest single frame this ring can ever hold."""
        # Worst case the frame needs a full pad to the wrap point plus
        # its own record; keep a healthy margin so a max-size frame can
        # always be placed regardless of the tail position.
        return self.capacity // 2 - 2 * _LENGTH_BYTES

    def _wait_for(self, needed: int) -> None:
        """Block until ``needed`` bytes are free; liveness-checked."""
        if self._free() >= needed:
            return
        # Never block against a consumer that may still be parked on an
        # owed wake-up — space can only come from its progress.
        if self._wake_owed and self._on_wake is not None:
            self._on_wake()
            self._wake_owed = False
        for _ in range(_SPIN_ROUNDS):
            if self._free() >= needed:
                return
        self.stalls += 1
        clock = self._clock
        start = clock() if clock is not None else 0.0
        slept = 0
        try:
            while self._free() < needed:
                time.sleep(_SLEEP_S)
                slept += 1
                if slept % _LIVENESS_EVERY == 0 and (
                    self._liveness is not None and not self._liveness()
                ):
                    raise RingStalled(
                        self.committed_frames, self.consumed_frames
                    )
        finally:
            if clock is not None:
                self.stall_seconds += clock() - start

    # -- the write path ------------------------------------------------

    def _place(
        self,
        kind: int,
        values: Optional[np.ndarray],
        counts: Optional[np.ndarray],
    ) -> None:
        """Write one frame at the tail; caller guaranteed the space."""
        count = 0 if values is None else len(values)
        frame_bytes = frame_nbytes(kind, count)
        record = self._record_bytes(frame_bytes)
        data = self._data
        at = self._tail % self.capacity
        advance = record
        if self.capacity - at < record:
            # Stamp a pad record: length word only, "skip to start".
            data[at:at + _LENGTH_BYTES].view(np.uint64)[0] = _PAD_WORD
            advance += self.capacity - at
            at = 0
        # The consumer may be parked on its control pipe whenever it
        # has caught up — consumed every frame committed before this
        # one — and has not been nudged since (``_wake_owed`` carries
        # the caught-up-but-unnudged state across frames we chose not
        # to wake for). The shared *head* is no park signal: deferred
        # release keeps it behind the consumer's private cursor.
        # Checked before the commit below so the caught-up state is
        # the one the consumer parked from.
        possibly_parked = (
            self.consumed_frames >= self.sequence or self._wake_owed
        )
        self.sequence += 1
        encode_frame_into(
            data[at + _LENGTH_BYTES:at + record],
            kind,
            values,
            counts,
            sequence=self.sequence,
        )
        # Publication order matters: payload, then the length word (the
        # per-record commit marker), then the shared counters — tail
        # strictly last, so the consumer can never see a torn frame.
        data[at:at + _LENGTH_BYTES].view(np.uint64)[0] = frame_bytes
        self._counters[16] = self.sequence
        self._tail += advance
        self._counters[8] = self._tail
        occupancy = self._tail - self.head
        if occupancy > self.peak_bytes:
            self.peak_bytes = occupancy
        # Nudge a possibly-parked consumer only when its progress is
        # *needed*: at a sync frame (someone is waiting on the reply)
        # or once the ring is half full (space will be needed soon).
        # Ordinary data frames in a roomy ring just accumulate — with
        # the wake *owed*, not sent — and the consumer drains them all
        # in one wake-up at the next sync instead of paying a
        # context-switch round trip per frame, which matters exactly
        # when producer and consumer share scarce cores.
        if possibly_parked:
            if self._on_wake is not None and (
                kind == FRAME_SYNC or self._free() < self.capacity // 2
            ):
                self._on_wake()
                self._wake_owed = False
            else:
                self._wake_owed = True

    def _split(
        self,
        kind: int,
        values: Optional[np.ndarray],
        counts: Optional[np.ndarray],
    ) -> List[Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]]:
        """Halve oversized frames until each piece fits the ring.

        The split is a pure function of the frame length, so flush
        points downstream stay a function of the stream no matter how
        small the ring is.
        """
        count = 0 if values is None else len(values)
        if frame_nbytes(kind, count) <= self.max_frame_bytes() or count < 2:
            return [(kind, values, counts)]
        half = count // 2
        lo = self._split(
            kind, values[:half], None if counts is None else counts[:half]
        )
        hi = self._split(
            kind, values[half:], None if counts is None else counts[half:]
        )
        return lo + hi

    def _fits(
        self,
        pieces: List[Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]],
    ) -> bool:
        """Exact free-space check for placing every piece, pads included."""
        tail = self._tail
        need = 0
        for kind, values, _ in pieces:
            count = 0 if values is None else len(values)
            record = self._record_bytes(frame_nbytes(kind, count))
            at = tail % self.capacity
            if self.capacity - at < record:
                pad = self.capacity - at
                need += pad
                tail += pad
            need += record
            tail += record
        return self._free() >= need

    def _place_all(
        self,
        pieces: List[Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]],
        block: bool,
    ) -> bool:
        """Place every piece, or (non-blocking) nothing at all.

        All-or-nothing keeps the drop/spill policies frame-atomic: a
        frame that was split for size is never half-committed and then
        dropped or re-queued, which would duplicate or lose events.
        """
        if not block and not self._fits(pieces):
            return False
        for kind, values, counts in pieces:
            count = 0 if values is None else len(values)
            if block:
                self._wait_for(self._need_for(frame_nbytes(kind, count)))
            self._place(kind, values, counts)
        return True

    def _drain_spill(self, block: bool) -> bool:
        """Re-offer the spill backlog in FIFO order; True when empty."""
        while self._spill:
            kind, values, counts = self._spill[0]
            if not self._place_all(self._split(kind, values, counts), block):
                return False
            self._spill.pop(0)
        return True

    def write_frame(
        self,
        kind: int,
        values: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
    ) -> str:
        """Submit one data frame under this ring's backpressure policy.

        Returns the disposition — ``"queued"``, ``"dropped"`` or
        ``"spilled"`` — with exactly the :class:`ShardQueue` semantics:
        ``block`` waits for space (raising :class:`RingStalled` if the
        consumer dies meanwhile), ``drop`` discards-and-counts a frame
        that does not fit, ``spill`` sends overflow to an unbounded
        FIFO that is re-offered ahead of new frames.
        """
        if self.policy == "spill" and not self._drain_spill(block=False):
            # FIFO: once a backlog exists, new frames queue behind it.
            self._spill.append((kind, values, counts))
            self.spilled_batches += 1
            return "spilled"
        pieces = self._split(kind, values, counts)
        if self._place_all(pieces, block=self.policy == "block"):
            return "queued"
        if self.policy == "drop":
            self.dropped_batches += 1
            if values is not None:
                if counts is not None:
                    self.dropped_events += int(np.sum(counts))
                else:
                    self.dropped_events += len(values)
            return "dropped"
        self._spill.append((kind, values, counts))
        self.spilled_batches += 1
        return "spilled"

    def write_sync(self) -> int:
        """Flush any spill backlog, then commit a sync frame (blocking).

        Returns the sync frame's sequence number; the worker echoes it
        in its ``synced`` reply, proving the quiesce point it
        acknowledged trails every frame written before this call.
        """
        self._drain_spill(block=True)
        self._place_all([(FRAME_SYNC, None, None)], block=True)
        return self.sequence

    @property
    def spill_backlog(self) -> int:
        """Frames currently parked in the spill FIFO."""
        return len(self._spill)


class RingConsumer(_RingEnd):
    """The single reader of an SPSC ring (the shard worker's side).

    :meth:`try_next` parses the next committed frame into zero-copy
    views and advances a *private* cursor; the shared ``head`` — the
    producer's free-space horizon — only moves on :meth:`release`, so
    a worker can hold decoded views across many frames (its combining
    buffer) and reclaim the bytes in one step after copying them out.
    """

    def __init__(self, region: np.ndarray) -> None:
        super().__init__(region)
        self._cursor = self.head

    @property
    def bytes_held(self) -> int:
        """Bytes consumed but not yet released (pinned by live views)."""
        return self._cursor - self.head

    def try_next(self) -> Optional[BinaryFrame]:
        """Decode the next committed frame, or ``None`` if none is.

        Raises :class:`~repro.core.serialize.FrameError` if the
        committed bytes do not parse — a corrupted transport is a
        protocol failure, never silent mis-ingestion.
        """
        while True:
            tail = self.tail
            available = tail - self._cursor
            if available == 0:
                return None
            at = self._cursor % self.capacity
            if available < _LENGTH_BYTES:
                raise FrameError(
                    f"ring corrupt: {available} committed bytes cannot "
                    "hold a length word"
                )
            length = int(self._data[at:at + _LENGTH_BYTES].view(np.uint64)[0])
            if length == _PAD_WORD:
                skip = self.capacity - at
                if available < skip:
                    raise FrameError(
                        "ring corrupt: pad record extends past the "
                        "committed tail"
                    )
                self._cursor += skip
                continue
            record = _LENGTH_BYTES + _aligned(length)
            if length == 0 or record > available or record > self.capacity - at:
                raise FrameError(
                    f"ring corrupt: record of {length} bytes at offset "
                    f"{at} does not fit the committed region"
                )
            frame = decode_frame(self._data[at + _LENGTH_BYTES:at + record])
            self._cursor += record
            self._counters[24] = self.consumed_frames + 1
            return frame

    def release(self) -> None:
        """Publish the cursor as the new head, freeing consumed bytes.

        Only call once every view handed out by :meth:`try_next` since
        the previous release has been copied out or dropped — the
        producer will overwrite the freed bytes.
        """
        self._counters[0] = self._cursor
