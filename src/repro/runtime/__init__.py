"""Sharded concurrent ingestion runtime for RAP profiles.

The paper's RAP engine is a one-pass streaming summarizer whose trees
are mergeable by construction (``combine_many`` folds shard profiles
with the undercount bound ``sum_i(epsilon_i * n_i)``). This package
turns that mergeability into a service: an event stream is partitioned
across ``N`` worker shards — each owning a private, confined
:class:`~repro.core.tree.RapTree` — fed through bounded batch queues
with explicit backpressure, and periodically folded into a consistent
global snapshot on an epoch boundary.

Entry point is :class:`Profiler` — ``open() / ingest(batch) /
snapshot() / query(range) / close()`` — the blessed v2 ingestion
surface for workloads, experiments and the CLI. The executor is chosen
uniformly through ``RapConfig(executor=..., shards=...)``: ``"serial"``
(inline), ``"thread"`` (one worker thread per shard) or ``"process"``
(one worker process per shard over shared-memory columnar trees — see
:mod:`repro.runtime.shm`; a dead worker surfaces as
:class:`WorkerCrashed` instead of a hang). See ``docs/runtime.md`` for
the architecture, executor selection, partitioning schemes,
backpressure policies and the snapshot consistency model.
"""

from .metrics import RuntimeMetrics, ShardMetrics
from .partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from .profiler import Profiler, WorkerCrashed
from .queues import QueueClosed, ShardQueue
from .ring import (
    DEFAULT_RING_BYTES,
    MIN_RING_BYTES,
    RingConsumer,
    RingProducer,
    RingStalled,
)
from .shm import ShmArena, ShmAttachment, sweep_prefix

__all__ = [
    "DEFAULT_RING_BYTES",
    "HashPartitioner",
    "MIN_RING_BYTES",
    "Partitioner",
    "Profiler",
    "QueueClosed",
    "RangePartitioner",
    "RingConsumer",
    "RingProducer",
    "RingStalled",
    "RuntimeMetrics",
    "ShardMetrics",
    "ShardQueue",
    "ShmArena",
    "ShmAttachment",
    "WorkerCrashed",
    "make_partitioner",
    "sweep_prefix",
]
