"""Sharded concurrent ingestion runtime for RAP profiles.

The paper's RAP engine is a one-pass streaming summarizer whose trees
are mergeable by construction (``combine_many`` folds shard profiles
with the undercount bound ``sum_i(epsilon_i * n_i)``). This package
turns that mergeability into a service: an event stream is partitioned
across ``N`` worker shards — each owning a private, thread-confined
:class:`~repro.core.tree.RapTree` — fed through bounded batch queues
with explicit backpressure, and periodically folded into a consistent
global snapshot on an epoch boundary.

Entry point is :class:`Profiler` — ``open() / ingest(batch) /
snapshot() / query(range) / close()`` — the blessed v2 ingestion
surface for workloads, experiments and the CLI. See ``docs/runtime.md``
for the architecture, partitioning schemes, backpressure policies and
the snapshot consistency model.
"""

from .metrics import RuntimeMetrics, ShardMetrics
from .partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from .profiler import Profiler
from .queues import QueueClosed, ShardQueue

__all__ = [
    "HashPartitioner",
    "Partitioner",
    "Profiler",
    "QueueClosed",
    "RangePartitioner",
    "RuntimeMetrics",
    "ShardMetrics",
    "ShardQueue",
    "make_partitioner",
]
