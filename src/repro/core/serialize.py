"""ASCII serialization of RAP trees (Section 3.2).

``rap_finalize`` "dumps the resulting RAP tree in ascii format for
further processing". The format here is line oriented and versioned:

.. code-block:: text

    RAPTREE 1
    config range_max=256 epsilon=0.01 branching=4
    events 5
    node 0 0 255 2
    node 1 0 63 3
    ...

``node <depth> <lo> <hi> <count>`` lines appear in pre-order, so the
parent of each node is the most recent shallower node — enough to rebuild
the exact tree without pointers. Round-tripping is exact and is covered
by property tests.
"""

from __future__ import annotations

from typing import List

from .config import RapConfig
from .node import RapNode
from .tree import RapTree

_FORMAT_VERSION = 1


def dump_tree(tree: RapTree) -> str:
    """Serialize ``tree`` to the versioned ASCII format."""
    config = tree.config
    lines: List[str] = [
        f"RAPTREE {_FORMAT_VERSION}",
        (
            "config"
            f" range_max={config.range_max}"
            f" epsilon={config.epsilon!r}"
            f" branching={config.branching}"
            f" merge_initial_interval={config.merge_initial_interval}"
            f" merge_growth={config.merge_growth!r}"
            f" min_split_threshold={config.min_split_threshold!r}"
        ),
        f"events {tree.events}",
    ]
    stack = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        lines.append(f"node {depth} {node.lo} {node.hi} {node.count}")
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    lines.append("")
    return "\n".join(lines)


def load_tree(text: str) -> RapTree:
    """Rebuild a :class:`RapTree` from :func:`dump_tree` output."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("RAPTREE"):
        raise ValueError("not a RAP tree dump (missing RAPTREE header)")
    version = int(lines[0].split()[1])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported dump version {version}")
    if len(lines) < 4:
        raise ValueError("truncated RAP tree dump")

    config_fields = {}
    for token in lines[1].split()[1:]:
        key, _, value = token.partition("=")
        config_fields[key] = value
    config = RapConfig(
        range_max=int(config_fields["range_max"]),
        epsilon=float(config_fields["epsilon"]),
        branching=int(config_fields["branching"]),
        merge_initial_interval=int(config_fields["merge_initial_interval"]),
        merge_growth=float(config_fields["merge_growth"]),
        min_split_threshold=float(config_fields["min_split_threshold"]),
    )
    events = int(lines[2].split()[1])

    tree = RapTree(config)
    path: List[RapNode] = []
    node_count = 0
    for line in lines[3:]:
        parts = line.split()
        if parts[0] != "node":
            raise ValueError(f"unexpected line in dump: {line!r}")
        depth, lo, hi, count = (int(part) for part in parts[1:])
        if depth == 0:
            root = tree.root
            if (lo, hi) != (root.lo, root.hi):
                raise ValueError(
                    f"root range [{lo}, {hi}] does not match universe "
                    f"[{root.lo}, {root.hi}]"
                )
            # Rebuilding a dumped tree: the root predates load_tree, so
            # its counter is restored here rather than through add().
            root.count = count  # noqa: RAP-LINT003
            path = [root]
        else:
            if depth > len(path):
                raise ValueError(f"node at depth {depth} has no parent: {line!r}")
            parent = path[depth - 1]
            child = RapNode(lo, hi, count=count)
            parent.attach_child(child)
            del path[depth:]
            path.append(child)
        node_count += 1

    # Restore internal accounting that add() would normally maintain.
    tree._events = events  # noqa: SLF001 - deliberate rebuild of internals
    tree._node_count = node_count  # noqa: SLF001
    if tree.total_weight() != events:
        raise ValueError(
            f"dump inconsistent: tree weight {tree.total_weight()} != "
            f"declared events {events}"
        )
    return tree


def dump_to_file(tree: RapTree, path: str) -> None:
    """Write :func:`dump_tree` output to ``path``."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(dump_tree(tree))


def load_from_file(path: str) -> RapTree:
    """Read a tree previously written by :func:`dump_to_file`."""
    with open(path, "r", encoding="ascii") as fh:
        return load_tree(fh.read())
