"""ASCII serialization of RAP trees (Section 3.2).

``rap_finalize`` "dumps the resulting RAP tree in ascii format for
further processing". The format here is line oriented and versioned:

.. code-block:: text

    RAPTREE 2
    config range_max=256 epsilon=0.01 branching=4 ...
    events 5
    scheduler next_at=1024.0 batches_fired=0
    node 0 0 255 2
    node 1 0 63 3
    ...

``node <depth> <lo> <hi> <count>`` lines appear in pre-order, so the
parent of each node is the most recent shallower node — enough to rebuild
the exact tree without pointers. Round-tripping is exact and is covered
by property tests.

Deployment knobs are deliberately *not* serialized: ``backend``,
``executor``, ``shards`` and ``debug_sanitize`` describe how a tree is
hosted, not what it summarizes. A dump taken from a process-executor
shard loads as a plain object-backend tree on the default serial
executor; the receiving side re-chooses its own runtime.

Version 2 added the ``scheduler`` line and the ``timeline_sample_every``/
``audit_every`` config fields. Version 1 dumps carried neither, which
made a reloaded tree think its *first* merge batch was still ahead — a
tree restored with millions of events would fire the whole geometric
backlog of merges on its first ``add()``. The version-1 reader kept here
reconstructs the schedule by fast-forwarding it over every trigger point
the dumped stream must already have passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from .config import RapConfig
from .node import RapNode
from .tree import RapTree

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def dump_tree(tree: RapTree) -> str:
    """Serialize ``tree`` to the versioned ASCII format."""
    config = tree.config
    scheduler = tree.merge_scheduler
    lines: List[str] = [
        f"RAPTREE {_FORMAT_VERSION}",
        (
            "config"
            f" range_max={config.range_max}"
            f" epsilon={config.epsilon!r}"
            f" branching={config.branching}"
            f" merge_initial_interval={config.merge_initial_interval}"
            f" merge_growth={config.merge_growth!r}"
            f" min_split_threshold={config.min_split_threshold!r}"
            f" timeline_sample_every={config.timeline_sample_every}"
            f" audit_every={config.audit_every}"
        ),
        f"events {tree.events}",
        (
            "scheduler"
            f" next_at={scheduler.next_at!r}"
            f" batches_fired={scheduler.batches_fired}"
        ),
    ]
    stack = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        lines.append(f"node {depth} {node.lo} {node.hi} {node.count}")
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    lines.append("")
    return "\n".join(lines)


def _parse_fields(line: str, kind: str) -> Dict[str, str]:
    parts = line.split()
    if not parts or parts[0] != kind:
        raise ValueError(f"expected {kind!r} line in dump, got: {line!r}")
    fields = {}
    for token in parts[1:]:
        key, _, value = token.partition("=")
        fields[key] = value
    return fields


def load_tree(text: str) -> RapTree:
    """Rebuild a :class:`RapTree` from :func:`dump_tree` output."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("RAPTREE"):
        raise ValueError("not a RAP tree dump (missing RAPTREE header)")
    version = int(lines[0].split()[1])
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported dump version {version}")
    header_lines = 3 if version == 1 else 4
    if len(lines) < header_lines + 1:
        raise ValueError("truncated RAP tree dump")

    config_fields = _parse_fields(lines[1], "config")
    config = RapConfig(
        range_max=int(config_fields["range_max"]),
        epsilon=float(config_fields["epsilon"]),
        branching=int(config_fields["branching"]),
        merge_initial_interval=int(config_fields["merge_initial_interval"]),
        merge_growth=float(config_fields["merge_growth"]),
        min_split_threshold=float(config_fields["min_split_threshold"]),
        # Version 1 predates these fields; they default to off.
        timeline_sample_every=int(
            config_fields.get("timeline_sample_every", "0")
        ),
        audit_every=int(config_fields.get("audit_every", "0")),
    )
    events = int(lines[2].split()[1])

    scheduler_next_at: Optional[float] = None
    scheduler_batches = 0
    if version >= 2:
        scheduler_fields = _parse_fields(lines[3], "scheduler")
        scheduler_next_at = float(scheduler_fields["next_at"])
        scheduler_batches = int(scheduler_fields["batches_fired"])

    tree = RapTree(config)
    path: List[RapNode] = []
    node_count = 0
    for line in lines[header_lines:]:
        parts = line.split()
        if parts[0] != "node":
            raise ValueError(f"unexpected line in dump: {line!r}")
        depth, lo, hi, count = (int(part) for part in parts[1:])
        if depth == 0:
            root = tree.root
            if (lo, hi) != (root.lo, root.hi):
                raise ValueError(
                    f"root range [{lo}, {hi}] does not match universe "
                    f"[{root.lo}, {root.hi}]"
                )
            # Rebuilding a dumped tree: the root predates load_tree, so
            # its counter is restored here rather than through add().
            root.count = count  # noqa: RAP-LINT003 - deserializer restores counters
            path = [root]
        else:
            if depth > len(path):
                raise ValueError(f"node at depth {depth} has no parent: {line!r}")
            parent = path[depth - 1]
            child = RapNode(lo, hi, count=count)
            parent.attach_child(child)
            del path[depth:]
            path.append(child)
        node_count += 1

    # Restore internal accounting that add() would normally maintain.
    tree._events = events  # noqa: SLF001 - deliberate rebuild of internals
    tree._node_count = node_count  # noqa: SLF001 - deliberate rebuild of internals
    scheduler = tree.merge_scheduler
    if scheduler_next_at is not None:
        scheduler.next_at = scheduler_next_at
        scheduler.batches_fired = scheduler_batches
    else:
        # Version-1 dumps carry no schedule: reconstruct it by advancing
        # over every geometric trigger the dumped stream already passed,
        # so the first post-load add() does not fire the whole backlog
        # of merges at once.
        while scheduler.next_at <= events:
            scheduler.next_at *= scheduler.growth
            scheduler.batches_fired += 1
    if tree.total_weight() != events:
        raise ValueError(
            f"dump inconsistent: tree weight {tree.total_weight()} != "
            f"declared events {events}"
        )
    return tree


def dump_to_file(tree: RapTree, path: str) -> None:
    """Write :func:`dump_tree` output to ``path``."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(dump_tree(tree))


def load_from_file(path: str) -> RapTree:
    """Read a tree previously written by :func:`dump_to_file`."""
    with open(path, "r", encoding="ascii") as fh:
        return load_tree(fh.read())


# ----------------------------------------------------------------------
# Binary counted-frame format (shard transport / network framing)
# ----------------------------------------------------------------------
#
# The ASCII format above ships whole trees; this section frames the
# *stream* — the partitioned batch/counted-batch/sync frames the process
# executor moves between producer and shard workers, and the unit the
# planned network ingest tier will put on the wire. The layout is a
# fixed little-endian header followed by the payload arrays verbatim,
# so an encoder can write a frame into any writable byte region
# (a shared-memory ring slot, a socket buffer) with two slice
# assignments and a decoder can hand back *views*, never copies:
#
# .. code-block:: text
#
#     offset  size  field
#          0     4  magic  b"RAPF"
#          4     2  format version (currently 1)
#          6     1  kind: 1=batch  2=cbatch  3=sync
#          7     1  value dtype tag: 0=none 1=<u8 2=<i8 3=<f8
#          8     8  count — number of payload values
#         16     8  sequence — producer frame counter (diagnostics,
#                   sync acknowledgement)
#         24     8  reserved (zero)
#         32     …  values[count]  (8-byte elements, tag dtype)
#          +     …  counts[count]  (<i8, cbatch frames only)
#
# Every field and payload element is 8 bytes or a divisor of its
# offset, so a frame placed at an 8-byte-aligned address has every
# array it contains aligned too. ``sync`` frames are header-only
# (count 0, tag 0): they exist to order a quiesce point *behind* the
# data frames that precede it in the same byte stream.

FRAME_MAGIC = b"RAPF"
FRAME_VERSION = 1
FRAME_HEADER_BYTES = 32

FRAME_BATCH = 1
FRAME_CBATCH = 2
FRAME_SYNC = 3

_FRAME_KINDS = (FRAME_BATCH, FRAME_CBATCH, FRAME_SYNC)

_FRAME_HEADER_DTYPE = np.dtype(
    [
        ("magic", "<u4"),
        ("version", "<u2"),
        ("kind", "u1"),
        ("vtag", "u1"),
        ("count", "<u8"),
        ("sequence", "<u8"),
        ("reserved", "<u8"),
    ]
)
assert _FRAME_HEADER_DTYPE.itemsize == FRAME_HEADER_BYTES

_FRAME_MAGIC_U32 = int(np.frombuffer(FRAME_MAGIC, dtype="<u4")[0])

#: Supported value dtypes. Everything is 8 bytes wide on purpose: the
#: profiler's event values are ``uint64`` (``int64`` when they arrive as
#: plain Python lists) and the float tag reserves room for value-weight
#: streams without a format bump.
_TAG_NONE = 0
_TAG_BY_DTYPE = {
    np.dtype("<u8"): 1,
    np.dtype("<i8"): 2,
    np.dtype("<f8"): 3,
}
_DTYPE_BY_TAG = {tag: dtype for dtype, tag in _TAG_BY_DTYPE.items()}
_COUNTS_DTYPE = np.dtype("<i8")

FrameBuffer = Union[np.ndarray, bytes, bytearray, memoryview]


class FrameError(ValueError):
    """A binary frame failed validation (bad header, truncated payload).

    Raised by :func:`decode_frame` for *any* malformed input — garbage
    magic, unsupported version, unknown kind, impossible count — so a
    corrupted transport surfaces as a clean Python exception, never a
    mis-parse silently feeding wrong events into a tree.
    """


@dataclass(frozen=True)
class BinaryFrame:
    """One decoded frame: header fields plus zero-copy payload views.

    ``values``/``counts`` are read-only ndarray views over the buffer
    the frame was decoded from — they stay valid exactly as long as
    that buffer does (a ring consumer must copy before releasing the
    region). ``nbytes`` is the total encoded size, i.e. how far the
    next frame starts.
    """

    kind: int
    sequence: int
    values: Optional[np.ndarray]
    counts: Optional[np.ndarray]
    nbytes: int


def frame_nbytes(kind: int, count: int) -> int:
    """Encoded size in bytes of a frame with ``count`` payload values."""
    if kind == FRAME_SYNC:
        return FRAME_HEADER_BYTES
    payload = count * 8
    if kind == FRAME_CBATCH:
        payload *= 2
    return FRAME_HEADER_BYTES + payload


def _payload_tag(values: np.ndarray) -> int:
    tag = _TAG_BY_DTYPE.get(values.dtype.newbyteorder("<"))
    if tag is None:
        raise FrameError(
            f"unsupported frame value dtype {values.dtype}; expected one "
            f"of {sorted(str(d) for d in _TAG_BY_DTYPE)}"
        )
    return tag


def encode_frame_into(
    target: np.ndarray,
    kind: int,
    values: Optional[np.ndarray] = None,
    counts: Optional[np.ndarray] = None,
    sequence: int = 0,
) -> int:
    """Write one frame at the start of ``target``; return its size.

    ``target`` is any writable contiguous ``uint8`` array at least
    :func:`frame_nbytes` long — typically a slice of a shared-memory
    ring. The payload arrays are copied in via dtype-punned slice
    assignment (one vectorized copy each, no intermediate ``bytes``).
    ``counts`` is required for ``FRAME_CBATCH``, forbidden otherwise;
    ``FRAME_SYNC`` takes no payload at all.
    """
    if kind not in _FRAME_KINDS:
        raise FrameError(f"unknown frame kind {kind!r}")
    if kind == FRAME_SYNC:
        count = 0
        tag = _TAG_NONE
    else:
        if values is None:
            raise FrameError(f"frame kind {kind} requires a values array")
        count = len(values)
        tag = _payload_tag(values)
    if (counts is not None) != (kind == FRAME_CBATCH):
        raise FrameError("counts are required for cbatch frames only")
    if counts is not None and len(counts) != count:
        raise FrameError(
            f"counts length {len(counts)} != values length {count}"
        )
    total = frame_nbytes(kind, count)
    if len(target) < total:
        raise FrameError(
            f"target holds {len(target)} bytes; frame needs {total}"
        )
    header = target[:FRAME_HEADER_BYTES].view(_FRAME_HEADER_DTYPE)
    header[0] = (
        _FRAME_MAGIC_U32, FRAME_VERSION, kind, tag, count, sequence, 0,
    )
    if count:
        at = FRAME_HEADER_BYTES
        span = count * 8
        target[at:at + span].view(_DTYPE_BY_TAG[tag])[:] = values
        if counts is not None:
            at += span
            target[at:at + span].view(_COUNTS_DTYPE)[:] = counts
    return total


def encode_frame(
    kind: int,
    values: Optional[np.ndarray] = None,
    counts: Optional[np.ndarray] = None,
    sequence: int = 0,
) -> bytes:
    """Encode one frame into a fresh ``bytes`` (tests, socket senders)."""
    count = 0 if values is None else len(values)
    buffer = np.zeros(frame_nbytes(kind, count), dtype=np.uint8)
    used = encode_frame_into(buffer, kind, values, counts, sequence)
    return buffer[:used].tobytes()


def decode_frame(buffer: FrameBuffer) -> BinaryFrame:
    """Decode the frame at the start of ``buffer`` without copying.

    ``buffer`` may be longer than the frame (a ring region, a socket
    read): ``BinaryFrame.nbytes`` says where the next frame starts.
    The payload views are marked read-only — decoding never grants
    write access to transport memory. Raises :class:`FrameError` on
    any malformed input.
    """
    if isinstance(buffer, np.ndarray):
        data = buffer.reshape(-1).view(np.uint8)
    else:
        data = np.frombuffer(buffer, dtype=np.uint8)
    if len(data) < FRAME_HEADER_BYTES:
        raise FrameError(
            f"truncated frame: {len(data)} bytes < "
            f"{FRAME_HEADER_BYTES}-byte header"
        )
    header = data[:FRAME_HEADER_BYTES].view(_FRAME_HEADER_DTYPE)[0]
    if int(header["magic"]) != _FRAME_MAGIC_U32:
        raise FrameError(
            f"bad frame magic 0x{int(header['magic']):08x}; "
            f"expected {FRAME_MAGIC!r}"
        )
    if int(header["version"]) != FRAME_VERSION:
        raise FrameError(
            f"unsupported frame version {int(header['version'])}; "
            f"this reader speaks version {FRAME_VERSION}"
        )
    kind = int(header["kind"])
    if kind not in _FRAME_KINDS:
        raise FrameError(f"unknown frame kind {kind}")
    tag = int(header["vtag"])
    count = int(header["count"])
    sequence = int(header["sequence"])
    if kind == FRAME_SYNC:
        if tag != _TAG_NONE or count != 0:
            raise FrameError(
                f"sync frame carries a payload (tag {tag}, count {count})"
            )
        return BinaryFrame(kind, sequence, None, None, FRAME_HEADER_BYTES)
    if tag not in _DTYPE_BY_TAG:
        raise FrameError(f"unknown value dtype tag {tag}")
    total = frame_nbytes(kind, count)
    if len(data) < total:
        raise FrameError(
            f"truncated frame payload: header declares {total} bytes, "
            f"buffer holds {len(data)}"
        )
    at = FRAME_HEADER_BYTES
    span = count * 8
    values = data[at:at + span].view(_DTYPE_BY_TAG[tag])
    values.flags.writeable = False
    counts = None
    if kind == FRAME_CBATCH:
        at += span
        counts = data[at:at + span].view(_COUNTS_DTYPE)
        counts.flags.writeable = False
    return BinaryFrame(kind, sequence, values, counts, total)
