"""ASCII serialization of RAP trees (Section 3.2).

``rap_finalize`` "dumps the resulting RAP tree in ascii format for
further processing". The format here is line oriented and versioned:

.. code-block:: text

    RAPTREE 2
    config range_max=256 epsilon=0.01 branching=4 ...
    events 5
    scheduler next_at=1024.0 batches_fired=0
    node 0 0 255 2
    node 1 0 63 3
    ...

``node <depth> <lo> <hi> <count>`` lines appear in pre-order, so the
parent of each node is the most recent shallower node — enough to rebuild
the exact tree without pointers. Round-tripping is exact and is covered
by property tests.

Deployment knobs are deliberately *not* serialized: ``backend``,
``executor``, ``shards`` and ``debug_sanitize`` describe how a tree is
hosted, not what it summarizes. A dump taken from a process-executor
shard loads as a plain object-backend tree on the default serial
executor; the receiving side re-chooses its own runtime.

Version 2 added the ``scheduler`` line and the ``timeline_sample_every``/
``audit_every`` config fields. Version 1 dumps carried neither, which
made a reloaded tree think its *first* merge batch was still ahead — a
tree restored with millions of events would fire the whole geometric
backlog of merges on its first ``add()``. The version-1 reader kept here
reconstructs the schedule by fast-forwarding it over every trigger point
the dumped stream must already have passed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .config import RapConfig
from .node import RapNode
from .tree import RapTree

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def dump_tree(tree: RapTree) -> str:
    """Serialize ``tree`` to the versioned ASCII format."""
    config = tree.config
    scheduler = tree.merge_scheduler
    lines: List[str] = [
        f"RAPTREE {_FORMAT_VERSION}",
        (
            "config"
            f" range_max={config.range_max}"
            f" epsilon={config.epsilon!r}"
            f" branching={config.branching}"
            f" merge_initial_interval={config.merge_initial_interval}"
            f" merge_growth={config.merge_growth!r}"
            f" min_split_threshold={config.min_split_threshold!r}"
            f" timeline_sample_every={config.timeline_sample_every}"
            f" audit_every={config.audit_every}"
        ),
        f"events {tree.events}",
        (
            "scheduler"
            f" next_at={scheduler.next_at!r}"
            f" batches_fired={scheduler.batches_fired}"
        ),
    ]
    stack = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        lines.append(f"node {depth} {node.lo} {node.hi} {node.count}")
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    lines.append("")
    return "\n".join(lines)


def _parse_fields(line: str, kind: str) -> Dict[str, str]:
    parts = line.split()
    if not parts or parts[0] != kind:
        raise ValueError(f"expected {kind!r} line in dump, got: {line!r}")
    fields = {}
    for token in parts[1:]:
        key, _, value = token.partition("=")
        fields[key] = value
    return fields


def load_tree(text: str) -> RapTree:
    """Rebuild a :class:`RapTree` from :func:`dump_tree` output."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("RAPTREE"):
        raise ValueError("not a RAP tree dump (missing RAPTREE header)")
    version = int(lines[0].split()[1])
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported dump version {version}")
    header_lines = 3 if version == 1 else 4
    if len(lines) < header_lines + 1:
        raise ValueError("truncated RAP tree dump")

    config_fields = _parse_fields(lines[1], "config")
    config = RapConfig(
        range_max=int(config_fields["range_max"]),
        epsilon=float(config_fields["epsilon"]),
        branching=int(config_fields["branching"]),
        merge_initial_interval=int(config_fields["merge_initial_interval"]),
        merge_growth=float(config_fields["merge_growth"]),
        min_split_threshold=float(config_fields["min_split_threshold"]),
        # Version 1 predates these fields; they default to off.
        timeline_sample_every=int(
            config_fields.get("timeline_sample_every", "0")
        ),
        audit_every=int(config_fields.get("audit_every", "0")),
    )
    events = int(lines[2].split()[1])

    scheduler_next_at: Optional[float] = None
    scheduler_batches = 0
    if version >= 2:
        scheduler_fields = _parse_fields(lines[3], "scheduler")
        scheduler_next_at = float(scheduler_fields["next_at"])
        scheduler_batches = int(scheduler_fields["batches_fired"])

    tree = RapTree(config)
    path: List[RapNode] = []
    node_count = 0
    for line in lines[header_lines:]:
        parts = line.split()
        if parts[0] != "node":
            raise ValueError(f"unexpected line in dump: {line!r}")
        depth, lo, hi, count = (int(part) for part in parts[1:])
        if depth == 0:
            root = tree.root
            if (lo, hi) != (root.lo, root.hi):
                raise ValueError(
                    f"root range [{lo}, {hi}] does not match universe "
                    f"[{root.lo}, {root.hi}]"
                )
            # Rebuilding a dumped tree: the root predates load_tree, so
            # its counter is restored here rather than through add().
            root.count = count  # noqa: RAP-LINT003 - deserializer restores counters
            path = [root]
        else:
            if depth > len(path):
                raise ValueError(f"node at depth {depth} has no parent: {line!r}")
            parent = path[depth - 1]
            child = RapNode(lo, hi, count=count)
            parent.attach_child(child)
            del path[depth:]
            path.append(child)
        node_count += 1

    # Restore internal accounting that add() would normally maintain.
    tree._events = events  # noqa: SLF001 - deliberate rebuild of internals
    tree._node_count = node_count  # noqa: SLF001 - deliberate rebuild of internals
    scheduler = tree.merge_scheduler
    if scheduler_next_at is not None:
        scheduler.next_at = scheduler_next_at
        scheduler.batches_fired = scheduler_batches
    else:
        # Version-1 dumps carry no schedule: reconstruct it by advancing
        # over every geometric trigger the dumped stream already passed,
        # so the first post-load add() does not fire the whole backlog
        # of merges at once.
        while scheduler.next_at <= events:
            scheduler.next_at *= scheduler.growth
            scheduler.batches_fired += 1
    if tree.total_weight() != events:
        raise ValueError(
            f"dump inconsistent: tree weight {tree.total_weight()} != "
            f"declared events {events}"
        )
    return tree


def dump_to_file(tree: RapTree, path: str) -> None:
    """Write :func:`dump_tree` output to ``path``."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(dump_tree(tree))


def load_from_file(path: str) -> RapTree:
    """Read a tree previously written by :func:`dump_to_file`."""
    with open(path, "r", encoding="ascii") as fh:
        return load_tree(fh.read())
