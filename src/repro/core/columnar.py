"""Struct-of-arrays RAP tree kernel with vectorized batch ingest.

:class:`ColumnarRapTree` stores the range tree in parallel columns
instead of linked :class:`~repro.core.node.RapNode` objects. One *slot*
(column index) is one node; freed slots are recycled through a free
list. The layout per slot is hybrid — numpy arrays for the columns the
vectorized kernel gathers from, plain Python lists for the columns the
scalar cascade walks (CPython list indexing is an order of magnitude
faster than numpy scalar indexing, and the scalar path is all
single-element access):

========================  ==========  =========================================
column                    storage     meaning
========================  ==========  =========================================
``_counts_list``          list        the node's counter (canonical)
``_counts``               int64 array lazily refreshed mirror of the counters
                                      (vector gather/scatter + range queries)
``_is_item``              bool array  ``lo == hi`` (vector fit predicate)
``_los`` / ``_his``       list        closed range bounds (universe to 2**64)
``_parents``              list        parent slot (-1 at the root)
``_first_child``          list        head of the sorted sibling chain (-1)
``_next_sibling``         list        next sibling in ``lo`` order (-1 at end)
``_n_children``           list        chain length (avoids walks on fan-out)
``_dirty``                list        dirty-frontier flag (see tree.py)
``_cached_weight``        list        subtree weight at last merge visit
``_cached_min``           list        min subtree weight at last merge visit
``_live``                 list        slot is an allocated node
========================  ==========  =========================================

On top of the slots sits the *cover index*: the deepest covering node is
piecewise constant over the value space, so ``_cov_starts`` (sorted
segment starts) and ``_cov_owner`` (owning slot per segment) answer
"smallest covering range" with one ``searchsorted`` — for a whole batch
at once. The index is maintained lazily: splits queue their splice on
``_cov_pending`` and the next vectorized round folds every queued splice
into one concatenate-and-argsort pass (a split node's owned region is
exactly its missing partition cells); the rare merge passes schedule a
wholesale rebuild instead. The scalar path never touches the index — it
descends the sibling chains from a finger-cached slot, exactly like the
object backend's ``_locate``.

Batch ingest (`extend` / `add_counted` / `add_batch`) runs *vectorized
rounds*: look up every window item's owner through the cover index, and
apply the longest prefix whose items provably fit inline — per-owner
window totals below the split threshold, before the next merge trigger
— with one ``bincount`` scatter. The first item the mask cannot prove
safe drops to an exact scalar port of the object backend's ``add``
cascade (same closed-form split crossing points, same mid-count
merges); once the stream fits inline again the kernel re-vectorizes the
tail. Both the window size and the scalar stretch length adapt: calm
regions run huge windows, split-heavy regions stay scalar (where the
kernel is as fast as the object backend's inline loop) instead of
paying for rounds that apply almost nothing. The scalar path is
arithmetic-identical to :class:`repro.core.tree.RapTree`, and the
vectorized mask merely *routes* items (an item it cannot prove safe
goes to the scalar path, which decides authoritatively), so the two
backends produce identical trees for identical operation sequences.

Exactness: the vectorized fit mask works entirely on the integer side.
Per-owner deposits are summed exactly in int64 (``_exact_bincount``
splits each weight into 32-bit halves so every float64 partial sum that
``np.bincount`` computes internally stays below 2**53), and totals are
compared against ``math.floor`` of the float threshold — for integral
``x``, ``x <= t`` iff ``x <= floor(t)`` — so the mask agrees with the
object backend's CPython int arithmetic at every magnitude, including
counters past 2**53 (RAP-LINT019/020 gate regressions here).

Construct through ``RapTree.from_config(RapConfig(backend="columnar"))``
— importing this module's internals elsewhere is flagged by RAP-LINT012.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .config import MergeScheduler, RapConfig, split_crossing_point
from .node import RapNode, partition_range
from .stats import TreeStats

_NO_SLOT = -1
_INITIAL_CAPACITY = 64
# Scalar-stretch length before the first re-vectorization attempt. The
# stretch doubles (up to the max) every time a round comes back nearly
# empty, so split-heavy phases stay on the scalar fast path instead of
# paying for rounds that apply a handful of items.
_STREAK_MIN = 16
_STREAK_MAX = 1024
# Vectorized window sizing: grows while rounds apply their whole window,
# shrinks when they block early, bounding the work a blocked round
# throws away.
_WINDOW_MIN = 512
_WINDOW_START = 1024
_WINDOW_MAX = 16384
# A round that applied less than this is considered a miss for the
# adaptive streak/window logic.
_ROUND_MISS = 64
# Below this many remaining items the fixed numpy overhead of a round
# costs more than just finishing the tail through the scalar fast path.
_MIN_VECTOR_TAIL = 48

# int64 split point for _exact_bincount: weights are divided at 32 bits
# so each half's float64 bincount sum stays exact (see the docstring).
_LOW32 = (1 << 32) - 1
_INT64_MAX = 2**63 - 1


def _exact_bincount(
    owners: np.ndarray, weights: np.ndarray, minlength: int
) -> np.ndarray:
    """Exact int64 per-owner sums of non-negative int64 ``weights``.

    ``np.bincount(..., weights=...)`` always accumulates in float64,
    which rounds individual deposits above 2**53. Splitting each weight
    into 32-bit halves keeps every float64 partial sum exact — a window
    holds at most ``_WINDOW_MAX`` (2**14) items, so each half sums to
    below 2**14 * 2**32 = 2**46 < 2**53 — and the recombined int64
    total is exact for any per-owner sum that fits int64.
    """
    low = np.bincount(owners, weights=weights & _LOW32, minlength=minlength)
    high = np.bincount(owners, weights=weights >> 32, minlength=minlength)
    return low.astype(np.int64) + (high.astype(np.int64) << 32)


_LIST_COLUMNS: Tuple[str, ...] = (
    "_counts_list",
    "_los",
    "_his",
    "_parents",
    "_first_child",
    "_next_sibling",
    "_n_children",
    "_dirty",
    "_cached_weight",
    "_cached_min",
    "_live",
)


class ColumnarRapTree:
    """Array-backed RAP profile, observably equivalent to ``RapTree``.

    Implements the :class:`repro.core.backend.TreeBackend` protocol.
    ``root``/``nodes()``/``leaves()`` materialize a read-only
    :class:`~repro.core.node.RapNode` view of the columns (cached per
    mutation generation) so serialization, auditing and folds treat both
    backends identically. Mutating the view does not affect the tree.
    """

    def __init__(self, config: RapConfig) -> None:
        self._config = config
        self._counts = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._is_item = np.zeros(_INITIAL_CAPACITY, dtype=np.bool_)
        self._counts_list: List[int] = []
        self._los: List[int] = []
        self._his: List[int] = []
        self._parents: List[int] = []
        self._first_child: List[int] = []
        self._next_sibling: List[int] = []
        self._n_children: List[int] = []
        self._dirty: List[bool] = []
        self._cached_weight: List[int] = []
        self._cached_min: List[int] = []
        self._live: List[bool] = []
        self._free: List[int] = []
        self._size = 0
        # Mirror staleness: slots whose canonical (list) counter moved
        # since the numpy mirror was last refreshed, or everything after
        # a merge pass rewired the tree.
        self._mirror_stale: List[int] = []
        self._mirror_all_stale = False
        root = self._alloc(0, config.range_max - 1)
        assert root == 0, "root must occupy slot 0"
        self._node_count = 1
        self._events = 0
        self._scheduler = MergeScheduler(
            initial_interval=config.merge_initial_interval,
            growth=config.merge_growth,
        )
        self._stats = TreeStats(sample_every=config.timeline_sample_every)
        self._eps_over_height = config.epsilon / config.max_height
        self._min_threshold = config.min_split_threshold
        self._audit_every = config.audit_every
        self._next_audit = config.audit_every
        self._generation = 0
        self._confined_ident: Optional[int] = None
        # Finger cache for scalar descents (same role as RapTree's
        # ``_cached_node``); reset to the root after merges recycle slots.
        self._cached_slot = 0
        # Cover index: one segment, the whole universe, owned by the root.
        self._cov_starts = np.zeros(1, dtype=np.uint64)
        self._cov_owner = np.zeros(1, dtype=np.int64)
        # Lazy maintenance state: queued split splices, or a wholesale
        # rebuild request after a merge restructured the tree.
        self._cov_pending: List[Tuple[int, List[int]]] = []
        self._cov_rebuild = False
        # Cross-round owner cache (see _vector_round): owners resolved
        # for varr[_owner_cache_start:...] in the last round of the
        # current ingest, plus the structural changes since then that
        # decide how much of it is still valid.
        self._owner_cache: Optional[np.ndarray] = None
        self._owner_cache_start = 0
        self._splits_since_round: List[int] = []
        self._merged_since_round = False
        # Materialized RapNode view, cached per mutation generation.
        self._view_root: Optional[RapNode] = None
        self._view_generation = -1

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------

    def _alloc(self, lo: int, hi: int) -> int:
        """Take a slot off the free list (or grow) and initialize it.

        Recycled slots had their counter and item flag reset when the
        merge pass freed them, so allocation touches the numpy columns
        only for the rare single-item node.
        """
        if self._free:
            slot = self._free.pop()
            self._los[slot] = lo
            self._his[slot] = hi
            self._parents[slot] = _NO_SLOT
            self._first_child[slot] = _NO_SLOT
            self._next_sibling[slot] = _NO_SLOT
            self._n_children[slot] = 0
            # New nodes start dirty with zeroed caches, like RapNode.
            self._dirty[slot] = True
            self._cached_weight[slot] = 0
            self._cached_min[slot] = 0
            self._live[slot] = True
        else:
            slot = self._size
            self._size += 1
            if slot == len(self._counts):
                self._grow()
            self._counts_list.append(0)
            self._los.append(lo)
            self._his.append(hi)
            self._parents.append(_NO_SLOT)
            self._first_child.append(_NO_SLOT)
            self._next_sibling.append(_NO_SLOT)
            self._n_children.append(0)
            self._dirty.append(True)
            self._cached_weight.append(0)
            self._cached_min.append(0)
            self._live.append(True)
        if lo == hi:
            self._is_item[slot] = True
        return slot

    def _grow(self) -> None:
        capacity = max(_INITIAL_CAPACITY, 2 * len(self._counts))
        for name in ("_counts", "_is_item"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _free_slot(self, slot: int) -> None:
        self._live[slot] = False
        self._free.append(slot)

    def _refresh_mirror(self) -> None:
        """Bring the numpy counter mirror up to date with the lists.

        Wholesale ``fromiter`` when everything is stale (after merges)
        or when many individual slots moved; targeted scalar writes
        otherwise.
        """
        stale = self._mirror_stale
        if self._mirror_all_stale or len(stale) > self._size // 8:
            self._counts[: self._size] = np.fromiter(
                self._counts_list, dtype=np.int64, count=self._size
            )
            self._mirror_all_stale = False
        elif stale:
            counts = self._counts
            counts_list = self._counts_list
            for slot in stale:
                counts[slot] = counts_list[slot]
        if stale:
            self._mirror_stale = []

    def _children_slots(self, slot: int) -> List[int]:
        """Direct children of ``slot`` in ``lo`` order."""
        out: List[int] = []
        child = self._first_child[slot]
        next_sibling = self._next_sibling
        while child != _NO_SLOT:
            out.append(child)
            child = next_sibling[child]
        return out

    def _set_children(self, slot: int, kids: List[int]) -> None:
        """Rebuild the sibling chain of ``slot`` from a sorted slot list."""
        self._n_children[slot] = len(kids)
        self._first_child[slot] = kids[0] if kids else _NO_SLOT
        parents = self._parents
        next_sibling = self._next_sibling
        last = len(kids) - 1
        for index, kid in enumerate(kids):
            parents[kid] = slot
            next_sibling[kid] = kids[index + 1] if index < last else _NO_SLOT

    def _subtree_slots(self, slot: int) -> List[int]:
        """Every slot in the subtree rooted at ``slot`` (incl. itself)."""
        out: List[int] = []
        stack = [slot]
        first_child = self._first_child
        next_sibling = self._next_sibling
        while stack:
            current = stack.pop()
            out.append(current)
            child = first_child[current]
            while child != _NO_SLOT:
                stack.append(child)
                child = next_sibling[child]
        return out

    def _mark_dirty(self, slot: int) -> None:
        """Mark ``slot`` and its clean ancestors dirty (early-exit walk)."""
        dirty = self._dirty
        parents = self._parents
        while slot != _NO_SLOT and not dirty[slot]:
            dirty[slot] = True
            slot = parents[slot]

    # ------------------------------------------------------------------
    # Scalar descent (finger search over the sibling chains)
    # ------------------------------------------------------------------

    def _deepest_slot(self, value: int) -> int:
        """Slot of the deepest node covering ``value``.

        Finger search, exactly like ``RapTree._locate``: walk up from
        the cached slot until the value is covered, then descend the
        sorted sibling chains. Consecutive events land near each other
        (loops, hot ranges), so the walk is usually O(1).
        """
        los = self._los
        his = self._his
        slot = self._cached_slot
        if value < los[slot] or value > his[slot]:
            parents = self._parents
            slot = parents[slot]
            while slot != _NO_SLOT and (value < los[slot] or value > his[slot]):
                slot = parents[slot]
            if slot == _NO_SLOT:
                slot = 0
        first_child = self._first_child
        next_sibling = self._next_sibling
        while True:
            child = first_child[slot]
            while child != _NO_SLOT:
                if los[child] > value:
                    child = _NO_SLOT
                    break
                if value <= his[child]:
                    break
                child = next_sibling[child]
            if child == _NO_SLOT:
                self._cached_slot = slot
                return slot
            slot = child

    # ------------------------------------------------------------------
    # Cover index (vector rounds only; maintained lazily)
    # ------------------------------------------------------------------

    def _rebuild_cover(self) -> None:
        """Recompute the full cover index from the sibling chains.

        O(nodes); only merge passes (rare, geometric spacing) pay this.
        Splits queue in-place splices on ``_cov_pending`` instead.
        """
        starts: List[int] = []
        owners: List[int] = []

        def emit(slot: int) -> None:
            position = self._los[slot]
            child = self._first_child[slot]
            while child != _NO_SLOT:
                child_lo = self._los[child]
                if child_lo > position:
                    starts.append(position)
                    owners.append(slot)
                emit(child)
                position = self._his[child] + 1
                child = self._next_sibling[child]
            if position <= self._his[slot]:
                starts.append(position)
                owners.append(slot)

        emit(0)
        self._cov_starts = np.array(starts, dtype=np.uint64)
        self._cov_owner = np.array(owners, dtype=np.int64)

    def _sync_cover(self) -> None:
        """Fold queued split splices (or a rebuild) into the cover index.

        After a split every missing partition cell gained a child, so the
        split node owns nothing: its segments are exactly the union of
        the new children's ranges. Batching the queued splits means one
        concatenate-and-argsort per vectorized round instead of one per
        split; a fresh child that itself split later in the same batch
        contributes no segment (its own children do).
        """
        if self._cov_rebuild:
            self._rebuild_cover()
            self._cov_rebuild = False
            self._cov_pending.clear()
            return
        pending = self._cov_pending
        if not pending:
            return
        self._cov_pending = []
        split_slots = {slot for slot, _ in pending}
        new_owners = [
            kid
            for _, created in pending
            for kid in created
            if kid not in split_slots
        ]
        # Membership via a boolean table over slots: owners are slot ids
        # (< size), so this is O(segments) with no sorting — much cheaper
        # than np.isin for the handful of splits pending between rounds.
        split_table = np.zeros(self._size, dtype=np.bool_)
        split_table[list(split_slots)] = True
        keep = ~split_table[self._cov_owner]
        los = self._los
        kept_starts = self._cov_starts[keep]
        kept_owner = self._cov_owner[keep]
        new_owners.sort(key=los.__getitem__)
        new_starts = np.fromiter(
            (los[kid] for kid in new_owners),
            dtype=np.uint64,
            count=len(new_owners),
        )
        # Both sides are sorted, so a positioned insert replaces the
        # concatenate-and-argsort: O(segments) copy, no sort. Done by
        # hand (shared scatter mask) — np.insert's argument handling
        # costs more than the copy itself at this size.
        positions = np.searchsorted(kept_starts, new_starts)
        grown = kept_starts.size + new_starts.size
        at = positions + np.arange(new_starts.size)
        starts_out = np.empty(grown, dtype=np.uint64)
        owner_out = np.empty(grown, dtype=np.int64)
        old_at = np.ones(grown, dtype=np.bool_)
        old_at[at] = False
        starts_out[at] = new_starts
        owner_out[at] = np.asarray(new_owners, dtype=np.int64)
        starts_out[old_at] = kept_starts
        owner_out[old_at] = kept_owner
        self._cov_starts = starts_out
        self._cov_owner = owner_out

    # ------------------------------------------------------------------
    # Basic properties (mirrors RapTree)
    # ------------------------------------------------------------------

    @property
    def config(self) -> RapConfig:
        return self._config

    @property
    def root(self) -> RapNode:
        """Materialized read-only view of the tree (see class docstring)."""
        return self._materialize()

    @property
    def events(self) -> int:
        """Total event weight processed so far (the paper's ``n``)."""
        return self._events

    @property
    def node_count(self) -> int:
        """Current number of counters (nodes) in the tree."""
        return self._node_count

    @property
    def stats(self) -> TreeStats:
        return self._stats

    @property
    def mutation_generation(self) -> int:
        """Epoch counter bumped on every mutation of the profile."""
        return self._generation

    @property
    def merge_scheduler(self) -> MergeScheduler:
        return self._scheduler

    @property
    def split_threshold(self) -> float:
        """Current value of ``epsilon * n / log_b(R)`` (with floor)."""
        raw = self._eps_over_height * self._events
        return raw if raw > self._min_threshold else self._min_threshold

    def error_bound(self) -> float:
        """Worst-case undercount of any range estimate: ``epsilon * n``."""
        return self._config.epsilon * self._events

    def memory_bytes(self, bits_per_node: int = 128) -> int:
        """Current memory footprint at the paper's 128 bits/node (§4.2)."""
        return (self._node_count * bits_per_node + 7) // 8

    # ------------------------------------------------------------------
    # Thread confinement and cloning (runtime hooks)
    # ------------------------------------------------------------------

    def confine_to_current_thread(self) -> None:
        """Restrict mutations to the calling thread (see RapTree)."""
        self._confined_ident = threading.get_ident()

    def unconfine(self) -> None:
        """Lift thread confinement (any thread may mutate again)."""
        self._confined_ident = None

    def _assert_owner(self) -> None:
        ident = self._confined_ident
        if ident is not None and ident != threading.get_ident():
            raise RuntimeError(
                "ColumnarRapTree is confined to thread "
                f"{ident}; mutation attempted from thread "
                f"{threading.get_ident()}. Shard trees are "
                "single-writer — route events through the owning "
                "worker's queue (see repro.runtime)."
            )

    def clone(self) -> "ColumnarRapTree":
        """Deep, independent copy of this profile (still columnar).

        Column copies are cheaper than the object backend's serializer
        round-trip and preserve exactly the same state: structure,
        counters, merge-schedule position and the mutation generation.
        Statistics timelines are not carried over (same contract as
        ``RapTree.clone``).
        """
        self._sync_cover()
        self._refresh_mirror()
        other = ColumnarRapTree(self._config)
        other._counts = self._counts.copy()
        other._is_item = self._is_item.copy()
        for name in _LIST_COLUMNS:
            setattr(other, name, list(getattr(self, name)))
        other._free = list(self._free)
        other._size = self._size
        other._node_count = self._node_count
        other._events = self._events
        other._scheduler.next_at = self._scheduler.next_at
        other._scheduler.batches_fired = self._scheduler.batches_fired
        other._generation = self._generation
        other._cov_starts = self._cov_starts.copy()
        other._cov_owner = self._cov_owner.copy()
        return other

    # ------------------------------------------------------------------
    # Updates — scalar path (exact port of RapTree.add/_absorb)
    # ------------------------------------------------------------------

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``.

        Arithmetic-identical to :meth:`repro.core.tree.RapTree.add`:
        same closed-form split crossing points, same mid-count merge
        triggers, same descent semantics.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if value < 0 or value > self._his[0]:
            raise ValueError(
                f"value {value} outside universe [0, {self._his[0]}]"
            )
        self._absorb_slot(self._deepest_slot(value), value, count)
        self._generation += 1
        self._stats.observe_update()

        if self._scheduler.due(self._events):
            self.merge_now()

        if self._audit_every and self._events >= self._next_audit:
            while self._next_audit <= self._events:
                self._next_audit += self._audit_every
            self.audit()

    def _absorb_slot(self, slot: int, value: int, count: int) -> None:
        """Deposit ``count`` units of ``value`` starting at ``slot``.

        Line-for-line port of ``RapTree._absorb`` onto slots; every
        threshold comparison uses Python ints/floats, so the cascade
        arithmetic matches the object backend bit for bit.
        """
        remaining = count
        events = self._events
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        scheduler = self._scheduler
        stats = self._stats
        counts = self._counts_list
        stale = self._mirror_stale
        while True:
            next_at = scheduler.next_at
            m_merge = int(next_at - events)
            if events + m_merge < next_at:
                m_merge += 1
            if m_merge < 1:
                m_merge = 1
            m = remaining if remaining < m_merge else m_merge

            m_split = 0
            if self._los[slot] != self._his[slot]:
                c0 = counts[slot]
                cap_th = eps_h * (events + m)
                if cap_th < min_th:
                    cap_th = min_th
                if c0 + m > cap_th:
                    th1 = eps_h * (events + 1)
                    if th1 < min_th:
                        th1 = min_th
                    if c0 > int(th1):
                        # Already over threshold before absorbing (merge
                        # churn re-deposited weight): split dry and push
                        # the whole run down to the covering child.
                        self._split_slot(slot)
                        slot = self._deepest_slot(value)
                        continue
                    m_split = split_crossing_point(c0, events, eps_h, min_th)
                    if 0 < m_split < m:
                        m = m_split

            counts[slot] += m
            stale.append(slot)
            events += m
            remaining -= m
            self._events = events
            self._mark_dirty(slot)
            split_now = m_split != 0 and m == m_split
            if split_now:
                self._split_slot(slot)
            stats.observe_weight(m, self._node_count)

            if events >= next_at:
                self.merge_now()
                if not remaining:
                    return
                stale = self._mirror_stale
                slot = self._deepest_slot(value)
            elif not remaining:
                return
            else:
                # A split boundary was hit with units left: descend into
                # the fresh child (the deepest cover after our split).
                slot = self._deepest_slot(value)

    # ------------------------------------------------------------------
    # Updates — vectorized batch ingest
    # ------------------------------------------------------------------

    def extend(self, values: Iterable[int]) -> None:
        """Feed a stream of single events (vectorized rounds).

        Observably identical to calling :meth:`add` per value; with
        timeline sampling or self-audits enabled the per-event path is
        used outright so those hooks see every event.
        """
        items = values if isinstance(values, list) else list(values)
        self._ingest(items, None)

    def add_counted(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed pre-combined ``(value, count)`` pairs in arrival order."""
        items = pairs if isinstance(pairs, list) else list(pairs)
        self._ingest(
            [pair[0] for pair in items], [pair[1] for pair in items]
        )

    def add_batch(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed ``(value, count)`` pairs, sorted once and routed in bulk.

        Observably identical to ``add_counted(sorted(pairs))`` — the
        same contract as the object backend's batch kernel.
        """
        items = sorted(pairs)
        self._ingest(
            [pair[0] for pair in items], [pair[1] for pair in items]
        )

    def add_stream(self, values: Iterable[int], combine_chunk: int = 0) -> None:
        """Feed a stream, optionally combining duplicates per chunk."""
        if combine_chunk <= 0:
            self.extend(values)
            return
        chunk: Dict[int, int] = {}
        pending = 0
        for value in values:
            chunk[value] = chunk.get(value, 0) + 1
            pending += 1
            if pending >= combine_chunk:
                self.add_batch(chunk.items())
                chunk.clear()
                pending = 0
        if chunk:
            self.add_batch(chunk.items())

    def _ingest(
        self, values: List[int], counts: Optional[List[int]]
    ) -> None:
        """Shared bulk kernel behind extend/add_counted/add_batch.

        Alternates vectorized rounds (apply the provably-inline prefix
        in one bincount scatter) with exact scalar stretches around
        split and merge boundaries. ``counts is None`` means all ones
        (a raw stream).
        """
        if self._confined_ident is not None:
            self._assert_owner()
        stats = self._stats
        if stats.sample_every > 0 or self._audit_every:
            # Sampling/audit hooks must see every event: per-event path.
            add = self.add
            if counts is None:
                for value in values:
                    add(value)
            else:
                for value, count in zip(values, counts):
                    add(value, count)
            return
        total = len(values)
        if not total:
            return
        try:
            varr = np.asarray(values, dtype=np.uint64)
            carr = (
                np.ones(total, dtype=np.int64)
                if counts is None
                else np.asarray(counts, dtype=np.int64)
            )
        except (OverflowError, TypeError, ValueError):
            # Out-of-dtype input (negative / huge / non-integer values):
            # take the exact per-item path, which raises the same errors
            # at the same item the object backend would.
            add = self.add
            if counts is None:
                for value in values:
                    add(value)
            else:
                for value, count in zip(values, counts):
                    add(value, count)
            return

        root_hi = self._his[0]
        # Precomputed per-ingest: running event totals after each item
        # (events at any point is the start total plus this prefix — every
        # item deposits exactly once, in order) and the positions of
        # items the bulk path must hand to add() for error parity.
        cum_counts = np.cumsum(carr)
        invalid_at = np.flatnonzero(
            (varr > np.uint64(root_hi)) | (carr <= 0)
        )
        ones = counts is None
        pending_events = 0
        pending_updates = 0
        index = 0
        window = _WINDOW_START
        streak_limit = _STREAK_MIN
        # The owner cache only spans one ingest (indices are into this
        # call's varr).
        self._owner_cache = None
        self._splits_since_round = []
        self._merged_since_round = False
        try:
            while index < total:
                if total - index >= _MIN_VECTOR_TAIL:
                    index, applied, hit_end = self._vector_round(
                        varr, carr, cum_counts, invalid_at, ones,
                        index, window,
                    )
                    if hit_end:
                        # The whole window went in: open it wider and
                        # drop back to eager re-vectorization.
                        if window < _WINDOW_MAX:
                            window *= 2
                        streak_limit = _STREAK_MIN
                        continue
                    # Blocked round: retarget the window to roughly twice
                    # what this round managed (bounding how much owner
                    # lookup a future blocked round throws away), and
                    # lengthen the scalar stretch if rounds are applying
                    # almost nothing (boundary-cluster phases).
                    resized = 2 * applied
                    if resized < _WINDOW_MIN:
                        resized = _WINDOW_MIN
                    elif resized > _WINDOW_MAX:
                        resized = _WINDOW_MAX
                    if resized < window:
                        window = resized
                    if applied < _ROUND_MISS and streak_limit < _STREAK_MAX:
                        streak_limit *= 2
                    if index >= total:
                        break
                # Boundary cluster (or a short tail): exact scalar mode —
                # the object backend's inline fast path with the finger
                # descent inlined — until the stream fits inline again.
                streak = 0
                los = self._los
                his = self._his
                parents = self._parents
                first_child = self._first_child
                next_sibling = self._next_sibling
                dirty = self._dirty
                counts_list = self._counts_list
                stale = self._mirror_stale
                eps_h = self._eps_over_height
                min_th = self._min_threshold
                scheduler = self._scheduler
                slot = self._cached_slot
                while index < total and streak < streak_limit:
                    value = values[index]
                    count = 1 if ones else counts[index]
                    if count > 0 and 0 <= value <= root_hi:
                        if value < los[slot] or value > his[slot]:
                            slot = parents[slot]
                            while slot != _NO_SLOT and (
                                value < los[slot] or value > his[slot]
                            ):
                                slot = parents[slot]
                            if slot == _NO_SLOT:
                                slot = 0
                        while True:
                            child = first_child[slot]
                            while child != _NO_SLOT:
                                if los[child] > value:
                                    child = _NO_SLOT
                                    break
                                if value <= his[child]:
                                    break
                                child = next_sibling[child]
                            if child == _NO_SLOT:
                                break
                            slot = child
                        n = self._events + count
                        if n < scheduler.next_at:
                            if los[slot] == his[slot]:
                                fits = True
                            else:
                                threshold = eps_h * n
                                if threshold < min_th:
                                    threshold = min_th
                                fits = counts_list[slot] + count <= threshold
                            if fits:
                                counts_list[slot] += count
                                stale.append(slot)
                                self._events = n
                                if not dirty[slot]:
                                    self._mark_dirty(slot)
                                pending_events += count
                                pending_updates += 1
                                streak += 1
                                index += 1
                                continue
                    if pending_events:
                        stats.observe_batch(
                            pending_events, pending_updates, self._node_count
                        )
                        pending_events = 0
                        pending_updates = 0
                    self._cached_slot = slot
                    self.add(value, count)
                    # add() may merge, which swaps the stale list and
                    # resets the finger.
                    stale = self._mirror_stale
                    slot = self._cached_slot
                    streak = 0
                    index += 1
                self._cached_slot = slot
        finally:
            if pending_events:
                stats.observe_batch(
                    pending_events, pending_updates, self._node_count
                )
            self._generation += 1
            self._view_root = None

    def _vector_round(
        self,
        varr: np.ndarray,
        carr: np.ndarray,
        cum_counts: np.ndarray,
        invalid_at: np.ndarray,
        ones: bool,
        start: int,
        window: int,
    ) -> Tuple[int, int, bool]:
        """Apply the longest provably-inline prefix of one window.

        Returns ``(next_index, applied, hit_end)`` — the index of the
        first unapplied item, how many items went in, and whether the
        round consumed its whole window (as opposed to stopping on an
        item the mask could not prove safe).

        The fit predicate is a *conservative* form of the object
        backend's inline fast path: an item is safe if its owner's
        total deposit over the candidate prefix stays at or below the
        split threshold of the *first* item. That proves the exact
        inline condition for every item of the prefix at once — an
        item's own deposit plus the deposits before it never exceed the
        prefix total, and thresholds only grow within a round — so one
        ``bincount`` per round decides the whole mask, no sorting. The
        prefix also ends before the next merge trigger and before any
        item ``add()`` must reject. Items left out are handed to the
        exact scalar path, which replays the object backend's per-item
        decision authoritatively: the mask routes, it never decides
        semantics.
        """
        self._sync_cover()
        self._refresh_mirror()
        total = len(varr)
        if start + window > total:
            window = total - start
        size = self._size
        events_before = self._events
        next_at = self._scheduler.next_at
        # The provable prefix must stop before the merge trigger and
        # before any malformed item (out-of-universe value, count <= 0).
        n_after = None
        if ones:
            # Raw stream: the j-th window item lands at events + j, so
            # the merge cap is a scalar, no prefix array needed.
            can_take = int(next_at) - events_before
            while events_before + can_take >= next_at:
                can_take -= 1
            while events_before + can_take + 1 < next_at:
                can_take += 1
            limit = window if can_take >= window else max(can_take, 0)
        else:
            base = int(cum_counts[start - 1]) if start else 0
            n_after = (
                cum_counts[start : start + window] - base
            ) + events_before
            limit = int(np.searchsorted(n_after, next_at))
        if invalid_at.size:
            bad_index = np.searchsorted(invalid_at, start)
            if bad_index < invalid_at.size:
                next_invalid = int(invalid_at[bad_index]) - start
                if next_invalid < limit:
                    limit = next_invalid
        applied = 0
        totals = None
        if limit:
            # Owner lookup, reusing the previous round's resolutions for
            # the stretch it scanned but could not apply. Splits since
            # then invalidate exactly the positions owned by the split
            # slots (their regions were handed to new children); merges
            # invalidate everything.
            cache = self._owner_cache
            if self._merged_since_round:
                cache = None
                self._merged_since_round = False
                self._splits_since_round = []
            reused = None
            if cache is not None:
                offset = start - self._owner_cache_start
                if 0 <= offset < cache.size:
                    reused = cache[offset : offset + limit]
                    splits = self._splits_since_round
                    if splits:
                        table = np.zeros(size, dtype=np.bool_)
                        table[splits] = True
                        stale_at = np.flatnonzero(table[reused])
                        if stale_at.size:
                            reused = reused.copy()
                            reused[stale_at] = self._cov_owner[
                                np.searchsorted(
                                    self._cov_starts,
                                    varr[start + stale_at],
                                    side="right",
                                )
                                - 1
                            ]
            if reused is None:
                owners = self._cov_owner[
                    np.searchsorted(
                        self._cov_starts, varr[start : start + limit],
                        side="right",
                    )
                    - 1
                ]
            elif reused.size < limit:
                fresh = self._cov_owner[
                    np.searchsorted(
                        self._cov_starts,
                        varr[start + reused.size : start + limit],
                        side="right",
                    )
                    - 1
                ]
                owners = np.concatenate([reused, fresh])
            else:
                owners = reused
            self._owner_cache = owners
            self._owner_cache_start = start
            self._splits_since_round = []
            first_n = (
                events_before + 1 if ones else int(n_after[0])
            )
            th0 = self._eps_over_height * first_n
            if th0 < self._min_threshold:
                th0 = self._min_threshold
            # Integer-side threshold: for integral totals, x <= th0 iff
            # x <= floor(th0), so the mask never compares int64 against
            # float64 (inexact above 2**53). Clamped to int64 range —
            # past the clamp every representable total fits anyway.
            th_int = min(math.floor(th0), _INT64_MAX)
            counts = self._counts[:size]
            if ones:
                totals = np.bincount(owners, minlength=size)
            else:
                totals = _exact_bincount(
                    owners, carr[start : start + limit], size
                )
            owner_ok = self._is_item[:size] | (counts + totals <= th_int)
            bad_at = np.flatnonzero(~owner_ok[owners])
            if bad_at.size:
                # The window total overshoots for hot owners that are
                # not actually about to split — their early items fit
                # even though the whole window's worth would not. Refine
                # exactly for just the flagged owners: an owner's items
                # fit until its own running deposit crosses th0, and
                # every other owner already passed on its full total.
                applied = limit
                for owner in np.unique(owners[bad_at]).tolist():
                    count0 = int(counts[owner])
                    if ones:
                        # Closed form: the k-th occurrence is the first
                        # over, with the same float predicate (and ±1
                        # fixup) as the scalar path.
                        k = int(th0) - count0 + 1
                        if k < 1:
                            k = 1
                        while count0 + k <= th0:
                            k += 1
                        while k > 1 and count0 + k - 1 > th0:
                            k -= 1
                        first_over = int(
                            np.flatnonzero(owners == owner)[k - 1]
                        )
                    else:
                        positions = np.flatnonzero(owners == owner)
                        running = count0 + np.cumsum(
                            carr[start : start + limit][positions]
                        )
                        # running is int64-exact; x > th0 iff
                        # x > floor(th0) for integral x.
                        first_over = int(
                            positions[np.flatnonzero(running > th_int)[0]]
                        )
                    if first_over < applied:
                        applied = first_over
                if applied < limit:
                    totals = None
            else:
                applied = limit
        if applied:
            if applied == limit:
                sums = totals
            elif ones:
                sums = np.bincount(owners[:applied], minlength=size)
            else:
                sums = _exact_bincount(
                    owners[:applied], carr[start : start + applied], size
                )
            touched = np.flatnonzero(sums)
            # Both bincount shapes produce integer sums (unweighted
            # bincount returns intp; _exact_bincount returns int64).
            deposits = sums[touched]
            self._counts[touched] += deposits
            counts_list = self._counts_list
            dirty = self._dirty
            for slot, deposit in zip(touched.tolist(), deposits.tolist()):
                counts_list[slot] += deposit
                if not dirty[slot]:
                    self._mark_dirty(slot)
            self._events = (
                events_before + applied
                if ones
                else int(n_after[applied - 1])
            )
            self._stats.observe_batch(
                self._events - events_before, applied, self._node_count
            )
        return start + applied, applied, applied == window

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def _split_slot(self, slot: int) -> None:
        """Burst ``slot`` into up to ``b`` children (Section 2.2).

        Same policy as ``RapTree._split``: existing children (partition
        cells that survived a partial merge) are left alone, missing
        cells gain zero-count children, and the chain up to the root is
        marked dirty. The cover splice is queued for the next vectorized
        round rather than applied here.
        """
        lo = self._los[slot]
        hi = self._his[slot]
        kids = self._children_slots(slot)
        if kids:
            existing = {(self._los[k], self._his[k]) for k in kids}
            created = [
                self._alloc(cell_lo, cell_hi)
                for cell_lo, cell_hi in partition_range(
                    lo, hi, self._config.branching
                )
                if (cell_lo, cell_hi) not in existing
            ]
        else:
            created = [
                self._alloc(cell_lo, cell_hi)
                for cell_lo, cell_hi in partition_range(
                    lo, hi, self._config.branching
                )
            ]
        if created:
            if kids:
                los = self._los
                merged = sorted(kids + created, key=los.__getitem__)
            else:
                merged = created
            self._set_children(slot, merged)
            self._node_count += len(created)
            self._cov_pending.append((slot, created))
            self._splits_since_round.append(slot)
        self._mark_dirty(slot)
        self._stats.observe_split()

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def merge_now(self) -> int:
        """Run one batched merge pass; returns the number of nodes removed.

        Port of ``RapTree.merge_now`` — the same dirty-frontier walk
        over slots; a removed node schedules a wholesale cover-index
        rebuild for the next vectorized round (merges are rare;
        geometric spacing amortizes the O(nodes) rebuild to nothing).
        """
        if self._confined_ident is not None:
            self._assert_owner()
        threshold = self._config.merge_threshold(self._events)
        before = self._node_count
        free_before = len(self._free)
        visited = self._merge_frontier(threshold)
        removed = before - self._node_count
        self._stats.observe_merge_batch(removed, nodes_scanned=visited)
        self._scheduler.fired(self._events)
        self._generation += 1
        if removed:
            self._cov_rebuild = True
            self._cov_pending.clear()
            self._cached_slot = 0
            self._merged_since_round = True
            self._mirror_all_stale = True
            self._mirror_stale = []
            # Reset the recycled slots so _alloc never has to touch the
            # numpy columns (dead slots must read as count 0: estimate
            # and total_weight sum the raw counter column).
            counts_list = self._counts_list
            recycled = self._free[free_before:]
            for slot in recycled:
                counts_list[slot] = 0
            self._is_item[np.asarray(recycled, dtype=np.int64)] = False
        return removed

    def _merge_frontier(self, threshold: float) -> int:
        """Dirty-frontier post-order merge; returns slots examined.

        Frames carry ``[slot, next_child_slot, weight_accumulator,
        kept_children]`` — the chain pointer replaces the object
        backend's child index, everything else is the same walk.
        """
        if not self._dirty[0] and self._cached_min[0] > threshold:
            return 1
        visited = 1
        counts = self._counts_list
        first_child = self._first_child
        next_sibling = self._next_sibling
        dirty = self._dirty
        cached_weight = self._cached_weight
        cached_min = self._cached_min
        frames: List[list] = [[0, first_child[0], counts[0], []]]
        while frames:
            frame = frames[-1]
            slot = frame[0]
            child = frame[1]
            if child != _NO_SLOT:
                frame[1] = next_sibling[child]
                if not dirty[child]:
                    visited += 1
                    child_weight = cached_weight[child]
                    if child_weight <= threshold:
                        # Unchanged subtree at or below threshold:
                        # collapse it wholesale without walking it.
                        counts[slot] += child_weight
                        subtree = self._subtree_slots(child)
                        self._node_count -= len(subtree)
                        for freed in subtree:
                            self._free_slot(freed)
                        frame[2] += child_weight
                        continue
                    if cached_min[child] > threshold:
                        # Nothing inside can collapse; keep as is.
                        frame[2] += child_weight
                        frame[3].append(child)
                        continue
                visited += 1
                frames.append([child, first_child[child], counts[child], []])
                continue
            # All children resolved: finalize this slot.
            frames.pop()
            weight = frame[2]
            kept = frame[3]
            self._set_children(slot, kept)
            cached_weight[slot] = weight
            minimum = weight
            for kid in kept:
                kid_min = cached_min[kid]
                if kid_min < minimum:
                    minimum = kid_min
            cached_min[slot] = minimum
            dirty[slot] = False
            if frames:
                parent_frame = frames[-1]
                parent_frame[2] += weight
                if weight <= threshold:
                    # Every child already collapsed into this slot, so it
                    # is a leaf here (kept is empty).
                    counts[parent_frame[0]] += weight
                    self._free_slot(slot)
                    self._node_count -= 1
                else:
                    parent_frame[3].append(slot)
        return visited

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def smallest_covering(self, value: int) -> RapNode:
        """The deepest node whose range covers ``value`` (view node)."""
        if value < 0 or value > self._his[0]:
            raise ValueError(
                f"value {value} outside universe [0, {self._his[0]}]"
            )
        node = self._materialize()
        while True:
            child = node.child_covering(value)
            if child is None:
                return node
            node = child

    def find_node(self, lo: int, hi: int) -> Optional[RapNode]:
        """The view node with exactly the range ``[lo, hi]``, if present."""
        node = self._materialize()
        while True:
            if node.lo == lo and node.hi == hi:
                return node
            child = node.child_covering(lo)
            if child is None or child.hi < hi:
                return None
            node = child

    def _bounds_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Range bounds of every slot as arrays (query-time gather).

        Queries are orders of magnitude rarer than updates, so the
        bounds live in lists (fast scalar access) and are gathered on
        demand here.
        """
        size = self._size
        los = np.fromiter(self._los, dtype=np.uint64, count=size)
        his = np.fromiter(self._his, dtype=np.uint64, count=size)
        return los, his

    def estimate(self, lo: int, hi: int) -> int:
        """Lower-bound estimate of events that fell in ``[lo, hi]``.

        A node's subtree contributes iff its own range is contained in
        the query (ranges nest), so the stack walk of the object backend
        reduces to one vectorized containment mask over the slots. Dead
        slots hold count 0 (reset at merge time), so no liveness mask
        is needed.
        """
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        root_hi = self._his[0]
        if hi < 0 or lo > root_hi:
            return 0
        self._refresh_mirror()
        query_lo = np.uint64(max(lo, 0))
        query_hi = np.uint64(min(hi, root_hi))
        los, his = self._bounds_arrays()
        mask = (los >= query_lo) & (his <= query_hi)
        return int(self._counts[: self._size][mask].sum())

    def estimate_upper(self, lo: int, hi: int) -> int:
        """Upper-bound estimate: every overlapping counter contributes."""
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        root_hi = self._his[0]
        if hi < 0 or lo > root_hi:
            return 0
        self._refresh_mirror()
        query_lo = np.uint64(max(lo, 0))
        query_hi = np.uint64(min(hi, root_hi))
        los, his = self._bounds_arrays()
        mask = (los <= query_hi) & (his >= query_lo)
        return int(self._counts[: self._size][mask].sum())

    def nodes(self) -> Iterator[RapNode]:
        """Pre-order iteration over the materialized view."""
        return self._materialize().iter_subtree()

    def leaves(self) -> Iterator[RapNode]:
        """Iteration over childless view nodes."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def total_weight(self) -> int:
        """Sum of all counters; always equals :attr:`events`.

        Dead slots hold count 0 (reset at merge time), so the raw
        column sum is the tree total.
        """
        self._refresh_mirror()
        return int(self._counts[: self._size].sum())

    def depth(self) -> int:
        """Height of the tree (root alone has depth 0)."""
        best = 0
        stack = [(0, 0)]
        first_child = self._first_child
        next_sibling = self._next_sibling
        while stack:
            slot, depth = stack.pop()
            if depth > best:
                best = depth
            child = first_child[slot]
            while child != _NO_SLOT:
                stack.append((child, depth + 1))
                child = next_sibling[child]
        return best

    # ------------------------------------------------------------------
    # Materialized view
    # ------------------------------------------------------------------

    def _materialize(self) -> RapNode:
        """Build (or reuse) the linked ``RapNode`` view of the columns.

        Cached per mutation generation: serializers, auditors and folds
        may walk it repeatedly between mutations for free. The view is a
        snapshot — mutating it does not write back.
        """
        if (
            self._view_root is not None
            and self._view_generation == self._generation
        ):
            return self._view_root
        root = self._view_node(0, None)
        stack = [(0, root)]
        first_child = self._first_child
        next_sibling = self._next_sibling
        while stack:
            slot, node = stack.pop()
            child = first_child[slot]
            while child != _NO_SLOT:
                view_child = self._view_node(child, node)
                node.attach_child(view_child)
                stack.append((child, view_child))
                child = next_sibling[child]
        self._view_root = root
        self._view_generation = self._generation
        return root

    def _view_node(self, slot: int, parent: Optional[RapNode]) -> RapNode:
        node = RapNode(
            self._los[slot],
            self._his[slot],
            count=self._counts_list[slot],
            parent=parent,
        )
        node.dirty = self._dirty[slot]
        node.cached_weight = self._cached_weight[slot]
        node.cached_min = self._cached_min[slot]
        return node

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def audit(self) -> None:
        """Run the full structural auditor; raise ``AuditError`` if dirty."""
        # Imported lazily: repro.checks imports repro.core.
        from ..checks.audit import TreeAuditor

        TreeAuditor().audit(self).raise_if_failed()

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any broken structural invariant.

        Runs the object backend's full check against the materialized
        view (geometry, conservation, parent pointers, merge-cache
        coherence), then audits the columnar bookkeeping itself: the
        free list, the live column, the recycled-slot resets, the
        counter mirror and the cover index.
        """
        from .tree import RapTree

        probe = RapTree(self._config)
        probe._events = self._events  # noqa: SLF001 - borrowed checker
        probe._node_count = self._node_count  # noqa: SLF001 - borrowed checker
        probe._root = self._materialize()  # noqa: SLF001 - borrowed checker
        probe.check_invariants()

        size = self._size
        live_slots = [slot for slot in range(size) if self._live[slot]]
        assert len(live_slots) == self._node_count, (
            f"live column counts {len(live_slots)} slots, "
            f"node_count says {self._node_count}"
        )
        free_set = set(self._free)
        assert len(free_set) == len(self._free), "free list has duplicates"
        assert len(free_set) + len(live_slots) == size, (
            "free list and live column disagree on slot accounting"
        )
        for slot in self._free:
            assert not self._live[slot], f"free slot {slot} is still live"
            assert self._counts_list[slot] == 0, (
                f"free slot {slot} holds a nonzero count"
            )
            assert not self._is_item[slot], (
                f"free slot {slot} still flagged as an item"
            )
        for slot in live_slots:
            kids = self._children_slots(slot)
            assert self._n_children[slot] == len(kids), (
                f"slot {slot} chain length != n_children"
            )
            assert bool(self._is_item[slot]) == (
                self._los[slot] == self._his[slot]
            ), f"slot {slot} item flag disagrees with its bounds"
            for kid in kids:
                assert self._live[kid], f"dead child {kid} in chain of {slot}"
                assert self._parents[kid] == slot, (
                    f"child {kid} has wrong parent pointer"
                )
        self._refresh_mirror()
        assert self._counts[:size].tolist() == self._counts_list, (
            "counter mirror diverged from the canonical counters"
        )
        self._sync_cover()
        expected_starts = self._cov_starts
        expected_owner = self._cov_owner
        self._rebuild_cover()
        assert np.array_equal(expected_starts, self._cov_starts) and (
            np.array_equal(expected_owner, self._cov_owner)
        ), "cover index diverged from tree structure"

    def __len__(self) -> int:
        return self._node_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarRapTree(R={self._config.range_max}, "
            f"eps={self._config.epsilon}, nodes={self._node_count}, "
            f"events={self._events})"
        )
