"""Struct-of-arrays RAP tree kernel with vectorized batch ingest.

:class:`ColumnarRapTree` stores the range tree in parallel numpy
columns instead of linked :class:`~repro.core.node.RapNode` objects.
One *slot* (column index) is one node; freed slots are recycled through
a free stack. Every column has exactly one copy — there is no Python
shadow list and no mirror to refresh:

========================  ============  ===================================
column                    dtype         meaning
========================  ============  ===================================
``_counts``               int64         the node's counter (canonical)
``_los`` / ``_his``       uint64        closed range bounds (universe 2**64)
``_parents``              int32         parent slot (-1 at the root)
``_first_child``          int32         head of the sorted sibling chain
``_next_sibling``         int32         next sibling in ``lo`` order
``_n_children``           int32         chain length (avoids walks)
``_depth``                int32         node depth (root 0; level kernels)
``_is_item``              bool          ``lo == hi`` (vector fit predicate)
``_dirty``                bool          dirty-frontier flag (see tree.py)
``_cached_weight``        int64         subtree weight at last merge visit
``_cached_min``           int64         min subtree weight at last visit
``_live``                 bool          slot is an allocated node
``_free_slots``           int32         free stack (``_free_top`` entries)
========================  ============  ===================================

On top of the slots sits the *cover index*: the deepest covering node is
piecewise constant over the value space, so ``_cov_starts`` (sorted
segment starts) and ``_cov_owner`` (owning slot per segment) answer
"smallest covering range" with one ``searchsorted`` — for a whole batch
at once. The index is maintained incrementally in both directions:
splits queue positioned-insert splices on ``_cov_pending`` (a split
node's owned region is exactly its missing partition cells), and merge
passes remap every segment to the nearest surviving ancestor of its old
owner and coalesce equal-owner runs — no wholesale rebuild on either
path (``_rebuild_cover`` survives only as the oracle that
``check_invariants`` compares against).

Batch ingest (`extend` / `add_counted` / `add_batch`) consumes one
*window* per round. The round routes the window through the cover
index, cuts it before the next merge trigger and before any malformed
item, and partitions the cut into *safe* positions — provably inline at
their arrival moment — and *holdout* positions. Safe positions are
applied with one exact ``bincount`` scatter; holdouts (the tail of each
owner that crosses the split threshold) replay through the exact scalar
cascade in arrival order, each with ``events`` rewound to its arrival
value, so split cascades land exactly where the object backend puts
them. Unlike a prefix mask, a blocked owner never stalls the rest of
the window: every other owner's items still vectorize. The scalar
cascade is arithmetic-identical to :class:`repro.core.tree.RapTree`
(same closed-form split crossing points, same mid-count merges), so the
two backends produce identical trees for identical operation sequences.

Why the safe/holdout partition is exact: within one cut window no merge
can fire (the cut ends before the trigger) and thresholds only grow, so
a deposit that keeps its owner's counter at or below the *first* item's
threshold fits at its own (later) arrival too. An owner's safe
positions all precede its first crossing, so scattering them before
replaying the holdouts reproduces the object backend's per-item
counter states: a holdout cascade reads its owner's counter after
exactly the deposits that preceded it in arrival order, and splits it
performs only re-route items of that same owner (owner regions are
disjoint, so other owners' routing is unaffected).

Exactness: the fit predicate works entirely on the integer side.
Per-owner deposits are summed exactly in int64 (``_exact_bincount``
splits each weight into 32-bit halves so every float64 partial sum that
``np.bincount`` computes internally stays below 2**53), totals are
compared against ``math.floor`` of the float threshold — for integral
``x``, ``x <= t`` iff ``x <= floor(t)`` — and the merge-trigger cut
compares int64 running totals against ``math.ceil`` of the trigger, so
no float64 rounding ever enters a routing decision, including counters
past 2**53 (RAP-LINT019/020 gate regressions here). The scalar cascade
converts every counter it reads to a Python int before comparing
against float thresholds, preserving CPython's exact int-float
comparison. Totals beyond int64 are out of the kernel's domain: a
counter store past 2**63-1 raises (``ValueError`` from the memoryview
store on the scalar paths, ``OverflowError`` from the array store on
the vectorized scatter) instead of wrapping (the object backend's
Python ints keep going; the paper's ``n`` sits far below either
bound).

Construct through ``RapTree.from_config(RapConfig(backend="columnar"))``
— importing this module's internals elsewhere is flagged by RAP-LINT012.
"""

from __future__ import annotations

import math
import os
import threading
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .config import MergeScheduler, RapConfig, split_crossing_point
from .node import RapNode, partition_range
from .stats import TreeStats

_NO_SLOT = -1
_INITIAL_CAPACITY = 64
# Vectorized window sizing: grows while rounds come back nearly
# holdout-free, shrinks while the holdout fraction is high (cold-start
# split storms), bounding the threshold staleness a long window causes.
_WINDOW_MIN = 512
_WINDOW_START = 1024
_WINDOW_MAX = 16384
# Below this many remaining items the fixed numpy overhead of a round
# (array conversion, argsort, mask passes) costs more than finishing
# the tail through the scalar kernel, which runs ~1us per item.
_MIN_VECTOR_TAIL = 384

# int64 split point for _exact_bincount: weights are divided at 32 bits
# so each half's float64 bincount sum stays exact (see the docstring).
_LOW32 = (1 << 32) - 1
_INT64_MAX = 2**63 - 1
# float64(2**63), exact: thresholds at or above it exceed every int64
# counter, so the integer-side comparison clamps to _INT64_MAX there.
_TWO_POW_63 = 9223372036854775808.0


def _exact_bincount(
    owners: np.ndarray, weights: np.ndarray, minlength: int
) -> np.ndarray:
    """Exact int64 per-owner sums of non-negative int64 ``weights``.

    ``np.bincount(..., weights=...)`` always accumulates in float64,
    which rounds individual deposits above 2**53. Splitting each weight
    into 32-bit halves keeps every float64 partial sum exact — with
    fewer than 2**21 contributions per owner each half sums to below
    2**21 * 2**32 = 2**53 (an ingest window holds at most ``_WINDOW_MAX``
    = 2**14 items) — and the recombined int64 total is exact for any
    sum that fits int64. Where the accumulation is an indexed add of
    existing int64 values rather than a ``weights=`` sum (the merge
    pass), ``np.add.at`` is exact and cheaper — this helper is for the
    bincount-shaped reductions only.
    """
    low = np.bincount(owners, weights=weights & _LOW32, minlength=minlength)
    high = np.bincount(owners, weights=weights >> 32, minlength=minlength)
    return low.astype(np.int64) + (high.astype(np.int64) << 32)


#: Per-slot columns, grown together (see _grow). ``_free_slots`` rides
#: along at the same capacity: every slot can be on the stack at most
#: once, so pushes can never overflow it.
_ARRAY_COLUMNS: Tuple[str, ...] = (
    "_counts",
    "_los",
    "_his",
    "_parents",
    "_first_child",
    "_next_sibling",
    "_n_children",
    "_depth",
    "_is_item",
    "_dirty",
    "_cached_weight",
    "_cached_min",
    "_live",
)


class ColumnarRapTree:
    """Array-backed RAP profile, observably equivalent to ``RapTree``.

    Implements the :class:`repro.core.backend.TreeBackend` protocol.
    ``root``/``nodes()``/``leaves()`` materialize a read-only
    :class:`~repro.core.node.RapNode` view of the columns (cached per
    mutation generation) so serialization, auditing and folds treat both
    backends identically. Mutating the view does not affect the tree.
    """

    #: dtype of every slot column plus the free stack, in
    #: ``_ARRAY_COLUMNS + ("_free_slots",)`` order. The shared-memory
    #: arena (:mod:`repro.runtime.shm`) sizes its segments from this
    #: table, and :meth:`attach_columns` validates against it.
    COLUMN_DTYPES: Dict[str, np.dtype] = {
        "_counts": np.dtype(np.int64),
        "_los": np.dtype(np.uint64),
        "_his": np.dtype(np.uint64),
        "_parents": np.dtype(np.int32),
        "_first_child": np.dtype(np.int32),
        "_next_sibling": np.dtype(np.int32),
        "_n_children": np.dtype(np.int32),
        "_depth": np.dtype(np.int32),
        "_is_item": np.dtype(np.bool_),
        "_dirty": np.dtype(np.bool_),
        "_cached_weight": np.dtype(np.int64),
        "_cached_min": np.dtype(np.int64),
        "_live": np.dtype(np.bool_),
        "_free_slots": np.dtype(np.int32),
    }

    def __init__(
        self,
        config: RapConfig,
        *,
        allocator: Optional[
            Callable[[str, np.dtype, int], np.ndarray]
        ] = None,
    ) -> None:
        self._config = config
        # Optional column allocator hook: ``allocator(name, dtype,
        # capacity)`` returns a zero-filled 1-D array of exactly
        # ``capacity`` elements. The process-executor runtime passes the
        # shared-memory arena's allocator so every column (and every
        # ``_grow`` remap) lands in a SharedMemory block the parent can
        # attach; ``None`` keeps plain heap-backed numpy arrays.
        self._allocator = allocator
        capacity = _INITIAL_CAPACITY
        self._capacity = capacity
        for name in _ARRAY_COLUMNS + ("_free_slots",):
            setattr(
                self,
                name,
                self._new_column(name, self.COLUMN_DTYPES[name], capacity),
            )
        self._free_top = 0
        self._size = 0
        # Allocation-default pre-fill: fresh (never-allocated) slots
        # already hold the state _alloc would write — leaf chain head,
        # dirty, live — and freed slots are restored to it in bulk when
        # the merge pass recycles them, so the allocation hot path only
        # stores the per-node fields (bounds, depth, item flag). The
        # live pre-fill is safe: every _live read is masked to the
        # allocated prefix ``[:size]``.
        self._first_child.fill(_NO_SLOT)
        self._dirty.fill(True)
        self._live.fill(True)
        self._rebind_views()
        root = self._alloc(0, config.range_max - 1, 0)
        assert root == 0, "root must occupy slot 0"
        # _alloc leaves parent/sibling pointers to _set_children; the
        # root is never anyone's child, so pin its pointers here once.
        self._parents[0] = _NO_SLOT
        self._next_sibling[0] = _NO_SLOT
        self._root_hi = config.range_max - 1
        self._node_count = 1
        self._events = 0
        self._scheduler = MergeScheduler(
            initial_interval=config.merge_initial_interval,
            growth=config.merge_growth,
        )
        self._stats = TreeStats(sample_every=config.timeline_sample_every)
        self._eps_over_height = config.epsilon / config.max_height
        self._min_threshold = config.min_split_threshold
        self._audit_every = config.audit_every
        self._next_audit = config.audit_every
        self._generation = 0
        self._confined_ident: Optional[Tuple[int, int]] = None
        # Finger cache for scalar descents (same role as RapTree's
        # ``_cached_node``); reset to the root after merges recycle slots.
        self._cached_slot = 0
        # Cover index: one segment, the whole universe, owned by the root.
        self._cov_starts = np.zeros(1, dtype=np.uint64)
        self._cov_owner = np.zeros(1, dtype=np.int64)
        # Queued split splices, folded in batch by the next _sync_cover.
        self._cov_pending: List[Tuple[int, List[int]]] = []
        # Materialized RapNode view, cached per mutation generation.
        self._view_root: Optional[RapNode] = None
        self._view_generation = -1
        # Bulk-ingest mode flag, persistent across _ingest calls: a
        # cold tree starts in a holdout storm (every deposit crosses
        # the still-tiny thresholds), and chunked feeders like
        # add_stream re-enter _ingest mid-storm. Purely a routing
        # heuristic — both modes are the exact scalar semantics.
        # ``_calm`` counts consecutive low-fallback scalar windows; the
        # storm only ends after two, so one quiet window between split
        # bursts (common in chunked counted feeds) does not buy a
        # wasted convert-and-vectorize round trip.
        self._storm = True
        self._calm = 0

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------

    def _new_column(
        self, name: str, dtype: np.dtype, capacity: int
    ) -> np.ndarray:
        """Allocate one zero-filled column through the allocator hook."""
        if self._allocator is not None:
            return self._allocator(name, dtype, capacity)
        return np.zeros(capacity, dtype=dtype)

    def _rebind_views(self) -> None:
        """Rebind the zero-copy scalar read views over the columns.

        ``memoryview`` indexing returns plain Python ints/bools straight
        off the numpy buffers (no array-scalar boxing), which makes the
        scalar cascade's per-element reads ~3x cheaper while keeping a
        single copy of every column — the views alias the same memory,
        so every vectorized write is visible through them immediately.
        Scalar *writes* go through the views too (~1.5-2x cheaper than
        a numpy scalar store), counters included: an int64 counter
        store that overflows raises ``ValueError`` from the memoryview
        (numpy's array store would raise ``OverflowError``) — either
        way a loud failure, never a silent wrap; the module docstring
        pins the exception types. Must be called whenever a column
        array object is replaced (``_grow``/``clone``).
        """
        self._v_counts = memoryview(self._counts)
        self._v_los = memoryview(self._los)
        self._v_his = memoryview(self._his)
        self._v_parents = memoryview(self._parents)
        self._v_first_child = memoryview(self._first_child)
        self._v_next_sibling = memoryview(self._next_sibling)
        self._v_n_children = memoryview(self._n_children)
        self._v_depth = memoryview(self._depth)
        self._v_is_item = memoryview(self._is_item)
        self._v_dirty = memoryview(self._dirty)
        self._v_live = memoryview(self._live)
        self._v_free_slots = memoryview(self._free_slots)

    def _alloc(self, lo: int, hi: int, depth: int) -> int:
        """Pop a slot off the free stack (or extend) and initialize it.

        Recycled slots had their counter and item flag reset when the
        merge pass freed them, so a zero counter is an invariant of
        every non-live slot (estimate/total_weight sum the raw column).
        This path stores only the per-node fields (bounds, depth, item
        flag). Everything else already holds the allocation default:
        parent and sibling pointers are immediately overwritten by the
        caller's chain build (the root's are set once in ``__init__``),
        a dirty slot's cached weight/min are never read before the next
        merge pass rewrites them wholesale, and the leaf/dirty/live
        state is pre-filled for fresh slots and bulk-restored when the
        merge pass frees a batch (only ``live`` needs a store on the
        recycle branch — frees are what cleared it).
        """
        if self._free_top:
            self._free_top -= 1
            slot = self._v_free_slots[self._free_top]
            self._v_live[slot] = True
        else:
            slot = self._size
            if slot == self._capacity:
                self._grow()
            self._size += 1
        self._v_los[slot] = lo
        self._v_his[slot] = hi
        self._v_depth[slot] = depth
        if lo == hi:
            self._v_is_item[slot] = True
        return slot

    def _grow(self) -> None:
        capacity = max(_INITIAL_CAPACITY, 2 * self._capacity)
        old_capacity = self._capacity
        for name in _ARRAY_COLUMNS + ("_free_slots",):
            old = getattr(self, name)
            # Under the allocator hook this is the shared-memory "grow
            # by remap": a fresh (larger) segment per column, the live
            # prefix copied over, the old segment retired by the arena.
            grown = self._new_column(name, old.dtype, capacity)
            grown[: old.size] = old
            setattr(self, name, grown)
        # Restore the allocation-default pre-fill on the fresh tail
        # (see __init__) so _alloc can keep skipping those stores.
        self._first_child[old_capacity:] = _NO_SLOT
        self._dirty[old_capacity:] = True
        self._live[old_capacity:] = True
        self._capacity = capacity
        self._rebind_views()

    def _children_slots(self, slot: int) -> List[int]:
        """Direct children of ``slot`` in ``lo`` order."""
        out: List[int] = []
        child = self._v_first_child[slot]
        next_sibling = self._v_next_sibling
        while child != _NO_SLOT:
            out.append(child)
            child = next_sibling[child]
        return out

    def _set_children(self, slot: int, kids: List[int]) -> None:
        """Rebuild the sibling chain of ``slot`` from a sorted slot list."""
        self._v_n_children[slot] = len(kids)
        self._v_first_child[slot] = kids[0] if kids else _NO_SLOT
        parents = self._v_parents
        next_sibling = self._v_next_sibling
        last = len(kids) - 1
        for index, kid in enumerate(kids):
            parents[kid] = slot
            next_sibling[kid] = kids[index + 1] if index < last else _NO_SLOT

    def _mark_dirty(self, slot: int) -> None:
        """Mark ``slot`` and its clean ancestors dirty (early-exit walk)."""
        vdirty = self._v_dirty
        vparents = self._v_parents
        while slot != _NO_SLOT and not vdirty[slot]:
            vdirty[slot] = True
            slot = vparents[slot]

    def _mark_dirty_many(self, touched: np.ndarray) -> None:
        """Vectorized dirty propagation for a batch of deposited slots.

        Level-by-level frontier walk: same final dirty set as calling
        :meth:`_mark_dirty` per slot (a slot already dirty stops the
        climb; ancestors of newly dirtied slots continue it).
        """
        dirty = self._dirty
        parents = self._parents
        current = touched[~dirty[touched]]
        while current.size:
            dirty[current] = True
            up = parents[current]
            up = up[up != _NO_SLOT]
            if not up.size:
                return
            up = np.unique(up)
            current = up[~dirty[up]]

    # ------------------------------------------------------------------
    # Scalar descent (finger search over the sibling chains)
    # ------------------------------------------------------------------

    def _deepest_slot(self, value: int) -> int:
        """Slot of the deepest node covering ``value``.

        Finger search, exactly like ``RapTree._locate``: walk up from
        the cached slot until the value is covered, then descend the
        sorted sibling chains. Consecutive events land near each other
        (loops, hot ranges), so the walk is usually O(1). All reads go
        through the memoryview accessors (plain Python ints out).
        """
        los = self._v_los
        his = self._v_his
        no_slot = _NO_SLOT
        slot = self._cached_slot
        if value < los[slot] or value > his[slot]:
            parents = self._v_parents
            slot = parents[slot]
            while slot != no_slot and (
                value < los[slot] or value > his[slot]
            ):
                slot = parents[slot]
            if slot == no_slot:
                slot = 0
        first_child = self._v_first_child
        next_sibling = self._v_next_sibling
        while True:
            child = first_child[slot]
            while child != no_slot and value > his[child]:
                child = next_sibling[child]
            if child == no_slot or los[child] > value:
                self._cached_slot = slot
                return slot
            slot = child

    # ------------------------------------------------------------------
    # Cover index (incremental in both directions)
    # ------------------------------------------------------------------

    def _rebuild_cover(self) -> None:
        """Recompute the full cover index from the sibling chains.

        The incremental splices (split inserts in ``_sync_cover``, the
        merge remap in ``_merge_frontier``) keep the live index equal to
        this recursive emission; ``check_invariants`` asserts exactly
        that, so this survives as the oracle, not a maintenance path.
        """
        starts: List[int] = []
        owners: List[int] = []
        # Plain-list mirrors of the columns: one C-speed conversion each,
        # then the per-node walk runs on native ints instead of paying a
        # numpy scalar extraction per field per node. The walk itself is
        # the recursive emission unrolled onto an explicit stack of
        # (slot, resume position, next child) frames, so arbitrarily deep
        # trees cannot hit the interpreter recursion limit either.
        los = self._los.tolist()
        his = self._his.tolist()
        first_child = self._first_child.tolist()
        next_sibling = self._next_sibling.tolist()
        stack = [(0, los[0], first_child[0])]
        while stack:
            slot, position, child = stack.pop()
            while child != _NO_SLOT:
                if los[child] > position:
                    starts.append(position)
                    owners.append(slot)
                stack.append((slot, his[child] + 1, next_sibling[child]))
                slot = child
                position = los[slot]
                child = first_child[slot]
            if position <= his[slot]:
                starts.append(position)
                owners.append(slot)
        self._cov_starts = np.array(starts, dtype=np.uint64)
        self._cov_owner = np.array(owners, dtype=np.int64)

    def _sync_cover(self) -> None:
        """Fold queued split splices into the cover index.

        After a split every missing partition cell gained a child, so the
        split node owns nothing: its segments are exactly the union of
        the new children's ranges. Batching the queued splits means one
        positioned insert per vectorized round instead of one per split;
        a fresh child that itself split later in the same batch
        contributes no segment (its own children do).
        """
        pending = self._cov_pending
        if not pending:
            return
        self._cov_pending = []
        split_slots = {slot for slot, _ in pending}
        new_owners = [
            kid
            for _, created in pending
            for kid in created
            if kid not in split_slots
        ]
        # Membership via a boolean table over slots: owners are slot ids
        # (< size), so this is O(segments) with no sorting — much cheaper
        # than np.isin for the handful of splits pending between rounds.
        split_table = np.zeros(self._size, dtype=np.bool_)
        split_table[list(split_slots)] = True
        keep = ~split_table[self._cov_owner]
        kept_starts = self._cov_starts[keep]
        kept_owner = self._cov_owner[keep]
        owner_arr = np.asarray(new_owners, dtype=np.int64)
        new_starts = self._los[owner_arr]
        order = np.argsort(new_starts, kind="stable")
        new_starts = new_starts[order]
        owner_arr = owner_arr[order]
        # Both sides are sorted, so a positioned insert replaces the
        # concatenate-and-argsort: O(segments) copy, no sort. Done by
        # hand (shared scatter mask) — np.insert's argument handling
        # costs more than the copy itself at this size.
        positions = np.searchsorted(kept_starts, new_starts)
        grown = kept_starts.size + new_starts.size
        at = positions + np.arange(new_starts.size)
        starts_out = np.empty(grown, dtype=np.uint64)
        owner_out = np.empty(grown, dtype=np.int64)
        old_at = np.ones(grown, dtype=np.bool_)
        old_at[at] = False
        starts_out[at] = new_starts
        owner_out[at] = owner_arr
        starts_out[old_at] = kept_starts
        owner_out[old_at] = kept_owner
        self._cov_starts = starts_out
        self._cov_owner = owner_out

    # ------------------------------------------------------------------
    # Basic properties (mirrors RapTree)
    # ------------------------------------------------------------------

    @property
    def config(self) -> RapConfig:
        return self._config

    @property
    def root(self) -> RapNode:
        """Materialized read-only view of the tree (see class docstring)."""
        return self._materialize()

    @property
    def events(self) -> int:
        """Total event weight processed so far (the paper's ``n``)."""
        return self._events

    @property
    def node_count(self) -> int:
        """Current number of counters (nodes) in the tree."""
        return self._node_count

    @property
    def stats(self) -> TreeStats:
        return self._stats

    @property
    def mutation_generation(self) -> int:
        """Epoch counter bumped on every mutation of the profile."""
        return self._generation

    @property
    def merge_scheduler(self) -> MergeScheduler:
        return self._scheduler

    @property
    def split_threshold(self) -> float:
        """Current value of ``epsilon * n / log_b(R)`` (with floor)."""
        raw = self._eps_over_height * self._events
        return raw if raw > self._min_threshold else self._min_threshold

    def error_bound(self) -> float:
        """Worst-case undercount of any range estimate: ``epsilon * n``."""
        return self._config.epsilon * self._events

    def memory_bytes(self, bits_per_node: int = 128) -> int:
        """Actual bytes held by the column arrays.

        Counts every allocated slot — free-list slack and the unused
        capacity tail included — plus the cover index and the free
        stack: what the process really pays for this profile, not the
        paper's per-node model. ``bits_per_node`` is accepted for
        signature compatibility across backends but only the model
        (:meth:`modeled_memory_bytes`) uses it.
        """
        total = (
            self._free_slots.nbytes
            + self._cov_starts.nbytes
            + self._cov_owner.nbytes
        )
        for name in _ARRAY_COLUMNS:
            total += getattr(self, name).nbytes
        return total

    def modeled_memory_bytes(self, bits_per_node: int = 128) -> int:
        """The paper's memory model: ``node_count`` at 128 bits/node
        (§4.2). This is what figure 7 and the accuracy/memory analyses
        plot — hardware cost, not host-process allocation."""
        return (self._node_count * bits_per_node + 7) // 8

    # ------------------------------------------------------------------
    # Thread confinement and cloning (runtime hooks)
    # ------------------------------------------------------------------

    def confine_to_current_thread(self) -> None:
        """Restrict mutations to the calling thread *and process*.

        The owner key is ``(pid, thread ident)``: a shard tree confined
        inside a worker process rejects mutation from any other process
        too (thread idents alone can collide across processes, and a
        fork inherits the parent's confinement marker verbatim).
        """
        self._confined_ident = (os.getpid(), threading.get_ident())

    def unconfine(self) -> None:
        """Lift confinement (any thread in any process may mutate)."""
        self._confined_ident = None

    def _assert_owner(self) -> None:
        owner = self._confined_ident
        if owner is None:
            return
        here = (os.getpid(), threading.get_ident())
        if owner != here:
            kind = "process" if owner[0] != here[0] else "thread"
            raise RuntimeError(
                "ColumnarRapTree is confined to (pid, thread) "
                f"{owner}; mutation attempted from the wrong {kind} "
                f"{here}. Shard trees are single-writer — route events "
                "through the owning worker's queue (see repro.runtime)."
            )

    def clone(self) -> "ColumnarRapTree":
        """Deep, independent copy of this profile (still columnar).

        Column copies are cheaper than the object backend's serializer
        round-trip and preserve exactly the same state: structure,
        counters, merge-schedule position and the mutation generation.
        Statistics timelines are not carried over (same contract as
        ``RapTree.clone``). Reading is allowed from any thread, so a
        confined shard tree can be cloned by the fold coordinator while
        the owning worker is quiesced.
        """
        self._sync_cover()
        other = ColumnarRapTree(self._config)
        for name in _ARRAY_COLUMNS + ("_free_slots",):
            setattr(other, name, getattr(self, name).copy())
        other._rebind_views()
        other._capacity = self._capacity
        other._free_top = self._free_top
        other._size = self._size
        other._node_count = self._node_count
        other._events = self._events
        other._scheduler.next_at = self._scheduler.next_at
        other._scheduler.batches_fired = self._scheduler.batches_fired
        other._generation = self._generation
        other._cov_starts = self._cov_starts.copy()
        other._cov_owner = self._cov_owner.copy()
        other._storm = self._storm
        other._calm = self._calm
        return other

    def column_state(self) -> Dict[str, object]:
        """Scalar state that travels with the columns across processes.

        Everything :meth:`attach_columns` needs beyond the column
        arrays themselves: slot accounting, event totals and the
        merge-schedule position. A shard worker sends this dict (plain
        ints/floats/bools — trivially picklable) alongside its
        shared-memory segment table; the parent reconstructs an
        equivalent tree without copying a single column.
        """
        return {
            "capacity": self._capacity,
            "size": self._size,
            "free_top": self._free_top,
            "node_count": self._node_count,
            "events": self._events,
            "next_at": self._scheduler.next_at,
            "batches_fired": self._scheduler.batches_fired,
            "generation": self._generation,
            "storm": self._storm,
            "calm": self._calm,
        }

    @classmethod
    def attach_columns(
        cls,
        config: RapConfig,
        columns: Mapping[str, np.ndarray],
        state: Mapping[str, object],
    ) -> "ColumnarRapTree":
        """Wrap already-populated column arrays as a read-only tree.

        The process executor's zero-copy fold path: the parent maps a
        quiesced worker's shared-memory segments as numpy arrays and
        wraps them here without copying. ``columns`` maps every name in
        ``_ARRAY_COLUMNS + ("_free_slots",)`` to an array of the
        :attr:`COLUMN_DTYPES` dtype; ``state`` is the owning tree's
        :meth:`column_state`. All reads work as usual — estimates,
        ``nodes()`` views, serialization, ``combine_many`` folds, and
        :meth:`clone` (which copies the columns into a writable
        heap-backed tree). The attached arrays are marked read-only so
        an accidental mutation of live worker state raises immediately
        instead of corrupting the shard.
        """
        tree = cls(config)
        capacity = int(state["capacity"])
        for name in _ARRAY_COLUMNS + ("_free_slots",):
            arr = np.asarray(columns[name])
            expected = cls.COLUMN_DTYPES[name]
            if arr.dtype != expected or arr.shape != (capacity,):
                raise ValueError(
                    f"column {name!r} must be a 1-D {expected} array of "
                    f"{capacity} slots, got {arr.dtype} {arr.shape}"
                )
            view = arr.view()
            view.flags.writeable = False
            setattr(tree, name, view)
        tree._capacity = capacity
        tree._free_top = int(state["free_top"])
        tree._size = int(state["size"])
        tree._node_count = int(state["node_count"])
        tree._events = int(state["events"])
        tree._scheduler.next_at = float(state["next_at"])
        tree._scheduler.batches_fired = int(state["batches_fired"])
        tree._generation = int(state["generation"])
        tree._storm = bool(state["storm"])
        tree._calm = int(state["calm"])
        tree._cached_slot = 0
        tree._view_root = None
        tree._view_generation = -1
        tree._rebind_views()
        tree._rebuild_cover()
        return tree

    # ------------------------------------------------------------------
    # Updates — scalar path (exact port of RapTree.add/_absorb)
    # ------------------------------------------------------------------

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``.

        Arithmetic-identical to :meth:`repro.core.tree.RapTree.add`:
        same closed-form split crossing points, same mid-count merge
        triggers, same descent semantics.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if value < 0 or value > self._root_hi:
            raise ValueError(
                f"value {value} outside universe [0, {self._root_hi}]"
            )
        self._absorb_slot(self._deepest_slot(value), value, count)
        self._generation += 1
        self._stats.observe_update()

        if self._scheduler.due(self._events):
            self.merge_now()

        if self._audit_every and self._events >= self._next_audit:
            while self._next_audit <= self._events:
                self._next_audit += self._audit_every
            self.audit()

    def _absorb_slot(self, slot: int, value: int, count: int) -> None:
        """Deposit ``count`` units of ``value`` starting at ``slot``.

        Line-for-line port of ``RapTree._absorb`` onto slots. Every
        counter read is converted to a Python int before the float
        threshold comparison (CPython compares int vs float exactly at
        any magnitude; numpy would round the int64 side past 2**53), so
        the cascade arithmetic matches the object backend bit for bit.
        """
        remaining = count
        events = self._events
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        scheduler = self._scheduler
        stats = self._stats
        vcounts = self._v_counts
        vitem = self._v_is_item
        vdirty = self._v_dirty
        vparents = self._v_parents
        no_slot = _NO_SLOT
        cap = self._capacity
        while True:
            next_at = scheduler.next_at
            m_merge = int(next_at - events)
            if events + m_merge < next_at:
                m_merge += 1
            if m_merge < 1:
                m_merge = 1
            m = remaining if remaining < m_merge else m_merge

            m_split = 0
            c0 = vcounts[slot]
            if not vitem[slot]:
                cap_th = eps_h * (events + m)
                if cap_th < min_th:
                    cap_th = min_th
                if c0 + m > cap_th:
                    th1 = eps_h * (events + 1)
                    if th1 < min_th:
                        th1 = min_th
                    if c0 > int(th1):
                        # Already over threshold before absorbing (merge
                        # churn re-deposited weight): split dry and push
                        # the whole run down to the covering child. The
                        # split may grow (reallocate) the columns and
                        # rebind the views — re-hoist before the scan.
                        self._split_slot(slot)
                        if cap != self._capacity:
                            cap = self._capacity
                            vcounts = self._v_counts
                            vitem = self._v_is_item
                            vdirty = self._v_dirty
                            vparents = self._v_parents
                        vlos = self._v_los
                        vhis = self._v_his
                        vnext = self._v_next_sibling
                        child = self._v_first_child[slot]
                        while child != no_slot and not (
                            vlos[child] <= value <= vhis[child]
                        ):
                            child = vnext[child]
                        assert child != no_slot, (
                            "split left the value uncovered"
                        )
                        slot = child
                        continue
                    m_split = split_crossing_point(c0, events, eps_h, min_th)
                    if 0 < m_split < m:
                        m = m_split

            vcounts[slot] = c0 + m
            events += m
            remaining -= m
            self._events = events
            walk = slot
            while walk != no_slot and not vdirty[walk]:
                vdirty[walk] = True
                walk = vparents[walk]
            split_now = m_split != 0 and m == m_split
            if split_now:
                self._split_slot(slot)
                if cap != self._capacity:
                    cap = self._capacity
                    vcounts = self._v_counts
                    vitem = self._v_is_item
                    vdirty = self._v_dirty
                    vparents = self._v_parents
            stats.observe_weight(m, self._node_count)

            if events >= next_at:
                self.merge_now()
                if not remaining:
                    return
                # The merge may have recycled our slot; re-descend from
                # the root-side finger. (Merges never reallocate the
                # columns, so the hoisted views stay valid.)
                slot = self._deepest_slot(value)
            elif not remaining:
                self._cached_slot = slot
                return
            else:
                # A split boundary was hit with units left: descend one
                # level into the covering child of the just-split slot
                # (a sibling-chain scan — no full finger search needed).
                vlos = self._v_los
                vhis = self._v_his
                vnext = self._v_next_sibling
                child = self._v_first_child[slot]
                while child != no_slot and not (
                    vlos[child] <= value <= vhis[child]
                ):
                    child = vnext[child]
                assert child != no_slot, "split left the value uncovered"
                slot = child

    # ------------------------------------------------------------------
    # Updates — vectorized batch ingest
    # ------------------------------------------------------------------

    def extend(self, values: Iterable[int]) -> None:
        """Feed a stream of single events (vectorized rounds).

        Observably identical to calling :meth:`add` per value; with
        timeline sampling or self-audits enabled the per-event path is
        used outright so those hooks see every event.
        """
        items = values if isinstance(values, list) else list(values)
        self._ingest(items, True)

    def add_counted(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed pre-combined ``(value, count)`` pairs in arrival order."""
        items = pairs if isinstance(pairs, list) else list(pairs)
        self._ingest(items, False)

    def add_batch(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed ``(value, count)`` pairs, sorted once and routed in bulk.

        Observably identical to ``add_counted(sorted(pairs))`` — the
        same contract as the object backend's batch kernel.
        """
        self._ingest(sorted(pairs), False)

    def add_counted_arrays(
        self, values: np.ndarray, counts: np.ndarray
    ) -> None:
        """Feed pre-combined ``(value, count)`` columns, array-native.

        Observably identical to
        ``add_counted(list(zip(values.tolist(), counts.tolist())))``,
        but the pair list is never built unless a scalar window needs
        it: the vectorized rounds consume the arrays directly. This is
        the process executor's frame path — shard workers receive
        ``(values, counts)`` ndarray frames off the pipe and ingest
        them without a tuple transpose on either side. Inputs the
        column dtypes cannot represent faithfully (negative or
        non-integer values, counts past int64) take the exact per-item
        path instead, which raises the object backend's errors at the
        same item.
        """
        values = np.asarray(values)
        counts = np.asarray(counts)
        if values.shape != counts.shape or values.ndim != 1:
            raise ValueError(
                "values and counts must be matching 1-D arrays, got "
                f"shapes {values.shape} and {counts.shape}"
            )
        if (
            values.dtype.kind not in "iu"
            or counts.dtype.kind not in "iu"
            or (
                values.dtype.kind == "i"
                and values.size
                and int(values.min()) < 0
            )
            or (
                counts.dtype.kind == "u"
                and counts.size
                and int(counts.max()) > _INT64_MAX
            )
        ):
            # astype would wrap these silently (ndarray casts do not
            # range-check like Python ints); the list path validates
            # per item and raises exactly like the object backend.
            self._ingest(list(zip(values.tolist(), counts.tolist())), False)
            return
        self._ingest(
            None,
            False,
            columns=(
                values.astype(np.uint64, copy=False),
                counts.astype(np.int64, copy=False),
            ),
        )

    def bootstrap_counted_arrays(
        self, values: np.ndarray, counts: np.ndarray
    ) -> bool:
        """Cold-start bulk build from one sorted counted frame.

        Top-down offline construction of the adaptive partition for a
        *fresh* tree: recursively burst every range whose frame mass
        exceeds the split threshold at the final event count, working
        level by level with array kernels (one ``searchsorted`` over
        the frame per level) instead of replaying the per-event
        cascade. The result is not the same shape the online kernel
        would build — it is a *different reachable* RAP state with the
        same contracts, because both guarantees are structural, not
        historical: every counter is real mass from inside its range
        (estimates stay exact lower bounds), and every non-item node
        holds at most ``split_threshold(n)``, so a query's undercount —
        mass on nodes straddling its boundary, at most one per level
        per side — stays within ``epsilon * n`` exactly as Section 3.2
        argues for the online tree. The build ends with the standard
        catch-up merge, leaving the merge schedule where any online
        ingest of ``n`` events would have left it.

        This is the process executor's first-flush path: a shard
        worker's combining buffer hands the whole opening window to the
        empty shard tree in one frame, and building that tree directly
        is several times cheaper than cascading 30k+ deposits through
        a cold tree that splits under nearly every one. Callers that
        need the online shape (``add_counted_arrays`` is documented
        observably identical to ``add_counted``) must not use this.

        Returns ``True`` when the bulk build ran. Returns ``False`` —
        tree untouched — when a precondition fails: the tree is not
        fresh, per-event hooks (timeline sampling, auditing) must see
        every event, or the frame is not strictly-increasing in-range
        values with positive int64 counts. Fall back to
        :meth:`add_counted_arrays` in that case.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        if (
            self._events != 0
            or self._node_count != 1
            or self._size != 1
            or self._free_top != 0
            or self._stats.sample_every > 0
            or self._audit_every
        ):
            return False
        values = np.asarray(values)
        counts = np.asarray(counts)
        if (
            values.ndim != 1
            or values.shape != counts.shape
            or values.size == 0
            or values.dtype.kind not in "iu"
            or counts.dtype.kind not in "iu"
        ):
            return False
        if values.dtype.kind == "i" and int(values.min()) < 0:
            return False
        if counts.dtype.kind == "u" and int(counts.max()) > _INT64_MAX:
            return False
        varr = values.astype(np.uint64, copy=False)
        carr = counts.astype(np.int64, copy=False)
        if (
            int(carr.min()) <= 0
            or int(varr[-1]) > self._root_hi
            or not bool(np.all(varr[:-1] < varr[1:]))
            # Rules out int64 overflow in the exact sum below.
            or float(carr.sum(dtype=np.float64)) >= float(_INT64_MAX)
        ):
            return False
        total = int(carr.sum())
        floor_t = min(
            math.floor(self._config.split_threshold(total)), _INT64_MAX
        )
        branching = self._config.branching
        # Prefix masses: frame slice [i, j) weighs cum[j] - cum[i].
        cum = np.zeros(varr.size + 1, dtype=np.int64)
        np.cumsum(carr, out=cum[1:])

        created = 0
        bursts = 0
        # Cover segments, collected level by level as the build walks
        # down: a leaf's whole range, and each burst parent's runs of
        # empty cells (cell-aligned by construction). One argsort at
        # the end replaces the per-node recursive emission of
        # ``_rebuild_cover`` — which stays the oracle this collection
        # is checked against (``check_invariants``).
        cover_start_parts: List[np.ndarray] = []
        cover_owner_parts: List[np.ndarray] = []
        if total <= floor_t or self._root_hi == 0:
            self._v_counts[0] = total
            cover_start_parts.append(self._los[:1].astype(np.uint64))
            cover_owner_parts.append(np.zeros(1, dtype=np.int64))
        else:
            # Root level in exact Python ints — the root's width (the
            # whole universe) can overflow the uint64 cell arithmetic
            # the deeper levels use; its cells never can.
            bursts += 1
            cells = partition_range(0, self._root_hi, branching)
            cell_lo = np.array([lo for lo, _ in cells], dtype=np.uint64)
            cell_hi = np.array([hi for _, hi in cells], dtype=np.uint64)
            bounds = np.empty(len(cells) + 1, dtype=np.int64)
            bounds[0] = 0
            bounds[-1] = varr.size
            bounds[1:-1] = np.searchsorted(varr, cell_lo[1:])
            mass = cum[bounds[1:]] - cum[bounds[:-1]]
            # Root-owned segments: each maximal run of empty cells is
            # one gap (emit() merges consecutive empty cells too).
            root_gap = mass == 0
            root_run = root_gap.copy()
            root_run[1:] &= ~root_gap[:-1]
            if root_run.any():
                cover_start_parts.append(cell_lo[root_run])
                cover_owner_parts.append(
                    np.zeros(int(root_run.sum()), dtype=np.int64)
                )
            keep = np.flatnonzero(mass)
            sel_lo = cell_lo[keep]
            sel_hi = cell_hi[keep]
            sel_mass = mass[keep]
            sel_plo = bounds[:-1][keep]
            sel_phi = bounds[1:][keep]
            parent_rows = np.zeros(keep.size, dtype=np.int64)
            parent_slots = np.zeros(1, dtype=np.int64)
            group_sizes = np.array([keep.size], dtype=np.int64)
            depth = 1
            while True:
                spawned = int(sel_lo.size)
                while self._size + spawned > self._capacity:
                    self._grow()
                base_slot = self._size
                slots = base_slot + np.arange(spawned, dtype=np.int64)
                self._los[slots] = sel_lo
                self._his[slots] = sel_hi
                self._depth[slots] = depth
                self._parents[slots] = parent_slots[parent_rows]
                item = sel_lo == sel_hi
                self._is_item[slots] = item
                # Sibling chains: slots are handed out in row-major
                # (parent, ascending-lo) order, so each parent's group
                # is a contiguous ascending run — link the whole level
                # with one shifted store, then cut at group ends.
                group_ends = base_slot + np.cumsum(group_sizes) - 1
                self._next_sibling[slots[:-1]] = slots[1:]
                self._next_sibling[group_ends] = _NO_SLOT
                self._first_child[parent_slots] = np.concatenate(
                    (slots[:1], group_ends[:-1] + 1)
                )
                self._n_children[parent_slots] = group_sizes
                self._size += spawned
                created += spawned
                leaf = item | (sel_mass <= floor_t)
                leaf_slots = slots[leaf]
                self._counts[leaf_slots] = sel_mass[leaf]
                if leaf_slots.size:
                    cover_start_parts.append(
                        sel_lo[leaf].astype(np.uint64, copy=False)
                    )
                    cover_owner_parts.append(leaf_slots)
                recurse = np.flatnonzero(~leaf)
                if recurse.size == 0:
                    break
                bursts += int(recurse.size)
                parent_slots = slots[recurse]
                p_lo = sel_lo[recurse]
                p_hi = sel_hi[recurse]
                p_plo = sel_plo[recurse]
                p_phi = sel_phi[recurse]
                # One vectorized burst per surviving parent: the exact
                # partition_range geometry, computed for all parents at
                # once (cells = min(b, width), base + spread remainder).
                width = p_hi - p_lo + np.uint64(1)
                cells_n = np.minimum(
                    width, np.uint64(branching)
                ).astype(np.int64)
                base = width // cells_n.astype(np.uint64)
                extra = width - base * cells_n.astype(np.uint64)
                j = np.arange(branching, dtype=np.uint64)[None, :]
                starts = (
                    p_lo[:, None]
                    + j * base[:, None]
                    + np.minimum(j, extra[:, None])
                )
                idx = np.empty(
                    (starts.shape[0], branching + 1), dtype=np.int64
                )
                idx[:, 0] = p_plo
                idx[:, -1] = p_phi
                if branching > 1:
                    idx[:, 1:-1] = np.searchsorted(varr, starts[:, 1:])
                    # Columns past a narrow parent's cell count carry
                    # garbage starts; pin them to the parent's end so
                    # those cells read as empty.
                    short = (
                        np.arange(1, branching)[None, :] >= cells_n[:, None]
                    )
                    if short.any():
                        idx[:, 1:-1][short] = np.broadcast_to(
                            p_phi[:, None], short.shape
                        )[short]
                ends = np.empty_like(starts)
                ends[:, :-1] = starts[:, 1:] - np.uint64(1)
                ends[:, -1] = p_hi
                narrow = np.flatnonzero(cells_n < branching)
                if narrow.size:
                    ends[narrow, cells_n[narrow] - 1] = p_hi[narrow]
                mass = cum[idx[:, 1:]] - cum[idx[:, :-1]]
                nonzero = mass > 0
                # Parent-owned segments: runs of empty *valid* cells
                # (columns past a narrow parent's cell count are
                # padding, not range).
                valid = (
                    np.arange(branching, dtype=np.int64)[None, :]
                    < cells_n[:, None]
                )
                gap = ~nonzero & valid
                gap_run = gap.copy()
                gap_run[:, 1:] &= ~gap[:, :-1]
                g_rows, g_cols = np.nonzero(gap_run)
                if g_rows.size:
                    cover_start_parts.append(starts[g_rows, g_cols])
                    cover_owner_parts.append(parent_slots[g_rows])
                flat = np.flatnonzero(nonzero.ravel())
                rows = flat // branching
                cols = flat - rows * branching
                sel_lo = starts[rows, cols]
                sel_hi = ends[rows, cols]
                sel_mass = mass[rows, cols]
                sel_plo = idx[rows, cols]
                sel_phi = idx[rows, cols + 1]
                parent_rows = rows
                group_sizes = nonzero.sum(axis=1)
                depth += 1
        self._node_count += created
        self._events = total
        self._stats.observe_batch(total, int(varr.size), self._node_count)
        self._stats.splits += bursts
        self._generation += 1
        self._cached_slot = 0
        starts_all = np.concatenate(cover_start_parts)
        owners_all = np.concatenate(cover_owner_parts)
        # Segment starts are globally unique (one deepest owner per
        # position), so this ordering is deterministic; stable only to
        # make that self-evident.
        order = np.argsort(starts_all, kind="stable")
        self._cov_starts = starts_all[order]
        self._cov_owner = owners_all[order]
        if self._scheduler.due(self._events):
            self.merge_now()
        return True

    def add_stream(self, values: Iterable[int], combine_chunk: int = 0) -> None:
        """Feed a stream, optionally combining duplicates per chunk."""
        if combine_chunk <= 0:
            self.extend(values)
            return
        chunk: Dict[int, int] = {}
        pending = 0
        for value in values:
            chunk[value] = chunk.get(value, 0) + 1
            pending += 1
            if pending >= combine_chunk:
                self.add_batch(chunk.items())
                chunk.clear()
                pending = 0
        if chunk:
            self.add_batch(chunk.items())

    def _ingest(
        self,
        items: Optional[Sequence],
        ones: bool,
        columns: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        """Shared bulk kernel behind extend/add_counted/add_batch.

        One vectorized round per window: scatter the provably-safe
        positions, replay the holdouts through the exact scalar cascade
        (see the module docstring). Items a round cannot start on —
        merge triggers and malformed items — go through :meth:`add`,
        which fires the merge mid-count or raises exactly like the
        object backend. ``ones`` means ``items`` is a raw value stream;
        otherwise it is a list of ``(value, count)`` pairs, consumed
        as-is (the scalar kernel unpacks the tuples exactly like the
        object backend's loops — no column transpose unless a
        vectorized round actually runs).

        ``columns`` is the array-native entry
        (:meth:`add_counted_arrays`): ``items`` is passed as ``None``
        and the ``(values, counts)`` arrays — already validated to fit
        the column dtypes — feed the vectorized rounds directly. The
        pair list is materialized lazily, only if a scalar window or a
        per-item error path actually needs it.
        """
        if self._confined_ident is not None:
            self._assert_owner()

        if columns is not None:
            col_values, col_counts = columns
            total = int(col_values.size)
        else:
            col_values = col_counts = None
            total = len(items)

        def _pairs() -> Sequence:
            # Lazy pair list for the scalar windows of an array-native
            # ingest; cached so storms pay the transpose once.
            nonlocal items
            if items is None:
                items = list(
                    zip(col_values.tolist(), col_counts.tolist())
                )
            return items

        stats = self._stats
        if stats.sample_every > 0 or self._audit_every:
            # Sampling/audit hooks must see every event: per-event path.
            add = self.add
            if ones:
                for value in _pairs():
                    add(value)
            else:
                for value, count in _pairs():
                    add(value, count)
            return
        if not total:
            return
        # All numpy-side state is computed lazily on the first
        # vectorized round: storm-mode windows run on the Python lists
        # directly (validity checked inline, like the object backend's
        # fast loops), so a fully-stormed ingest never pays the
        # list-to-array conversion at all. ``varr is None`` doubles as
        # the not-yet-converted marker; ``cum_counts`` holds running
        # event totals after each item (events at any point is the
        # start total plus this prefix — every item deposits exactly
        # once, in order) and ``invalid_at`` the positions the vector
        # path must hand to add() for error parity.
        varr = None
        carr = None
        cum_counts = None
        invalid_at = None
        index = 0
        window = _WINDOW_START
        # Storm mode: while thresholds are tiny (cold tree, small n)
        # nearly every item is a true crossing, so a vectorized round
        # would compute masks just to route the whole window into the
        # replay loop. Run those windows through the scalar kernel
        # directly and come back to vectorized rounds once crossings
        # thin out. The flag persists across calls (chunked feeders
        # re-enter here mid-storm).
        storm = self._storm
        calm = self._calm
        try:
            while index < total:
                if total - index < _MIN_VECTOR_TAIL:
                    # Short tail: the scalar kernel, storm or not (it is
                    # the exact cascade, just without the numpy round).
                    next_index, fallbacks = self._scalar_run(
                        _pairs(), ones, index, total - index
                    )
                    if next_index == index:
                        # Malformed item at the head: add() raises the
                        # object backend's exact error.
                        if ones:
                            self.add(items[index])
                        else:
                            self.add(*items[index])
                        index += 1
                        continue
                    consumed = next_index - index
                    index = next_index
                    if 64 * fallbacks > consumed:
                        storm = True
                        calm = 0
                    else:
                        calm += 1
                        if calm >= 2:
                            storm = False
                    continue
                if storm:
                    next_index, fallbacks = self._scalar_run(
                        _pairs(), ones, index, window
                    )
                    if next_index == index:
                        # Malformed item at the head: add() raises the
                        # object backend's exact error.
                        if ones:
                            self.add(items[index])
                        else:
                            self.add(*items[index])
                        index += 1
                        continue
                    consumed = next_index - index
                    index = next_index
                    # Leave the storm only when true crossings have
                    # been rare for two windows running: the vectorized
                    # rounds win solely through the safe scatter, a
                    # single crossing owner can drag its whole camp
                    # into the (pricier) replay loop, and one quiet
                    # window mid-storm is usually just the gap between
                    # split bursts.
                    if 64 * fallbacks > consumed:
                        storm = True
                        calm = 0
                    else:
                        calm += 1
                        if calm >= 2:
                            storm = False
                    continue
                if varr is None:
                    if col_values is not None:
                        # Array-native ingest: dtypes were validated by
                        # add_counted_arrays, no conversion to attempt.
                        varr = col_values
                        carr = col_counts
                    else:
                        try:
                            if ones:
                                varr = np.asarray(items, dtype=np.uint64)
                                carr = None
                            else:
                                vcols, ccols = zip(*items)
                                varr = np.asarray(vcols, dtype=np.uint64)
                                carr = np.asarray(ccols, dtype=np.int64)
                        except (OverflowError, TypeError, ValueError):
                            # Out-of-dtype input (negative / huge /
                            # non-integer values): finish on the exact
                            # per-item path, which raises the same
                            # errors at the same item the object
                            # backend would.
                            add = self.add
                            if ones:
                                while index < total:
                                    add(items[index])
                                    index += 1
                            else:
                                while index < total:
                                    add(*items[index])
                                    index += 1
                            break
                    if ones:
                        invalid_at = np.flatnonzero(
                            varr > np.uint64(self._root_hi)
                        )
                    else:
                        invalid_at = np.flatnonzero(
                            (varr > np.uint64(self._root_hi)) | (carr <= 0)
                        )
                        cum_counts = np.cumsum(carr)
                next_index, holdouts = self._vector_round(
                    varr, carr, cum_counts, invalid_at, ones, index, window
                )
                if next_index == index:
                    # Blocked at the head: merge trigger or malformed
                    # item — the scalar port decides authoritatively.
                    if ones:
                        self.add(_pairs()[index])
                    else:
                        if items is None:
                            # Array-native head item: no pair list yet,
                            # and one blocked item does not justify the
                            # full transpose.
                            self.add(
                                int(varr[index]), int(carr[index])
                            )
                        else:
                            self.add(*items[index])
                    index += 1
                    continue
                consumed = next_index - index
                index = next_index
                storm = 4 * holdouts >= consumed
                if storm:
                    calm = 0
                # Window adaptation: long windows amortize the numpy
                # overhead but stale-threshold more items into holdouts;
                # track the observed holdout fraction.
                if 8 * holdouts <= consumed:
                    if consumed == window and window < _WINDOW_MAX:
                        window *= 2
                elif 4 * holdouts >= consumed and window > _WINDOW_MIN:
                    window //= 2
        finally:
            self._storm = storm
            self._calm = calm
            self._generation += 1
            self._view_root = None

    def _scalar_run(
        self,
        items: Sequence,
        ones: bool,
        start: int,
        window: int,
    ) -> Tuple[int, int]:
        """Storm-mode window: the exact scalar kernel, no vector pass.

        This is the replay loop of :meth:`_vector_round` applied to the
        whole window — finger search, inline fit check, full cascade
        only on true threshold/merge crossings, consecutive equal
        values run-combined — without first computing a safe mask that
        a cold window would route to the replay anyway. Semantics are
        the scalar port's by construction; there is no mask to prove
        anything about. Runs on the Python list directly (no array
        conversion, and for counted feeds no column transpose — the
        pair tuples are unpacked in place, exactly like the object
        backend's loops): malformed items — out-of-universe values,
        non-positive counts — are detected inline and stop the window
        at their position. Returns ``(next_index, fallbacks)`` where
        ``fallbacks`` counts full-cascade deposits — the storm-exit
        signal (few crossings means thresholds have outgrown typical
        deposits and the vectorized rounds pay again). A return of
        ``start`` means a malformed item sits at the head; the caller
        routes it through add() for error parity.
        """
        total = len(items)
        end = start + window
        if end > total:
            end = total
        absorb = self._absorb_slot
        scheduler = self._scheduler
        stats = self._stats
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        root_hi = self._root_hi
        next_at_now = scheduler.next_at
        vcounts = self._v_counts
        vitem = self._v_is_item
        vdirty = self._v_dirty
        vparents = self._v_parents
        vlos = self._v_los
        vhis = self._v_his
        vfirst = self._v_first_child
        vnext = self._v_next_sibling
        cached = self._cached_slot
        no_slot = _NO_SLOT
        cap = self._capacity
        pending_weight = 0
        pending_updates = 0
        fallbacks = 0
        evt = self._events
        # Leaf cache: between fallbacks no split, merge or grow can
        # happen, so the deepest leaf that took the last deposit — its
        # bounds, is_item flag and running counter — stays valid as
        # plain Python ints. A stream camped on one leaf then deposits
        # with a single column store and zero reads. ``flo > fhi``
        # marks the cache empty; every cascade invalidates it.
        floc = 0
        flo = 1
        fhi = 0
        fitem = False
        fcount = 0
        if ones:
            # Raw stream: indexed loop so consecutive equal values
            # (common in address traces) combine into one deposit.
            i = start
            while i < end:
                value = items[i]
                if value < 0 or value > root_hi:
                    end = i
                    break
                j = i + 1
                while j < end and items[j] == value:
                    j += 1
                item_count = j - i
                i = j
                if flo <= value <= fhi:
                    # Cached-leaf fast path: one store, no reads.
                    landed = evt + item_count
                    if landed < next_at_now:
                        if fitem:
                            fits = True
                        else:
                            th = eps_h * landed
                            if th < min_th:
                                th = min_th
                            # Python int vs float: exact at any
                            # magnitude.
                            fits = fcount + item_count <= th
                        if fits:
                            fcount += item_count
                            vcounts[floc] = fcount
                            evt = landed
                            pending_weight += item_count
                            pending_updates += item_count
                            continue
                    slot = floc
                else:
                    # Inline finger search (the body of _deepest_slot,
                    # with the finger kept in a local across
                    # iterations).
                    slot = cached
                    if value < vlos[slot] or value > vhis[slot]:
                        slot = vparents[slot]
                        while slot != no_slot and (
                            value < vlos[slot] or value > vhis[slot]
                        ):
                            slot = vparents[slot]
                        if slot == no_slot:
                            slot = 0
                    # Descent: siblings sit in lo order, so the first
                    # child whose hi reaches the value is the only
                    # candidate; one lo read then decides
                    # covered-vs-gap (merge passes can leave gaps
                    # between surviving siblings).
                    while True:
                        child = vfirst[slot]
                        while child != no_slot and value > vhis[child]:
                            child = vnext[child]
                        if child == no_slot or vlos[child] > value:
                            break
                        slot = child
                    cached = slot
                    landed = evt + item_count
                    if landed < next_at_now:
                        c0 = vcounts[slot]
                        isit = vitem[slot]
                        if isit:
                            fits = True
                        else:
                            th = eps_h * landed
                            if th < min_th:
                                th = min_th
                            # Python int vs float: exact at any
                            # magnitude.
                            fits = c0 + item_count <= th
                        if fits:
                            c0 += item_count
                            vcounts[slot] = c0
                            evt = landed
                            pending_weight += item_count
                            pending_updates += item_count
                            if not vdirty[slot]:
                                walk = slot
                                while walk != no_slot and not vdirty[walk]:
                                    vdirty[walk] = True
                                    walk = vparents[walk]
                            if vfirst[slot] == no_slot:
                                # Childless: any in-range value is
                                # deepest here. (``child == no_slot``
                                # is weaker — children left of the
                                # value also end the scan that way,
                                # and they must keep catching their
                                # own deposits.)
                                floc = slot
                                flo = vlos[slot]
                                fhi = vhis[slot]
                                fitem = isit
                                fcount = c0
                            continue
                # True crossing (or merge boundary): the full cascade,
                # which can split (growing and rebinding the column
                # views) or merge (moving next_at and recycling slots —
                # stale finger) — re-hoist the loop locals and drop the
                # leaf cache.
                flo = 1
                fhi = 0
                self._events = evt
                absorb(slot, value, item_count)
                stats.observe_update()
                fallbacks += 1
                evt = self._events
                next_at_now = scheduler.next_at
                if cap != self._capacity:
                    # The cascade grew the columns: the memoryviews
                    # were rebound — re-hoist. (Merges recycle slots
                    # in place and never reallocate.)
                    cap = self._capacity
                    vcounts = self._v_counts
                    vitem = self._v_is_item
                    vdirty = self._v_dirty
                    vparents = self._v_parents
                    vlos = self._v_los
                    vhis = self._v_his
                    vfirst = self._v_first_child
                    vnext = self._v_next_sibling
                cached = self._cached_slot
        else:
            # Counted pairs: iterate at C speed like the object
            # backend's fast loops (no run-combining — combined feeds
            # carry unique values, so the lookahead never pays). Each
            # pair deposits on its own, exactly like the object
            # backend's per-pair path.
            hit_bad = False
            for value, item_count in items[start:end]:
                if item_count <= 0 or value < 0 or value > root_hi:
                    hit_bad = True
                    break
                if flo <= value <= fhi:
                    # Cached-leaf fast path: one store, no reads.
                    landed = evt + item_count
                    if landed < next_at_now:
                        if fitem:
                            fits = True
                        else:
                            th = eps_h * landed
                            if th < min_th:
                                th = min_th
                            # Python int vs float: exact at any
                            # magnitude.
                            fits = fcount + item_count <= th
                        if fits:
                            fcount += item_count
                            vcounts[floc] = fcount
                            evt = landed
                            pending_weight += item_count
                            pending_updates += 1
                            continue
                    slot = floc
                else:
                    slot = cached
                    if value < vlos[slot] or value > vhis[slot]:
                        slot = vparents[slot]
                        while slot != no_slot and (
                            value < vlos[slot] or value > vhis[slot]
                        ):
                            slot = vparents[slot]
                        if slot == no_slot:
                            slot = 0
                    # Descent: siblings sit in lo order, so the first
                    # child whose hi reaches the value is the only
                    # candidate; one lo read then decides
                    # covered-vs-gap (merge passes can leave gaps
                    # between surviving siblings).
                    while True:
                        child = vfirst[slot]
                        while child != no_slot and value > vhis[child]:
                            child = vnext[child]
                        if child == no_slot or vlos[child] > value:
                            break
                        slot = child
                    cached = slot
                    landed = evt + item_count
                    if landed < next_at_now:
                        c0 = vcounts[slot]
                        isit = vitem[slot]
                        if isit:
                            fits = True
                        else:
                            th = eps_h * landed
                            if th < min_th:
                                th = min_th
                            # Python int vs float: exact at any
                            # magnitude.
                            fits = c0 + item_count <= th
                        if fits:
                            c0 += item_count
                            vcounts[slot] = c0
                            evt = landed
                            pending_weight += item_count
                            pending_updates += 1
                            if not vdirty[slot]:
                                walk = slot
                                while walk != no_slot and not vdirty[walk]:
                                    vdirty[walk] = True
                                    walk = vparents[walk]
                            if vfirst[slot] == no_slot:
                                # Childless: any in-range value is
                                # deepest here (see the ones loop).
                                floc = slot
                                flo = vlos[slot]
                                fhi = vhis[slot]
                                fitem = isit
                                fcount = c0
                            continue
                flo = 1
                fhi = 0
                self._events = evt
                absorb(slot, value, item_count)
                stats.observe_update()
                fallbacks += 1
                evt = self._events
                next_at_now = scheduler.next_at
                if cap != self._capacity:
                    # The cascade grew the columns: the memoryviews
                    # were rebound — re-hoist. (Merges recycle slots
                    # in place and never reallocate.)
                    cap = self._capacity
                    vcounts = self._v_counts
                    vitem = self._v_is_item
                    vdirty = self._v_dirty
                    vparents = self._v_parents
                    vlos = self._v_los
                    vhis = self._v_his
                    vfirst = self._v_first_child
                    vnext = self._v_next_sibling
                cached = self._cached_slot
            if hit_bad:
                # Recover the malformed pair's index: every pair before
                # it was valid (the loop deposited them), so the first
                # invalid position from ``start`` is exactly where the
                # iteration stopped.
                at = start
                while True:
                    value, item_count = items[at]
                    if (
                        item_count <= 0
                        or value < 0
                        or value > root_hi
                    ):
                        break
                    at += 1
                end = at
        self._events = evt
        self._cached_slot = cached
        if pending_updates:
            stats.observe_batch(
                pending_weight, pending_updates, self._node_count
            )
        return end, fallbacks

    def _vector_round(  # noqa: RAP-LINT023 - holdout replay is the exact scalar port, measured faster inline
        self,
        varr: np.ndarray,
        carr: Optional[np.ndarray],
        cum_counts: Optional[np.ndarray],
        invalid_at: np.ndarray,
        ones: bool,
        start: int,
        window: int,
    ) -> Tuple[int, int]:
        """Consume one window: safe scatter plus exact holdout replay.

        Returns ``(next_index, holdouts)`` — the index of the first
        unconsumed item and how many items replayed through the scalar
        cascade (the adaptive window signal). A return of ``start``
        means the round could not start (merge trigger or malformed
        item at the head); the caller routes that item through add().

        The fit predicate is exact per *position*: a position is safe
        when its owner's running deposit through it stays at or below
        the item's own arrival threshold — the same comparison the
        scalar cascade would make at that moment (the window is cut
        before the next merge trigger, so arrival event totals are
        known up front). Positions at or past their owner's first
        crossing replay through the scalar cascade with ``events``
        rewound to each item's arrival value, which reproduces the
        object backend's split decisions exactly — the mask routes, it
        never decides semantics.
        """
        self._sync_cover()
        total = varr.size
        if start + window > total:
            window = total - start
        size = self._size
        events_before = self._events
        next_at = self._scheduler.next_at
        if ones:
            # Raw stream: the j-th window item lands at events + j, so
            # the merge cap is a scalar, no prefix array needed.
            can_take = int(next_at) - events_before
            while events_before + can_take >= next_at:
                can_take -= 1
            while events_before + can_take + 1 < next_at:
                can_take += 1
            limit = window if can_take >= window else max(can_take, 0)
            n_after = None
        else:
            base = int(cum_counts[start - 1]) if start else 0
            n_after = (
                cum_counts[start : start + window] - base
            ) + events_before
            # First item pushing events to >= next_at ends the window
            # before it. Integral n >= next_at iff n >= ceil(next_at),
            # so the cut compares int64 against an int64 scalar — exact
            # at any magnitude (searchsorted against the raw float
            # would round n_after past 2**53).
            cap = math.ceil(next_at)
            if cap > _INT64_MAX:
                limit = window
            else:
                limit = int(np.searchsorted(n_after, np.int64(cap)))
        if invalid_at.size:
            bad_index = np.searchsorted(invalid_at, start)
            if bad_index < invalid_at.size:
                next_invalid = int(invalid_at[bad_index]) - start
                if next_invalid < limit:
                    limit = next_invalid
        if limit <= 0:
            return start, 0
        owners = self._cov_owner[
            np.searchsorted(
                self._cov_starts, varr[start : start + limit], side="right"
            )
            - 1
        ]
        first_n = events_before + 1 if ones else int(n_after[0])
        th0 = self._eps_over_height * first_n
        if th0 < self._min_threshold:
            th0 = self._min_threshold
        # Integer-side threshold: for integral totals, x <= th0 iff
        # x <= floor(th0), so the mask never compares int64 against
        # float64 (inexact above 2**53). Clamped to int64 range —
        # past the clamp every representable total fits anyway.
        th_int = min(math.floor(th0), _INT64_MAX)
        counts = self._counts
        weights = None if ones else carr[start : start + limit]
        if ones:
            totals = np.bincount(owners, minlength=size)
        else:
            totals = _exact_bincount(owners, weights, size)
        owner_ok = self._is_item[:size] | (counts[:size] + totals <= th_int)
        bad_at = np.flatnonzero(~owner_ok[owners])
        hold_pos = None
        if bad_at.size:
            # The window total overshoots for hot owners that are not
            # actually about to split — their early items fit even
            # though the whole window's worth would not. Refine exactly
            # for just the flagged owners, against each item's *own*
            # arrival threshold (the th0 pre-filter uses the round's
            # first — smallest — threshold; late-window items see a
            # larger n and a larger budget). An item fits iff the
            # owner's running deposit through it stays at or below
            # max(eps_h * landed, min_th) with ``landed`` the global
            # event total after the item — exactly the scalar fast
            # path's predicate. From the owner's first true crossing
            # onward every later item is held regardless of threshold:
            # the crossing splits the owner, so the scalar cascade
            # routes those items to a fresh child (groupwise
            # cumulative-OR via a cumsum over the crossing flags).
            # One groupwise running sum over the flagged positions —
            # grouped with a stable owner sort so each group keeps
            # arrival order — replaces a per-owner scan of the window.
            bowners = owners[bad_at]
            group_order = np.argsort(bowners, kind="stable")
            bpos = bad_at[group_order]
            bowners = bowners[group_order]
            flagged = bpos.size
            group_start = np.empty(flagged, dtype=np.bool_)
            group_start[0] = True
            np.not_equal(bowners[1:], bowners[:-1], out=group_start[1:])
            at = np.arange(flagged, dtype=np.int64)
            heads = np.maximum.accumulate(np.where(group_start, at, 0))
            owner_base = counts[bowners]
            if ones:
                running = owner_base + (at - heads) + 1
                landed = events_before + 1 + bpos
            else:
                wts = weights[bpos]
                deposited = np.cumsum(wts)
                running = (
                    owner_base + deposited - (deposited[heads] - wts[heads])
                )
                landed = n_after[bpos]
            # Integer-side thresholds, vectorized: float64(landed)
            # rounds exactly like the scalar port's int-to-float
            # conversion, and integral running > th iff running >
            # floor(th). Thresholds at or past 2**63 are clamped to
            # _INT64_MAX (no int64 counter can exceed them) before the
            # cast, which would otherwise overflow.
            th_arr = self._eps_over_height * landed.astype(np.float64)
            np.maximum(th_arr, self._min_threshold, out=th_arr)
            big = th_arr >= _TWO_POW_63
            big_any = bool(big.any())
            if big_any:
                th_arr[big] = 0.0
            th_per = np.floor(th_arr).astype(np.int64)
            if big_any:
                th_per[big] = _INT64_MAX
            crossed = running > th_per
            crossed_csum = np.cumsum(crossed)
            held = (
                crossed_csum - (crossed_csum[heads] - crossed[heads])
            ) > 0
            hold_mask = np.zeros(limit, dtype=np.bool_)
            hold_mask[bpos[held]] = True
            hold_pos = np.flatnonzero(hold_mask)
            safe_pos = np.flatnonzero(~hold_mask)
            if ones:
                sums = np.bincount(owners[safe_pos], minlength=size)
            else:
                sums = _exact_bincount(
                    owners[safe_pos], weights[safe_pos], size
                )
            safe_count = int(safe_pos.size)
        else:
            sums = totals
            safe_count = limit
        touched = np.flatnonzero(sums)
        if touched.size:
            # Both bincount shapes produce integer sums (unweighted
            # bincount returns intp; _exact_bincount returns int64).
            counts[touched] += sums[touched]
            self._mark_dirty_many(touched)
            safe_weight = (
                safe_count if ones else int(sums[touched].sum())
            )
            self._stats.observe_batch(
                safe_weight, safe_count, self._node_count
            )
        holdouts = 0
        if hold_pos is not None and hold_pos.size:
            holdouts = int(hold_pos.size)
            stats = self._stats
            hold_values = varr[start + hold_pos].tolist()
            hold_counts = (
                None if ones else carr[start + hold_pos].tolist()
            )
            # Events at each held item's arrival, computed in one
            # vector op (the cut prefix through its predecessor).
            if ones:
                arrivals = (events_before + hold_pos).tolist()
            else:
                arrivals = np.where(
                    hold_pos == 0,
                    np.int64(events_before),
                    events_before
                    + cum_counts[start + hold_pos - 1]
                    - base,
                ).tolist()
            # Replay loop: the same inline fast path as the object
            # backend's extend kernel. A held item whose whole deposit
            # fits its deepest cover at its arrival moment (an earlier
            # holdout's split usually deepened the cover under it) is a
            # one-store update — only true threshold/merge crossings
            # take the full cascade. The finger search (_deepest_slot)
            # resolves in ~O(1) because consecutive holdouts of one
            # owner sit near each other. Fallbacks can split (growing
            # and rebinding the column views) or merge (moving
            # next_at), so the loop re-hoists its locals after each.
            #
            # Equal-value holdouts at *consecutive* window positions
            # collapse into one counted deposit first: the cascade
            # advances ``events`` per sub-deposit exactly as the object
            # backend's per-item loop would (same thresholds at every
            # intermediate total — this is the very equivalence
            # ``add_counted`` is built on), and consecutiveness
            # guarantees no other item's arrival lands in between. A
            # camped stream's holdout storm becomes a handful of
            # cascade calls instead of thousands.
            positions_run = hold_pos.tolist()
            deepest = self._deepest_slot
            absorb = self._absorb_slot
            scheduler = self._scheduler
            eps_h = self._eps_over_height
            min_th = self._min_threshold
            next_at_now = scheduler.next_at
            vcounts = self._v_counts
            vitem = self._v_is_item
            vdirty = self._v_dirty
            vparents = self._v_parents
            no_slot = _NO_SLOT
            cap = self._capacity
            pending_weight = 0
            pending_updates = 0
            i = 0
            n_hold = holdouts
            while i < n_hold:
                value = hold_values[i]
                evt = arrivals[i]
                item_count = 1 if ones else hold_counts[i]
                runs = 1
                j = i + 1
                while (
                    j < n_hold
                    and hold_values[j] == value
                    and positions_run[j] == positions_run[j - 1] + 1
                ):
                    item_count += 1 if ones else hold_counts[j]
                    runs += 1
                    j += 1
                i = j
                slot = deepest(value)
                landed = evt + item_count
                if landed < next_at_now:
                    c0 = vcounts[slot]
                    if vitem[slot]:
                        fits = True
                    else:
                        th = eps_h * landed
                        if th < min_th:
                            th = min_th
                        # Python int vs float: exact at any magnitude.
                        fits = c0 + item_count <= th
                    if fits:
                        vcounts[slot] = c0 + item_count
                        pending_weight += item_count
                        pending_updates += runs
                        if not vdirty[slot]:
                            walk = slot
                            while walk != no_slot and not vdirty[walk]:
                                vdirty[walk] = True
                                walk = vparents[walk]
                        continue
                self._events = evt
                absorb(slot, value, item_count)
                stats.observe_update()
                next_at_now = scheduler.next_at
                if cap != self._capacity:
                    cap = self._capacity
                    vcounts = self._v_counts
                    vitem = self._v_is_item
                    vdirty = self._v_dirty
                    vparents = self._v_parents
            if pending_updates:
                stats.observe_batch(
                    pending_weight, pending_updates, self._node_count
                )
        # The whole cut is absorbed; land events on the cut's end (the
        # last holdout's cascade may have left it mid-window).
        self._events = (
            events_before + limit if ones else int(n_after[limit - 1])
        )
        return start + limit, holdouts

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def _split_slot(self, slot: int) -> None:
        """Burst ``slot`` into up to ``b`` children (Section 2.2).

        Same policy as ``RapTree._split``: existing children (partition
        cells that survived a partial merge) are left alone, missing
        cells gain zero-count children, and the chain up to the root is
        marked dirty. The cover splice is queued for the next vectorized
        round rather than applied here.
        """
        lo = self._v_los[slot]
        hi = self._v_his[slot]
        kid_depth = self._v_depth[slot] + 1
        if self._v_n_children[slot]:
            cells = partition_range(lo, hi, self._config.branching)
            kids = self._children_slots(slot)
            los = self._v_los
            his = self._v_his
            existing = {(los[k], his[k]) for k in kids}
            created = [
                self._alloc(cell_lo, cell_hi, kid_depth)
                for cell_lo, cell_hi in cells
                if (cell_lo, cell_hi) not in existing
            ]
            if created:
                # _alloc may have grown (reallocated) the columns:
                # re-read the bounds view before sorting the chain.
                los = self._v_los
                merged = [
                    kid
                    for _, kid in sorted(
                        [(los[k], k) for k in kids]
                        + [(los[k], k) for k in created]
                    )
                ]
                self._set_children(slot, merged)
                self._node_count += len(created)
                self._cov_pending.append((slot, created))
        else:
            # Fast path (no surviving children): every cell is fresh
            # and emitted in ``lo`` order, so the sibling chain is just
            # the allocation order — allocate the partition cells
            # directly (the same boundaries ``partition_range``
            # computes: up to ``b`` near-equal cells, the remainder
            # spread over the leading ones) and chain them inline.
            width = hi - lo + 1
            branching = self._config.branching
            cells_n = branching if width >= branching else width
            base_w = width // cells_n
            extra = width % cells_n
            # Batched allocation: same pop-then-extend order as
            # per-cell _alloc calls, but with capacity ensured up
            # front so no view can rebind mid-loop.
            while self._size + cells_n - self._free_top > self._capacity:
                self._grow()
            free_top = self._free_top
            size = self._size
            vfree = self._v_free_slots
            vlive = self._v_live
            vlos = self._v_los
            vhis = self._v_his
            vdepth = self._v_depth
            vis_item = self._v_is_item
            parents = self._v_parents
            next_sibling = self._v_next_sibling
            created = []
            cell_lo = lo
            for cell_index in range(cells_n):
                cell_w = base_w + 1 if cell_index < extra else base_w
                if free_top:
                    free_top -= 1
                    kid = vfree[free_top]
                    vlive[kid] = True
                else:
                    kid = size
                    size += 1
                cell_hi = cell_lo + cell_w - 1
                vlos[kid] = cell_lo
                vhis[kid] = cell_hi
                vdepth[kid] = kid_depth
                if cell_w == 1:
                    vis_item[kid] = True
                created.append(kid)
                cell_lo = cell_hi + 1
            self._free_top = free_top
            self._size = size
            prev = created[0]
            self._v_first_child[slot] = prev
            parents[prev] = slot
            for kid in created[1:]:
                parents[kid] = slot
                next_sibling[prev] = kid
                prev = kid
            next_sibling[prev] = _NO_SLOT
            self._v_n_children[slot] = len(created)
            self._node_count += len(created)
            self._cov_pending.append((slot, created))
        self._mark_dirty(slot)
        self._stats.observe_split()

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def merge_now(self) -> int:
        """Run one batched merge pass; returns the number of nodes removed.

        Observably identical to ``RapTree.merge_now`` — the reference's
        dirty-frontier walk is documented to produce exactly the tree a
        full post-order pass would, and after either pass every node is
        clean with exact cached values, so the vectorized full pass in
        :meth:`_merge_frontier` lands on the same state. The cover index
        is spliced in place (no rebuild).
        """
        if self._confined_ident is not None:
            self._assert_owner()
        self._sync_cover()
        threshold = self._config.merge_threshold(self._events)
        before = self._node_count
        visited = self._merge_frontier(threshold)
        removed = before - self._node_count
        self._stats.observe_merge_batch(removed, nodes_scanned=visited)
        self._scheduler.fired(self._events)
        self._generation += 1
        if removed:
            # Recycled slots may be anywhere; park the finger at the root.
            self._cached_slot = 0
        return removed

    def _merge_frontier(self, threshold: float) -> int:
        """One vectorized merge pass over the level structure.

        Level-ordered array kernels replace the object backend's
        post-order frame walk: subtree weights bottom-up (exact int64
        bincount), collapsibility top-down, chain rebuild and cache
        finalization wholesale. Equivalent to the reference walk
        because collapsing is closed under the maximal-subtree rule:
        a subtree collapses iff its total weight is at or below the
        threshold, wherever the walk encounters it. Returns the number
        of slots examined (the whole live set, or 1 on the clean-root
        early exit — this *is* a full scan, unlike the object walk,
        which is the price of doing it in constant Python overhead).
        """
        if not self._dirty[0] and int(self._cached_min[0]) > threshold:
            return 1
        size = self._size
        counts = self._counts
        parents = self._parents
        live = self._live
        live_idx = np.flatnonzero(live[:size])
        visited = int(live_idx.size)
        levels = self._depth[live_idx]
        order = np.argsort(levels, kind="stable")
        by_depth = live_idx[order]
        level_of = levels[order]
        max_depth = int(level_of[-1])
        bounds = np.searchsorted(level_of, np.arange(max_depth + 2))
        # Subtree weights, bottom-up by level. ``np.add.at`` is an
        # unbuffered indexed add straight in int64 — exact at any
        # magnitude (the float64-splitting ``_exact_bincount`` is only
        # needed where a ``weights=`` accumulation is unavoidable) and,
        # on the shallow per-level slot groups of a deep tree, several
        # times cheaper than two bincounts over the whole slot space.
        subtree = counts[:size].copy()
        for level in range(max_depth, 0, -1):
            slots = by_depth[bounds[level] : bounds[level + 1]]
            np.add.at(subtree, parents[slots], subtree[slots])
        # Integral weights: w <= threshold iff w <= floor(threshold).
        if threshold < 0:
            floor_t = -1
        else:
            floor_t = min(math.floor(threshold), _INT64_MAX)
        collapsible = (subtree <= floor_t) & live[:size]
        collapsible[0] = False
        collapsible_idx = np.flatnonzero(collapsible)
        if collapsible_idx.size == 0:
            self._finalize_clean(by_depth, bounds, max_depth, subtree, None)
            return visited
        # A slot is removed when any ancestor-or-self collapses
        # (top-down propagation down the levels). Nothing above the
        # shallowest collapsible slot can inherit a removal, so the
        # walk starts one level below it — on a deep tree collapses
        # are usually confined to the fresh camps near the bottom.
        removed = collapsible.copy()
        start_level = int(self._depth[collapsible_idx].min()) + 1
        for level in range(start_level, max_depth + 1):
            slots = by_depth[bounds[level] : bounds[level + 1]]
            removed[slots] |= removed[parents[slots]]
        removed_idx = np.flatnonzero(removed)
        survives = live[:size] & ~removed
        # Maximal collapsed subtrees (removed slots whose parent
        # survives — necessarily collapsible themselves) fold their
        # whole weight into the surviving parent.
        tops = removed_idx[survives[parents[removed_idx]]]
        np.add.at(counts, parents[tops], subtree[tops])
        # Free the removed slots: reset counters/item flags so dead
        # slots keep reading as zero, restore the allocation defaults
        # _alloc relies on (leaf chain head, dirty), push onto the
        # free stack.
        counts[removed_idx] = 0
        self._is_item[removed_idx] = False
        self._first_child[removed_idx] = _NO_SLOT
        self._n_children[removed_idx] = 0
        self._dirty[removed_idx] = True
        live[removed_idx] = False
        freed = removed_idx.size
        self._free_slots[self._free_top : self._free_top + freed] = removed_idx
        self._free_top += int(freed)
        self._node_count -= int(freed)
        surv_idx = np.flatnonzero(survives)
        self._rebuild_chains(surv_idx)
        self._finalize_clean(by_depth, bounds, max_depth, subtree, survives)
        # Cover splice: a value's new deepest cover is the nearest
        # surviving ancestor of its old one (collapses remove whole
        # subtrees). Remap owners top-down, then coalesce equal-owner
        # runs — the result is exactly what _rebuild_cover would emit.
        ancestor = np.arange(size, dtype=np.int64)
        for level in range(start_level - 1, max_depth + 1):
            slots = by_depth[bounds[level] : bounds[level + 1]]
            gone = slots[removed[slots]]
            ancestor[gone] = ancestor[parents[gone]]
        owner_new = ancestor[self._cov_owner]
        keep = np.empty(owner_new.size, dtype=np.bool_)
        keep[0] = True
        np.not_equal(owner_new[1:], owner_new[:-1], out=keep[1:])
        self._cov_starts = self._cov_starts[keep]
        self._cov_owner = owner_new[keep]
        return visited

    def _finalize_clean(
        self,
        by_depth: np.ndarray,
        bounds: np.ndarray,
        max_depth: int,
        subtree: np.ndarray,
        survives: Optional[np.ndarray],
    ) -> None:
        """Re-finalize surviving slots as clean with exact cached values.

        ``cached_weight`` is the (collapse-invariant) subtree weight;
        ``cached_min`` is the bottom-up minimum of subtree weights over
        the surviving slots — exactly what the reference walk's
        per-frame ``min`` accumulates.
        """
        parents = self._parents
        minima = subtree.copy()
        for level in range(max_depth, 0, -1):
            slots = by_depth[bounds[level] : bounds[level + 1]]
            if survives is not None:
                slots = slots[survives[slots]]
            np.minimum.at(minima, parents[slots], minima[slots])
        if survives is None:
            idx = by_depth
        else:
            idx = np.flatnonzero(survives)
        self._cached_weight[idx] = subtree[idx]
        self._cached_min[idx] = minima[idx]
        self._dirty[idx] = False

    def _rebuild_chains(self, surv_idx: np.ndarray) -> None:
        """Rewire every surviving sibling chain in one lexsort.

        Children are grouped by parent and ordered by ``lo`` — the same
        order every chain already had, so surviving structure is
        preserved and collapsed children simply vanish.
        """
        parents = self._parents
        first_child = self._first_child
        next_sibling = self._next_sibling
        n_children = self._n_children
        first_child[surv_idx] = _NO_SLOT
        next_sibling[surv_idx] = _NO_SLOT
        n_children[surv_idx] = 0
        kids = surv_idx[surv_idx != 0]
        if not kids.size:
            return
        kid_parents = parents[kids]
        order = np.lexsort((self._los[kids], kid_parents))
        kids = kids[order]
        kid_parents = kid_parents[order]
        heads = np.empty(kids.size, dtype=np.bool_)
        heads[0] = True
        np.not_equal(kid_parents[1:], kid_parents[:-1], out=heads[1:])
        head_at = np.flatnonzero(heads)
        first_child[kid_parents[head_at]] = kids[head_at]
        tail = ~heads[1:]
        next_sibling[kids[:-1][tail]] = kids[1:][tail]
        n_children[kid_parents[head_at]] = np.diff(
            np.append(head_at, kids.size)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def smallest_covering(self, value: int) -> RapNode:
        """The deepest node whose range covers ``value`` (view node)."""
        if value < 0 or value > self._root_hi:
            raise ValueError(
                f"value {value} outside universe [0, {self._root_hi}]"
            )
        node = self._materialize()
        while True:
            child = node.child_covering(value)
            if child is None:
                return node
            node = child

    def find_node(self, lo: int, hi: int) -> Optional[RapNode]:
        """The view node with exactly the range ``[lo, hi]``, if present."""
        node = self._materialize()
        while True:
            if node.lo == lo and node.hi == hi:
                return node
            child = node.child_covering(lo)
            if child is None or child.hi < hi:
                return None
            node = child

    def estimate(self, lo: int, hi: int) -> int:
        """Lower-bound estimate of events that fell in ``[lo, hi]``.

        A node's subtree contributes iff its own range is contained in
        the query (ranges nest), so the stack walk of the object backend
        reduces to one vectorized containment mask over the slots. Dead
        slots hold count 0 (reset at merge time), so no liveness mask
        is needed.
        """
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        root_hi = self._root_hi
        if hi < 0 or lo > root_hi:
            return 0
        size = self._size
        query_lo = np.uint64(max(lo, 0))
        query_hi = np.uint64(min(hi, root_hi))
        mask = (self._los[:size] >= query_lo) & (self._his[:size] <= query_hi)
        return int(self._counts[:size][mask].sum())

    def estimate_upper(self, lo: int, hi: int) -> int:
        """Upper-bound estimate: every overlapping counter contributes."""
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        root_hi = self._root_hi
        if hi < 0 or lo > root_hi:
            return 0
        size = self._size
        query_lo = np.uint64(max(lo, 0))
        query_hi = np.uint64(min(hi, root_hi))
        mask = (self._los[:size] <= query_hi) & (self._his[:size] >= query_lo)
        return int(self._counts[:size][mask].sum())

    def nodes(self) -> Iterator[RapNode]:
        """Pre-order iteration over the materialized view."""
        return self._materialize().iter_subtree()

    def leaves(self) -> Iterator[RapNode]:
        """Iteration over childless view nodes."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def total_weight(self) -> int:
        """Sum of all counters; always equals :attr:`events`.

        Dead slots hold count 0 (reset at merge time), so the raw
        column sum is the tree total.
        """
        return int(self._counts[: self._size].sum())

    def depth(self) -> int:
        """Height of the tree (root alone has depth 0).

        The depth column is maintained at allocation time (merges never
        re-depth a surviving node), so this is a masked max, not a walk.
        """
        size = self._size
        return int(self._depth[:size][self._live[:size]].max())

    def _hot_range_rows(
        self, cutoff: float
    ) -> List[Tuple[int, int, int, int, int]]:
        """Hot nodes as ``(lo, hi, exclusive, inclusive, depth)`` rows.

        The vectorized port of :func:`repro.core.hot_ranges.find_hot_ranges`'
        post-order walk: inclusive weights are plain subtree sums;
        exclusive weights fold in only the children that are themselves
        below the cutoff, accumulated level by level. The float cutoff
        is compared on the integer side (``e < cutoff`` iff
        ``e <= ceil(cutoff) - 1`` for integral ``e``), matching the
        reference's exact int-float comparisons.

        Rows are ordered exactly as the reference walk appends them —
        post-order position, which over a laminar range family is
        ``(hi ascending, depth descending)`` — so the caller's stable
        sort by weight produces the identical final order, ties and all.

        Everything runs on the *compacted* live set (``node_count``
        rows), not the slot space: inclusive weights come from one
        int64 prefix sum over the preorder layout (a subtree is a
        contiguous preorder run — laminar family, siblings disjoint —
        whose end is the first later position with ``lo > hi``), and
        the exclusive fold walks levels through a compact parent-
        position map with ``np.add.at``. Cost is O(n log n) in the
        live node count, independent of tree depth and slot capacity.
        """
        size = self._size
        live_idx = np.flatnonzero(self._live[:size])
        n = int(live_idx.size)
        depth = self._depth[live_idx]
        # Preorder: lo ascending, ancestors (shallower) before equal-lo
        # descendants.
        order = np.lexsort((depth, self._los[live_idx]))
        slots = live_idx[order]
        pre_los = self._los[slots]
        pre_his = self._his[slots]
        pre_depth = depth[order]
        pre_counts = self._counts[slots]
        csum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(pre_counts, out=csum[1:])
        ends = np.searchsorted(pre_los, pre_his, side="right")
        inclusive = csum[ends] - csum[:n]
        cut_m1 = min(math.ceil(cutoff) - 1, _INT64_MAX)
        # Exclusive fold, bottom-up by level: a child below the cutoff
        # donates its (already folded) weight to its parent. np.add.at
        # accumulates duplicates exactly in int64.
        pos_of = np.empty(size, dtype=np.int64)
        pos_of[slots] = np.arange(n, dtype=np.int64)
        parent_pos = pos_of[self._parents[slots]]
        by_depth = np.argsort(pre_depth, kind="stable")
        level_of = pre_depth[by_depth]
        max_depth = int(level_of[-1]) if n else 0
        bounds = np.searchsorted(level_of, np.arange(max_depth + 2))
        exclusive = pre_counts.astype(np.int64, copy=True)
        for level in range(max_depth, 0, -1):
            rows = by_depth[bounds[level] : bounds[level + 1]]
            cold = rows[exclusive[rows] <= cut_m1]
            np.add.at(exclusive, parent_pos[cold], exclusive[cold])
        hot_rows = np.flatnonzero(exclusive > cut_m1)
        if not hot_rows.size:
            return []
        post = np.lexsort((-pre_depth[hot_rows], pre_his[hot_rows]))
        hot_rows = hot_rows[post]
        return list(
            zip(
                pre_los[hot_rows].tolist(),
                pre_his[hot_rows].tolist(),
                exclusive[hot_rows].tolist(),
                inclusive[hot_rows].tolist(),
                pre_depth[hot_rows].tolist(),
            )
        )

    # ------------------------------------------------------------------
    # Materialized view
    # ------------------------------------------------------------------

    def _materialize(self) -> RapNode:
        """Build (or reuse) the linked ``RapNode`` view of the columns.

        Cached per mutation generation: serializers, auditors and folds
        may walk it repeatedly between mutations for free. The view is a
        snapshot — mutating it does not write back. Columns convert via
        ``tolist`` (one C pass each) so the per-node construction reads
        Python ints, not numpy scalars.
        """
        if (
            self._view_root is not None
            and self._view_generation == self._generation
        ):
            return self._view_root
        size = self._size
        los = self._los[:size].tolist()
        his = self._his[:size].tolist()
        counts = self._counts[:size].tolist()
        first_child = self._first_child[:size].tolist()
        next_sibling = self._next_sibling[:size].tolist()
        dirty = self._dirty[:size].tolist()
        cached_weight = self._cached_weight[:size].tolist()
        cached_min = self._cached_min[:size].tolist()

        def build(slot: int, parent: Optional[RapNode]) -> RapNode:
            node = RapNode(
                los[slot], his[slot], count=counts[slot], parent=parent
            )
            node.dirty = dirty[slot]
            node.cached_weight = cached_weight[slot]
            node.cached_min = cached_min[slot]
            return node

        root = build(0, None)
        stack = [(0, root)]
        while stack:
            slot, node = stack.pop()
            child = first_child[slot]
            while child != _NO_SLOT:
                view_child = build(child, node)
                node.attach_child(view_child)
                stack.append((child, view_child))
                child = next_sibling[child]
        self._view_root = root
        self._view_generation = self._generation
        return root

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def audit(self) -> None:
        """Run the full structural auditor; raise ``AuditError`` if dirty."""
        # Imported lazily: repro.checks imports repro.core.
        from ..checks.audit import TreeAuditor

        TreeAuditor().audit(self).raise_if_failed()

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any broken structural invariant.

        Runs the object backend's full check against the materialized
        view (geometry, conservation, parent pointers, merge-cache
        coherence), then audits the columnar bookkeeping itself: the
        free stack, the live/depth columns, the recycled-slot resets
        and the incrementally-spliced cover index (compared against a
        from-scratch rebuild).
        """
        from .tree import RapTree

        probe = RapTree(self._config)
        probe._events = self._events  # noqa: SLF001 - borrowed checker
        probe._node_count = self._node_count  # noqa: SLF001 - borrowed checker
        probe._root = self._materialize()  # noqa: SLF001 - borrowed checker
        probe.check_invariants()

        size = self._size
        live_slots = [slot for slot in range(size) if self._live[slot]]
        assert len(live_slots) == self._node_count, (
            f"live column counts {len(live_slots)} slots, "
            f"node_count says {self._node_count}"
        )
        free_list = self._free_slots[: self._free_top].tolist()
        free_set = set(free_list)
        assert len(free_set) == len(free_list), "free stack has duplicates"
        assert len(free_set) + len(live_slots) == size, (
            "free stack and live column disagree on slot accounting"
        )
        for slot in free_list:
            assert not self._live[slot], f"free slot {slot} is still live"
            assert self._counts[slot] == 0, (
                f"free slot {slot} holds a nonzero count"
            )
            assert not self._is_item[slot], (
                f"free slot {slot} still flagged as an item"
            )
        assert int(self._depth[0]) == 0, "root depth must be 0"
        for slot in live_slots:
            kids = self._children_slots(slot)
            assert self._n_children[slot] == len(kids), (
                f"slot {slot} chain length != n_children"
            )
            assert bool(self._is_item[slot]) == (
                self._los[slot] == self._his[slot]
            ), f"slot {slot} item flag disagrees with its bounds"
            for kid in kids:
                assert self._live[kid], f"dead child {kid} in chain of {slot}"
                assert self._parents[kid] == slot, (
                    f"child {kid} has wrong parent pointer"
                )
                assert self._depth[kid] == self._depth[slot] + 1, (
                    f"child {kid} depth disagrees with parent {slot}"
                )
        self._sync_cover()
        expected_starts = self._cov_starts
        expected_owner = self._cov_owner
        self._rebuild_cover()
        assert np.array_equal(expected_starts, self._cov_starts) and (
            np.array_equal(expected_owner, self._cov_owner)
        ), "cover index diverged from tree structure"

    def __len__(self) -> int:
        return self._node_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarRapTree(R={self._config.range_max}, "
            f"eps={self._config.epsilon}, nodes={self._node_count}, "
            f"events={self._events})"
        )
