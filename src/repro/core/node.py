"""Nodes of the RAP profile tree.

Each node corresponds to a range of events ``[lo, hi]`` (closed, integer)
and owns one counter. The root covers the entire universe; each child of a
node covers one cell of a deterministic b-ary partition of its parent's
range (Section 2.1). Counters are never decremented — merges *move* weight
upward, they never drop it (footnote 1 of the paper).
"""

from __future__ import annotations

from typing import Iterator, List, Optional


def partition_range(lo: int, hi: int, branching: int) -> List[tuple]:
    """Deterministically partition ``[lo, hi]`` into up to ``b`` cells.

    Returns the list of ``(lo, hi)`` cells a split of this range creates.
    Cells are contiguous, disjoint, cover the whole range, and the split
    points depend only on ``(lo, hi, branching)`` — this is what lets a
    re-split after a partial merge recreate *exactly* the cells that any
    surviving children already occupy (Section 3.3's "identifying the new
    parent of the existing children").

    For power-of-``b`` widths the cells are equal sized, which for
    ``b = 4`` on power-of-two universes makes every cell a binary prefix —
    the property the hardware TCAM relies on.
    """
    width = hi - lo + 1
    if width < 2:
        raise ValueError(f"cannot partition a single item range [{lo}, {hi}]")
    cells = min(branching, width)
    base = width // cells
    extra = width % cells
    out = []
    start = lo
    for index in range(cells):
        size = base + (1 if index < extra else 0)
        out.append((start, start + size - 1))
        start += size
    return out


class RapNode:
    """One counter in the RAP tree, covering the range ``[lo, hi]``.

    Attributes
    ----------
    lo, hi:
        Closed bounds of the range this node profiles.
    count:
        Events recorded while this node was the smallest covering range.
        After a merge this also absorbs the weight of collapsed subtrees.
    children:
        Child nodes, sorted by ``lo``. Children are always cells of
        ``partition_range(lo, hi, b)`` but need not cover the whole range
        (a partial merge can leave gaps, which the parent then covers).
    parent:
        Parent node, or ``None`` for the root.
    dirty:
        Whether this subtree has gained weight (or new nodes) since the
        last batched merge pass. Maintained by :class:`RapTree`; a clean
        node's ``cached_weight``/``cached_min`` describe its subtree
        exactly, which is what lets merge passes skip subtrees that
        provably contain nothing collapsible.
    cached_weight:
        Subtree weight recorded by the last merge pass (valid iff
        ``dirty`` is false).
    cached_min:
        Minimum subtree weight over this node and all of its descendants
        recorded by the last merge pass (valid iff ``dirty`` is false).
        If it exceeds the current merge threshold, no merge can fire
        anywhere inside this subtree.
    """

    __slots__ = (
        "lo", "hi", "count", "children", "parent",
        "dirty", "cached_weight", "cached_min",
    )

    def __init__(
        self,
        lo: int,
        hi: int,
        count: int = 0,
        parent: Optional["RapNode"] = None,
    ) -> None:
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.count = count
        self.children: List[RapNode] = []
        self.parent = parent
        self.dirty = True
        self.cached_weight = 0
        self.cached_min = 0

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of items covered by this range."""
        return self.hi - self.lo + 1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_item(self) -> bool:
        """True when the range is a single item and cannot split further."""
        return self.lo == self.hi

    @property
    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        node: Optional[RapNode] = self
        depth = -1
        while node is not None:
            node = node.parent
            depth += 1
        return depth

    def covers(self, value: int) -> bool:
        """Whether ``value`` falls in this node's range."""
        return self.lo <= value <= self.hi

    def contains_range(self, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi]`` is fully inside this node's range."""
        return self.lo <= lo and hi <= self.hi

    def child_covering(self, value: int) -> Optional["RapNode"]:
        """The direct child whose range covers ``value``, if any.

        Children are sorted by ``lo`` and disjoint, so a binary search
        finds the unique candidate.
        """
        kids = self.children
        low, high = 0, len(kids) - 1
        while low <= high:
            mid = (low + high) // 2
            kid = kids[mid]
            if value < kid.lo:
                high = mid - 1
            elif value > kid.hi:
                low = mid + 1
            else:
                return kid
        return None

    # ------------------------------------------------------------------
    # Subtree aggregates
    # ------------------------------------------------------------------

    def subtree_weight(self) -> int:
        """Total count stored in this node and all of its descendants.

        This is the RAP *estimate* for the node's range: a guaranteed
        lower bound on the true number of events that fell in it
        (Section 4.3).
        """
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += node.count
            stack.extend(node.children)
        return total

    def subtree_size(self) -> int:
        """Number of nodes in this subtree, including this node."""
        size = 0
        stack = [self]
        while stack:
            node = stack.pop()
            size += 1
            stack.extend(node.children)
        return size

    def iter_subtree(self) -> Iterator["RapNode"]:
        """Pre-order iteration over this node and its descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # Reversed keeps pre-order left-to-right.
            stack.extend(reversed(node.children))

    # ------------------------------------------------------------------
    # Structure edits (used by the tree; see tree.py for the policy)
    # ------------------------------------------------------------------

    def attach_child(self, child: "RapNode") -> None:
        """Insert ``child`` keeping children sorted and disjoint."""
        if not self.contains_range(child.lo, child.hi):
            raise ValueError(
                f"child [{child.lo}, {child.hi}] outside parent "
                f"[{self.lo}, {self.hi}]"
            )
        child.parent = self
        kids = self.children
        low, high = 0, len(kids)
        while low < high:
            mid = (low + high) // 2
            if kids[mid].lo < child.lo:
                low = mid + 1
            else:
                high = mid
        if low < len(kids) and kids[low].lo <= child.hi:
            raise ValueError(
                f"child [{child.lo}, {child.hi}] overlaps existing "
                f"[{kids[low].lo}, {kids[low].hi}]"
            )
        if low > 0 and kids[low - 1].hi >= child.lo:
            raise ValueError(
                f"child [{child.lo}, {child.hi}] overlaps existing "
                f"[{kids[low - 1].lo}, {kids[low - 1].hi}]"
            )
        kids.insert(low, child)

    def detach_child(self, child: "RapNode") -> None:
        """Remove a direct child (its subtree goes with it)."""
        self.children.remove(child)
        child.parent = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RapNode([{self.lo:#x}, {self.hi:#x}], count={self.count}, "
            f"children={len(self.children)})"
        )
