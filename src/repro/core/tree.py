"""The Range Adaptive Profiling tree (Sections 2 and 3 of the paper).

``RapTree`` is the core data structure of the paper: a tree of counters
over ranges of an integer universe ``[0, R-1]``. Three operations exist:

* **update** — route an incoming event to the *smallest* existing range
  that covers it and increment that counter (Section 2.1);
* **split** — burst a counter that exceeded
  ``SplitThreshold = epsilon * n / log_b(R)`` into ``b`` children so the
  hot range is profiled more precisely (Section 2.2);
* **merge** — collapse subtrees whose cumulative weight no longer
  justifies separate counters back into their parent, in periodic batches
  whose spacing grows geometrically (Sections 2.2 and 3.1).

Counters are never decremented: RAP merges data rather than sampling or
filtering it, so every event is accounted for in *some* range, and every
range estimate is a lower bound on the truth (Section 4.3).

Hot-path engineering (see "Performance notes" in ``DESIGN.md``):

* updates remember the last-hit node (*descent cache*) and re-validate it
  before falling back to a root descent, exploiting the temporal locality
  of profiled streams;
* merge passes run an iterative post-order walk over a *dirty frontier* —
  subtrees untouched since the previous pass carry cached weight
  aggregates that let the walk skip or wholesale-collapse them without
  visiting their nodes;
* ``extend``/``add_batch`` keep per-event work in a tight local loop and
  only drop into the general ``add`` path around splits and merges.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .config import MergeScheduler, RapConfig, split_crossing_point
from .node import RapNode, partition_range
from .stats import TreeStats


class RapTree:
    """A range-adaptive profile over the universe ``[0, R-1]``.

    Examples
    --------
    >>> from repro.core import RapConfig, RapTree
    >>> tree = RapTree(RapConfig(range_max=256, epsilon=0.05))
    >>> for value in [3, 3, 3, 7, 200]:
    ...     tree.add(value)
    >>> tree.events
    5
    >>> tree.estimate(0, 255)
    5
    """

    def __init__(self, config: RapConfig) -> None:
        self._config = config
        self._root = RapNode(0, config.range_max - 1)
        self._node_count = 1
        self._events = 0
        self._scheduler = MergeScheduler(
            initial_interval=config.merge_initial_interval,
            growth=config.merge_growth,
        )
        self._stats = TreeStats(sample_every=config.timeline_sample_every)
        # Hoisted constants for the hot update path.
        self._eps_over_height = config.epsilon / config.max_height
        self._min_threshold = config.min_split_threshold
        # Debug hook: self-audit every N events (0 = off).
        self._audit_every = config.audit_every
        self._next_audit = config.audit_every
        # Descent cache: the node the previous update deposited into.
        # Invalidated by merge passes (the only operation that detaches
        # live nodes); splits keep the cached node attached, so the cache
        # survives them.
        self._cached_node: Optional[RapNode] = None
        # Mutation epoch for query-side caches (see repro.core.quantiles).
        # Bumped whenever counters or structure change.
        self._generation = 0
        # Owner confinement (see repro.runtime): when set, only the
        # owning (pid, thread) may mutate this tree. ``None`` means
        # unconfined.
        self._confined_ident: Optional[Tuple[int, int]] = None

    @classmethod
    def from_config(cls, config: RapConfig) -> "RapTree":
        """API v2 constructor: build an empty tree from a configuration.

        The blessed way to construct a tree outside :mod:`repro.core`
        (RAP-LINT011 flags direct ``RapTree(...)`` calls elsewhere); for
        a managed, shardable ingestion surface use
        :class:`repro.runtime.Profiler` instead.

        Dispatches on ``config.backend``: ``"object"`` builds this
        linked-node reference implementation, ``"columnar"`` builds the
        struct-of-arrays kernel from :mod:`repro.core.columnar`. Both
        satisfy the :class:`repro.core.backend.TreeBackend` protocol and
        are observably equivalent; the return type is annotated as
        ``RapTree`` because every caller programs against that surface.
        """
        if cls is RapTree and config.backend == "columnar":
            from .columnar import ColumnarRapTree  # lazy: numpy kernel

            return ColumnarRapTree(config)  # type: ignore[return-value]
        return cls(config)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def config(self) -> RapConfig:
        return self._config

    @property
    def root(self) -> RapNode:
        return self._root

    @property
    def events(self) -> int:
        """Total event weight processed so far (the paper's ``n``)."""
        return self._events

    @property
    def node_count(self) -> int:
        """Current number of counters (nodes) in the tree."""
        return self._node_count

    @property
    def stats(self) -> TreeStats:
        return self._stats

    @property
    def mutation_generation(self) -> int:
        """Epoch counter bumped on every mutation of the profile.

        Query-side caches (e.g. the CDF arrays in
        :mod:`repro.core.quantiles`) key on this to know when their
        derived data is stale without subscribing to tree internals.
        """
        return self._generation

    @property
    def split_threshold(self) -> float:
        """Current value of ``epsilon * n / log_b(R)`` (with floor)."""
        raw = self._eps_over_height * self._events
        return raw if raw > self._min_threshold else self._min_threshold

    def error_bound(self) -> float:
        """Worst-case undercount of any range estimate: ``epsilon * n``."""
        return self._config.epsilon * self._events

    def memory_bytes(self, bits_per_node: int = 128) -> int:
        """Current memory footprint at the paper's 128 bits/node (§4.2).

        For the object backend the model *is* the report — a linked
        Python object graph has no hardware-meaningful byte count. The
        columnar backend reports its real column allocation here
        instead; use :meth:`modeled_memory_bytes` when an analysis
        means the paper's figure regardless of backend.
        """
        return (self._node_count * bits_per_node + 7) // 8

    def modeled_memory_bytes(self, bits_per_node: int = 128) -> int:
        """The paper's memory model, identical across backends (§4.2)."""
        return (self._node_count * bits_per_node + 7) // 8

    # ------------------------------------------------------------------
    # Thread confinement and cloning (runtime hooks)
    # ------------------------------------------------------------------

    def confine_to_current_thread(self) -> None:
        """Restrict mutations to the calling thread *and process*.

        The sharded runtime gives each worker a private tree;
        confinement turns an accidental cross-owner mutation (a data
        race that would silently corrupt counters) into an immediate
        ``RuntimeError``. The owner key is ``(pid, thread ident)`` so
        the check generalizes from the threaded executor to the
        process executor: thread idents can collide across processes,
        and a fork inherits the parent's marker verbatim. Reads are not
        restricted — snapshot folds walk shard trees from the
        coordinating side while workers are quiesced.
        """
        self._confined_ident = (os.getpid(), threading.get_ident())

    def unconfine(self) -> None:
        """Lift confinement (any thread in any process may mutate)."""
        self._confined_ident = None

    def _assert_owner(self) -> None:
        owner = self._confined_ident
        if owner is None:
            return
        here = (os.getpid(), threading.get_ident())
        if owner != here:
            kind = "process" if owner[0] != here[0] else "thread"
            raise RuntimeError(
                "RapTree is confined to (pid, thread) "
                f"{owner}; mutation attempted from the wrong {kind} "
                f"{here}. Shard trees are single-writer — route events "
                "through the owning worker's queue (see repro.runtime)."
            )

    def clone(self) -> "RapTree":
        """Deep, independent copy of this profile.

        Round-trips through the serializer (which preserves structure,
        counters, merge-schedule state and the full configuration), so
        the clone continues exactly where this tree is — but shares no
        nodes with it. Used by the runtime to snapshot a single-shard
        profile without aliasing the live tree. Statistics timelines are
        not carried over; the clone starts fresh counters for
        splits/merges observed after the clone point.
        """
        from .serialize import dump_tree, load_tree  # lazy: serialize imports tree

        clone = load_tree(dump_tree(self))
        clone._generation = self._generation  # noqa: SLF001 - same class
        return clone

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``.

        The event is routed to the smallest existing range covering it
        and that counter is incremented; a split fires when the counter
        crosses the split threshold, and a batched merge fires whenever
        the schedule says one is due — including *mid-count*, so that a
        counted add is unit-for-unit identical to calling
        ``add(value)`` ``count`` times (Section 3.3's equivalence claim).

        Counted adds *cascade*: the split threshold is re-evaluated for
        every absorbed unit (unit ``m`` of the run sees
        ``threshold(events + m)``), the counter absorbs exactly up to the
        unit whose arrival crosses it, splits, and the remainder descends
        into the new child — exactly what the hardware does by flushing
        the pipeline and re-entering buffered events after a split
        (Section 3.3, stage 0). This keeps combined updates equivalent to
        one-at-a-time arrival, so buffering does not degrade the
        summarization accuracy.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        root = self._root
        if value < 0 or value > root.hi:
            raise ValueError(
                f"value {value} outside universe [0, {root.hi}]"
            )
        self._absorb(self._locate(value), value, count)
        self._generation += 1
        self._stats.observe_update()

        if self._scheduler.due(self._events):
            self.merge_now()

        if self._audit_every and self._events >= self._next_audit:
            while self._next_audit <= self._events:
                self._next_audit += self._audit_every
            self.audit()

    def _locate(self, value: int) -> RapNode:
        """Find the smallest covering node, starting from the cache.

        Walks up from the cached last-hit node to its nearest ancestor
        covering ``value`` (range nesting guarantees the global smallest
        covering node lies below that ancestor), then descends. With no
        cache this is the plain root descent.
        """
        node = self._cached_node
        if node is None:
            node = self._root
        else:
            while value < node.lo or node.hi < value:
                node = node.parent
                assert node is not None, "no covering ancestor in cache walk"
        while True:
            kids = node.children
            if not kids:
                return node
            low, high = 0, len(kids) - 1
            found = None
            while low <= high:
                mid = (low + high) // 2
                kid = kids[mid]
                if value < kid.lo:
                    high = mid - 1
                elif value > kid.hi:
                    low = mid + 1
                else:
                    found = kid
                    break
            if found is None:
                return node
            node = found

    def _absorb(self, node: RapNode, value: int, count: int) -> None:
        """Deposit ``count`` units of ``value`` starting at ``node``.

        Unit-for-unit identical to single adds: instead of looping per
        unit, closed forms give the next *split boundary* (the unit whose
        arrival pushes the counter over its own threshold — see
        :func:`repro.core.config.split_crossing_point`) and the next
        *merge boundary* (the unit that reaches the scheduler's trigger),
        and whole runs up to the nearest boundary are absorbed in one
        step. Splits and mid-count merges then fire exactly where the
        unit-by-unit loop would have fired them.
        """
        remaining = count
        events = self._events
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        scheduler = self._scheduler
        stats = self._stats
        while True:
            # Units until the merge trigger: smallest m with
            # events + m >= next_at (merges are never left overdue, but
            # guard to 1 so a stale schedule cannot wedge the loop).
            next_at = scheduler.next_at
            m_merge = int(next_at - events)
            if events + m_merge < next_at:
                m_merge += 1
            if m_merge < 1:
                m_merge = 1
            m = remaining if remaining < m_merge else m_merge

            m_split = 0
            if node.lo != node.hi:
                c0 = node.count
                # Endpoint check: (c0 + j) - threshold(j) grows with j,
                # so if unit m does not cross, no earlier unit does.
                cap_th = eps_h * (events + m)
                if cap_th < min_th:
                    cap_th = min_th
                if c0 + m > cap_th:
                    th1 = eps_h * (events + 1)
                    if th1 < min_th:
                        th1 = min_th
                    if c0 > int(th1):
                        # Counter already over threshold before absorbing
                        # anything (merge churn re-deposited weight):
                        # split without absorbing and push the whole run
                        # down to the covering child.
                        self._split(node)
                        node = node.child_covering(value)
                        assert node is not None, "split left the value uncovered"
                        continue
                    m_split = split_crossing_point(c0, events, eps_h, min_th)
                    if 0 < m_split < m:
                        m = m_split

            node.count += m
            events += m
            remaining -= m
            self._events = events
            walker: Optional[RapNode] = node
            while walker is not None and not walker.dirty:
                walker.dirty = True
                walker = walker.parent
            split_now = m_split != 0 and m == m_split
            if split_now:
                # The crossing unit always absorbs then splits: its
                # pre-arrival count is at or below int(threshold).
                self._split(node)
            stats.observe_weight(m, self._node_count)

            if events >= next_at:
                self.merge_now()
                if not remaining:
                    return
                # The merge may have collapsed our position; re-descend.
                node = self._locate(value)
            elif not remaining:
                self._cached_node = node
                return
            else:
                # A split boundary was hit with units left: descend.
                node = node.child_covering(value)
                assert node is not None, "split left the value uncovered"

    def extend(self, values: Iterable[int]) -> None:
        """Feed a stream of single events.

        Runs a tight inline loop for the common case — the event lands in
        the cached leaf, no split or merge is due — and falls back to the
        full :meth:`add` path otherwise. Observably identical to calling
        ``add`` per value; with timeline sampling or self-audits enabled
        the per-event path is used outright so those hooks see every
        event.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        stats = self._stats
        add = self.add
        if stats.sample_every > 0 or self._audit_every:
            for value in values:
                add(value)
            return
        root = self._root
        root_hi = root.hi
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        scheduler = self._scheduler
        events = self._events
        next_at = scheduler.next_at
        node_count = self._node_count
        cache = self._cached_node
        pending_events = 0
        pending_updates = 0
        try:
            for value in values:
                if 0 <= value <= root_hi:
                    # Finger search: up from the last-hit node to a
                    # covering ancestor, then the usual descent.
                    node = cache
                    if node is None:
                        node = root
                    else:
                        while value < node.lo or node.hi < value:
                            node = node.parent
                    kids = node.children
                    while kids:
                        low, high = 0, len(kids) - 1
                        found = None
                        while low <= high:
                            mid = (low + high) // 2
                            kid = kids[mid]
                            if value < kid.lo:
                                high = mid - 1
                            elif value > kid.hi:
                                low = mid + 1
                            else:
                                found = kid
                                break
                        if found is None:
                            break
                        node = found
                        kids = node.children
                    n = events + 1
                    if n < next_at:
                        if node.lo == node.hi:
                            fits = True
                        else:
                            threshold = eps_h * n
                            if threshold < min_th:
                                threshold = min_th
                            fits = node.count + 1 <= threshold
                        if fits:
                            node.count += 1
                            events = n
                            cache = node
                            pending_events += 1
                            pending_updates += 1
                            if not node.dirty:
                                walker = node
                                while walker is not None and not walker.dirty:
                                    walker.dirty = True
                                    walker = walker.parent
                            continue
                # Slow path (split or merge due, or out-of-universe value):
                # sync deferred state, take the general add, then re-sync
                # the loop-local mirrors.
                self._events = events
                self._cached_node = cache
                if pending_events:
                    stats.observe_batch(
                        pending_events, pending_updates, node_count
                    )
                    pending_events = 0
                    pending_updates = 0
                add(value)
                events = self._events
                next_at = scheduler.next_at
                node_count = self._node_count
                cache = self._cached_node
        finally:
            self._events = events
            self._cached_node = cache
            if pending_events:
                stats.observe_batch(pending_events, pending_updates, node_count)
                self._generation += 1

    def add_counted(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed pre-combined ``(value, count)`` pairs in order.

        This is the software analogue of the hardware event buffer that
        combines duplicate events before they reach the RAP engine
        (Section 3.3, stage 0). Order is preserved; runs the same inline
        fast path as :meth:`add_batch` minus the sort, so it is
        observably identical to calling :meth:`add` per pair — which
        also makes ``add_batch(pairs)`` and ``add_counted(sorted(pairs))``
        interchangeable (the spill-drain path in
        :class:`repro.runtime.queues.ShardQueue` relies on exactly
        that). For value-sorted batches prefer :meth:`add_batch`, which
        shares descents between neighbouring values.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        stats = self._stats
        add = self.add
        if stats.sample_every > 0 or self._audit_every:
            for value, count in pairs:
                add(value, count)
            return
        root = self._root
        root_hi = root.hi
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        scheduler = self._scheduler
        events = self._events
        next_at = scheduler.next_at
        node_count = self._node_count
        cache = self._cached_node
        pending_events = 0
        pending_updates = 0
        try:
            for value, count in pairs:
                if count > 0 and 0 <= value <= root_hi:
                    node = cache
                    if node is None:
                        node = root
                    else:
                        while value < node.lo or node.hi < value:
                            node = node.parent
                    kids = node.children
                    while kids:
                        low, high = 0, len(kids) - 1
                        found = None
                        while low <= high:
                            mid = (low + high) // 2
                            kid = kids[mid]
                            if value < kid.lo:
                                high = mid - 1
                            elif value > kid.hi:
                                low = mid + 1
                            else:
                                found = kid
                                break
                        if found is None:
                            break
                        node = found
                        kids = node.children
                    n = events + count
                    if n < next_at:
                        if node.lo == node.hi:
                            fits = True
                        else:
                            threshold = eps_h * n
                            if threshold < min_th:
                                threshold = min_th
                            fits = node.count + count <= threshold
                        if fits:
                            node.count += count
                            events = n
                            cache = node
                            pending_events += count
                            pending_updates += 1
                            if not node.dirty:
                                walker = node
                                while walker is not None and not walker.dirty:
                                    walker.dirty = True
                                    walker = walker.parent
                            continue
                self._events = events
                self._cached_node = cache
                if pending_events:
                    stats.observe_batch(
                        pending_events, pending_updates, node_count
                    )
                    pending_events = 0
                    pending_updates = 0
                add(value, count)
                events = self._events
                next_at = scheduler.next_at
                node_count = self._node_count
                cache = self._cached_node
        finally:
            self._events = events
            self._cached_node = cache
            if pending_events:
                stats.observe_batch(pending_events, pending_updates, node_count)
                self._generation += 1

    def add_batch(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed ``(value, count)`` pairs, sorted once and routed in runs.

        The batch kernel behind :meth:`add_stream`: pairs are sorted by
        value so consecutive updates land in the same or a neighbouring
        subtree, then each pair takes a tight inline path when it fits
        entirely in the cached leaf below every threshold — splits,
        merges and cache misses drop to the general :meth:`add` path,
        whose finger search (:meth:`_locate`) re-routes through the
        shared prefix instead of re-descending from the root. Observably
        identical to ``add_counted(sorted(pairs))``.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        items = sorted(pairs)
        stats = self._stats
        add = self.add
        if stats.sample_every > 0 or self._audit_every:
            for value, count in items:
                add(value, count)
            return
        root = self._root
        root_hi = root.hi
        eps_h = self._eps_over_height
        min_th = self._min_threshold
        scheduler = self._scheduler
        events = self._events
        next_at = scheduler.next_at
        node_count = self._node_count
        cache = self._cached_node
        pending_events = 0
        pending_updates = 0
        try:
            for value, count in items:
                if count > 0 and 0 <= value <= root_hi:
                    # Finger search from the previous pair's node: sorted
                    # order makes this a short hop through the shared
                    # prefix rather than a fresh root descent.
                    node = cache
                    if node is None:
                        node = root
                    else:
                        while value < node.lo or node.hi < value:
                            node = node.parent
                    kids = node.children
                    while kids:
                        low, high = 0, len(kids) - 1
                        found = None
                        while low <= high:
                            mid = (low + high) // 2
                            kid = kids[mid]
                            if value < kid.lo:
                                high = mid - 1
                            elif value > kid.hi:
                                low = mid + 1
                            else:
                                found = kid
                                break
                        if found is None:
                            break
                        node = found
                        kids = node.children
                    n = events + count
                    if n < next_at:
                        if node.lo == node.hi:
                            fits = True
                        else:
                            # Endpoint check: if the last unit of the run
                            # stays at or below its threshold, so does
                            # every earlier unit (the margin only shrinks
                            # as units arrive).
                            threshold = eps_h * n
                            if threshold < min_th:
                                threshold = min_th
                            fits = node.count + count <= threshold
                        if fits:
                            node.count += count
                            events = n
                            cache = node
                            pending_events += count
                            pending_updates += 1
                            if not node.dirty:
                                walker = node
                                while walker is not None and not walker.dirty:
                                    walker.dirty = True
                                    walker = walker.parent
                            continue
                self._events = events
                self._cached_node = cache
                if pending_events:
                    stats.observe_batch(
                        pending_events, pending_updates, node_count
                    )
                    pending_events = 0
                    pending_updates = 0
                add(value, count)
                events = self._events
                next_at = scheduler.next_at
                node_count = self._node_count
                cache = self._cached_node
        finally:
            self._events = events
            self._cached_node = cache
            if pending_events:
                stats.observe_batch(pending_events, pending_updates, node_count)
                self._generation += 1

    def add_stream(self, values: Iterable[int], combine_chunk: int = 0) -> None:
        """Feed a stream, optionally combining duplicates per chunk.

        With ``combine_chunk > 0`` the stream is consumed in chunks of
        that many events; duplicates within a chunk are merged into one
        counted update, mirroring the paper's software advice that "the
        input data should be buffered to some extent and duplicate values
        should be merged together" (Section 3). Each combined chunk goes
        through the :meth:`add_batch` kernel.
        """
        if combine_chunk <= 0:
            self.extend(values)
            return
        chunk: Dict[int, int] = {}
        pending = 0
        for value in values:
            chunk[value] = chunk.get(value, 0) + 1
            pending += 1
            if pending >= combine_chunk:
                self.add_batch(chunk.items())
                chunk.clear()
                pending = 0
        if chunk:
            self.add_batch(chunk.items())

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def _split(self, node: RapNode) -> None:
        """Burst ``node`` into up to ``b`` children (Section 2.2).

        The node keeps its counter; children are created with zero counts
        covering the cells of the deterministic partition of its range.
        Cells already occupied by surviving children (possible after a
        partial merge) are left alone — this is the paper's "identifying
        the new parent of the existing children" case from Section 3.3.

        The chain up to the root is marked dirty: the new zero-count
        children are trivially collapsible, so the next merge pass must
        not skip this subtree on stale cached aggregates.
        """
        existing = {(child.lo, child.hi) for child in node.children}
        created = 0
        for lo, hi in partition_range(node.lo, node.hi, self._config.branching):
            if (lo, hi) in existing:
                continue
            node.attach_child(RapNode(lo, hi, count=0))
            created += 1
        self._node_count += created
        walker: Optional[RapNode] = node
        while walker is not None and not walker.dirty:
            walker.dirty = True
            walker = walker.parent
        self._stats.observe_split()

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def merge_now(self) -> int:
        """Run one batched merge pass; returns the number of nodes removed.

        A bottom-up walk collapses every subtree whose cumulative weight
        is at most the merge threshold into its parent's counter. Because
        weights are summed into the parent (a valid super-range), no
        event is ever lost (Section 2.2, "Merge").

        The walk is iterative (no recursion limit on deep universes) and
        incremental: subtrees untouched since the previous pass carry
        cached aggregates — total subtree weight and the minimum subtree
        weight over all their nodes — so a clean subtree is either
        skipped outright (its minimum exceeds the threshold: nothing in
        it can collapse, and thresholds only grow) or collapsed wholesale
        without walking its interior. Produces exactly the tree a full
        post-order walk would.
        """
        if self._confined_ident is not None:
            self._assert_owner()
        threshold = self._config.merge_threshold(self._events)
        before = self._node_count
        visited = self._merge_frontier(threshold)
        removed = before - self._node_count
        self._stats.observe_merge_batch(removed, nodes_scanned=visited)
        self._scheduler.fired(self._events)
        self._cached_node = None
        self._generation += 1
        return removed

    def _merge_frontier(self, threshold: float) -> int:
        """Dirty-frontier post-order merge; returns nodes examined.

        Frames carry ``[node, next_child_index, weight_accumulator,
        kept_children]``; the weight accumulator starts at the node's own
        counter and collects each child's subtree weight, so on finalize
        it equals the subtree weight — at which point the node's cached
        aggregates are refreshed and it is marked clean.
        """
        root = self._root
        if not root.dirty and root.cached_min > threshold:
            return 1
        visited = 1
        frames: List[list] = [[root, 0, root.count, []]]
        while frames:
            frame = frames[-1]
            node = frame[0]
            kids = node.children
            index = frame[1]
            if index < len(kids):
                frame[1] = index + 1
                child = kids[index]
                if not child.dirty:
                    visited += 1
                    child_weight = child.cached_weight
                    if child_weight <= threshold:
                        # Unchanged subtree at or below threshold:
                        # collapse it wholesale without walking it.
                        node.count += child_weight
                        self._node_count -= child.subtree_size()
                        child.parent = None
                        frame[2] += child_weight
                        continue
                    if child.cached_min > threshold:
                        # Nothing inside can collapse; keep as is.
                        frame[2] += child_weight
                        frame[3].append(child)
                        continue
                visited += 1
                frames.append([child, 0, child.count, []])
                continue
            # All children resolved: finalize this node.
            frames.pop()
            weight = frame[2]
            kept = frame[3]
            node.children = kept
            node.cached_weight = weight
            minimum = weight
            for child in kept:
                if child.cached_min < minimum:
                    minimum = child.cached_min
            node.cached_min = minimum
            node.dirty = False
            if frames:
                parent_frame = frames[-1]
                parent_frame[2] += weight
                if weight <= threshold:
                    # By the same test every child already collapsed into
                    # this node, so it is a leaf here (kept is empty).
                    parent_frame[0].count += weight
                    node.parent = None
                    self._node_count -= 1
                else:
                    parent_frame[3].append(node)
        return visited

    @property
    def merge_scheduler(self) -> MergeScheduler:
        return self._scheduler

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def smallest_covering(self, value: int) -> RapNode:
        """The deepest node whose range covers ``value``."""
        node = self._root
        if not node.covers(value):
            raise ValueError(
                f"value {value} outside universe [0, {node.hi}]"
            )
        while True:
            child = node.child_covering(value)
            if child is None:
                return node
            node = child

    def find_node(self, lo: int, hi: int) -> Optional[RapNode]:
        """The node with exactly the range ``[lo, hi]``, if present."""
        node = self._root
        while True:
            if node.lo == lo and node.hi == hi:
                return node
            child = node.child_covering(lo)
            if child is None or child.hi < hi:
                return None
            node = child

    def estimate(self, lo: int, hi: int) -> int:
        """Lower-bound estimate of events that fell in ``[lo, hi]``.

        Sums the counters of every node whose range is fully contained in
        the query. Counts recorded on coarser ancestors are excluded,
        which is what makes the estimate a guaranteed lower bound with
        undercount at most ``epsilon * n`` (Section 2.2).
        """
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.lo > hi or node.hi < lo:
                continue
            if lo <= node.lo and node.hi <= hi:
                total += node.subtree_weight()
                continue
            stack.extend(node.children)
        return total

    def estimate_upper(self, lo: int, hi: int) -> int:
        """Upper-bound estimate: adds counters of partially covering nodes."""
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.lo > hi or node.hi < lo:
                continue
            if lo <= node.lo and node.hi <= hi:
                total += node.subtree_weight()
                continue
            total += node.count
            stack.extend(node.children)
        return total

    def nodes(self) -> Iterator[RapNode]:
        """Pre-order iteration over every node in the tree."""
        return self._root.iter_subtree()

    def leaves(self) -> Iterator[RapNode]:
        """Iteration over childless nodes."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def total_weight(self) -> int:
        """Sum of all counters; always equals :attr:`events`."""
        return self._root.subtree_weight()

    def depth(self) -> int:
        """Height of the tree (root alone has depth 0)."""
        best = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            stack.extend((child, depth + 1) for child in node.children)
        return best

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def audit(self) -> None:
        """Run the full structural auditor; raise ``AuditError`` if dirty.

        This is the ``config.audit_every`` debug hook, also callable
        directly. The heavyweight sibling of :meth:`check_invariants`:
        it additionally verifies split-threshold discipline, the merge
        schedule and the theoretical node budget (see
        :mod:`repro.checks.invariants`).
        """
        # Imported lazily: repro.checks imports this module.
        from ..checks.audit import TreeAuditor

        TreeAuditor().audit(self).raise_if_failed()

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is broken.

        Used by the test suite after randomized operation sequences:

        * children are sorted, disjoint cells of their parent's partition;
        * parent pointers are consistent;
        * all counters are non-negative and sum to ``events``;
        * the cached node count matches the actual tree size;
        * merge-frontier caches cohere: every clean node has only clean
          descendants and its cached weight/minimum describe its live
          subtree exactly.
        """
        seen = 0
        weight = 0
        order: List[RapNode] = []
        stack = [self._root]
        branching = self._config.branching
        while stack:
            node = stack.pop()
            order.append(node)
            seen += 1
            weight += node.count
            assert node.count >= 0, f"negative counter at {node!r}"
            assert node.lo <= node.hi, f"empty range at {node!r}"
            if node.children:
                cells = set(partition_range(node.lo, node.hi, branching))
                previous_hi = node.lo - 1
                for child in node.children:
                    assert child.parent is node, "broken parent pointer"
                    assert (child.lo, child.hi) in cells, (
                        f"child [{child.lo}, {child.hi}] is not a partition "
                        f"cell of [{node.lo}, {node.hi}]"
                    )
                    assert child.lo > previous_hi, "children overlap/unsorted"
                    previous_hi = child.hi
                stack.extend(node.children)
        assert seen == self._node_count, (
            f"cached node_count {self._node_count} != actual {seen}"
        )
        assert weight == self._events, (
            f"tree weight {weight} != events {self._events}"
        )
        # Merge-frontier cache coherence. ``order`` is a pre-order, so
        # reversing it visits children before parents.
        weights: Dict[int, int] = {}
        minima: Dict[int, int] = {}
        for node in reversed(order):
            subtree = node.count
            minimum: Optional[int] = None
            for child in node.children:
                subtree += weights[id(child)]
                child_min = minima[id(child)]
                if minimum is None or child_min < minimum:
                    minimum = child_min
            if minimum is None or subtree < minimum:
                minimum = subtree
            weights[id(node)] = subtree
            minima[id(node)] = minimum
            if not node.dirty:
                for child in node.children:
                    assert not child.dirty, (
                        f"clean node {node!r} has dirty child {child!r}"
                    )
                assert node.cached_weight == subtree, (
                    f"clean node {node!r} caches weight "
                    f"{node.cached_weight} != actual {subtree}"
                )
                assert node.cached_min == minimum, (
                    f"clean node {node!r} caches min {node.cached_min} "
                    f"!= actual {minimum}"
                )

    def __len__(self) -> int:
        return self._node_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RapTree(R={self._config.range_max}, "
            f"eps={self._config.epsilon}, nodes={self._node_count}, "
            f"events={self._events})"
        )
