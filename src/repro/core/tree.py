"""The Range Adaptive Profiling tree (Sections 2 and 3 of the paper).

``RapTree`` is the core data structure of the paper: a tree of counters
over ranges of an integer universe ``[0, R-1]``. Three operations exist:

* **update** — route an incoming event to the *smallest* existing range
  that covers it and increment that counter (Section 2.1);
* **split** — burst a counter that exceeded
  ``SplitThreshold = epsilon * n / log_b(R)`` into ``b`` children so the
  hot range is profiled more precisely (Section 2.2);
* **merge** — collapse subtrees whose cumulative weight no longer
  justifies separate counters back into their parent, in periodic batches
  whose spacing grows geometrically (Sections 2.2 and 3.1).

Counters are never decremented: RAP merges data rather than sampling or
filtering it, so every event is accounted for in *some* range, and every
range estimate is a lower bound on the truth (Section 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .config import MergeScheduler, RapConfig
from .node import RapNode, partition_range
from .stats import TreeStats


class RapTree:
    """A range-adaptive profile over the universe ``[0, R-1]``.

    Examples
    --------
    >>> from repro.core import RapConfig, RapTree
    >>> tree = RapTree(RapConfig(range_max=256, epsilon=0.05))
    >>> for value in [3, 3, 3, 7, 200]:
    ...     tree.add(value)
    >>> tree.events
    5
    >>> tree.estimate(0, 255)
    5
    """

    def __init__(self, config: RapConfig) -> None:
        self._config = config
        self._root = RapNode(0, config.range_max - 1)
        self._node_count = 1
        self._events = 0
        self._scheduler = MergeScheduler(
            initial_interval=config.merge_initial_interval,
            growth=config.merge_growth,
        )
        self._stats = TreeStats(sample_every=config.timeline_sample_every)
        # Hoisted constants for the hot update path.
        self._eps_over_height = config.epsilon / config.max_height
        self._min_threshold = config.min_split_threshold
        # Debug hook: self-audit every N events (0 = off).
        self._audit_every = config.audit_every
        self._next_audit = config.audit_every

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def config(self) -> RapConfig:
        return self._config

    @property
    def root(self) -> RapNode:
        return self._root

    @property
    def events(self) -> int:
        """Total event weight processed so far (the paper's ``n``)."""
        return self._events

    @property
    def node_count(self) -> int:
        """Current number of counters (nodes) in the tree."""
        return self._node_count

    @property
    def stats(self) -> TreeStats:
        return self._stats

    @property
    def split_threshold(self) -> float:
        """Current value of ``epsilon * n / log_b(R)`` (with floor)."""
        raw = self._eps_over_height * self._events
        return raw if raw > self._min_threshold else self._min_threshold

    def error_bound(self) -> float:
        """Worst-case undercount of any range estimate: ``epsilon * n``."""
        return self._config.epsilon * self._events

    def memory_bytes(self, bits_per_node: int = 128) -> int:
        """Current memory footprint at the paper's 128 bits/node (§4.2)."""
        return (self._node_count * bits_per_node + 7) // 8

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``.

        The event is routed to the smallest existing range covering it
        and that counter is incremented; a split fires when the counter
        crosses the split threshold, and a batched merge fires if the
        schedule says one is due.

        Counted adds *cascade*: when the target counter would blow past
        the threshold, it absorbs only up to the threshold, splits, and
        the remainder descends into the new child — exactly what the
        hardware does by flushing the pipeline and re-entering buffered
        events after a split (Section 3.3, stage 0). This keeps combined
        updates equivalent to one-at-a-time arrival, so buffering does
        not degrade the summarization accuracy.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        root = self._root
        if value < 0 or value > root.hi:
            raise ValueError(
                f"value {value} outside universe [0, {root.hi}]"
            )
        node = root
        while True:
            kids = node.children
            if not kids:
                break
            low, high = 0, len(kids) - 1
            found = None
            while low <= high:
                mid = (low + high) // 2
                kid = kids[mid]
                if value < kid.lo:
                    high = mid - 1
                elif value > kid.hi:
                    low = mid + 1
                else:
                    found = kid
                    break
            if found is None:
                break
            node = found
        self._events += count

        threshold = self._eps_over_height * self._events
        if threshold < self._min_threshold:
            threshold = self._min_threshold

        remaining = count
        while True:
            if node.lo == node.hi:
                node.count += remaining
                break
            if node.count + remaining > threshold:
                absorb = int(threshold) + 1 - node.count
                if absorb >= remaining:
                    node.count += remaining
                    self._split(node)
                    break
                if absorb > 0:
                    node.count += absorb
                    remaining -= absorb
                self._split(node)
                next_node = node.child_covering(value)
                assert next_node is not None, "split left the value uncovered"
                node = next_node
            else:
                node.count += remaining
                break

        self._stats.observe(count, self._node_count)

        if self._scheduler.due(self._events):
            self.merge_now()

        if self._audit_every and self._events >= self._next_audit:
            while self._next_audit <= self._events:
                self._next_audit += self._audit_every
            self.audit()

    def extend(self, values: Iterable[int]) -> None:
        """Feed a stream of single events."""
        add = self.add
        for value in values:
            add(value)

    def add_counted(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Feed pre-combined ``(value, count)`` pairs.

        This is the software analogue of the hardware event buffer that
        combines duplicate events before they reach the RAP engine
        (Section 3.3, stage 0).
        """
        add = self.add
        for value, count in pairs:
            add(value, count)

    def add_stream(self, values: Iterable[int], combine_chunk: int = 0) -> None:
        """Feed a stream, optionally combining duplicates per chunk.

        With ``combine_chunk > 0`` the stream is consumed in chunks of
        that many events; duplicates within a chunk are merged into one
        counted update, mirroring the paper's software advice that "the
        input data should be buffered to some extent and duplicate values
        should be merged together" (Section 3).
        """
        if combine_chunk <= 0:
            self.extend(values)
            return
        chunk: Dict[int, int] = {}
        pending = 0
        for value in values:
            chunk[value] = chunk.get(value, 0) + 1
            pending += 1
            if pending >= combine_chunk:
                self.add_counted(sorted(chunk.items()))
                chunk.clear()
                pending = 0
        if chunk:
            self.add_counted(sorted(chunk.items()))

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def _split(self, node: RapNode) -> None:
        """Burst ``node`` into up to ``b`` children (Section 2.2).

        The node keeps its counter; children are created with zero counts
        covering the cells of the deterministic partition of its range.
        Cells already occupied by surviving children (possible after a
        partial merge) are left alone — this is the paper's "identifying
        the new parent of the existing children" case from Section 3.3.
        """
        existing = {(child.lo, child.hi) for child in node.children}
        created = 0
        for lo, hi in partition_range(node.lo, node.hi, self._config.branching):
            if (lo, hi) in existing:
                continue
            node.attach_child(RapNode(lo, hi, count=0))
            created += 1
        self._node_count += created
        self._stats.observe_split()

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def merge_now(self) -> int:
        """Run one batched merge pass; returns the number of nodes removed.

        A bottom-up walk collapses every subtree whose cumulative weight
        is at most the merge threshold into its parent's counter. Because
        weights are summed into the parent (a valid super-range), no
        event is ever lost (Section 2.2, "Merge").
        """
        threshold = self._config.merge_threshold(self._events)
        before = self._node_count
        self._merge_subtree(self._root, threshold)
        removed = before - self._node_count
        # The walk visits every node once: scan work == pre-merge size.
        self._stats.observe_merge_batch(removed, nodes_scanned=before)
        self._scheduler.fired(self._events)
        return removed

    def _merge_subtree(self, node: RapNode, threshold: float) -> int:
        """Post-order merge walk; returns the subtree weight of ``node``.

        A child whose subtree weight is at most ``threshold`` has, by the
        same test, already had all of *its* descendants collapsed into it,
        so it is a leaf by the time it is absorbed here.
        """
        weight = node.count
        if node.children:
            kept: List[RapNode] = []
            for child in node.children:
                child_weight = self._merge_subtree(child, threshold)
                weight += child_weight
                if child_weight <= threshold:
                    node.count += child_weight
                    child.parent = None
                    self._node_count -= 1
                else:
                    kept.append(child)
            node.children = kept
        return weight

    @property
    def merge_scheduler(self) -> MergeScheduler:
        return self._scheduler

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def smallest_covering(self, value: int) -> RapNode:
        """The deepest node whose range covers ``value``."""
        node = self._root
        if not node.covers(value):
            raise ValueError(
                f"value {value} outside universe [0, {node.hi}]"
            )
        while True:
            child = node.child_covering(value)
            if child is None:
                return node
            node = child

    def find_node(self, lo: int, hi: int) -> Optional[RapNode]:
        """The node with exactly the range ``[lo, hi]``, if present."""
        node = self._root
        while True:
            if node.lo == lo and node.hi == hi:
                return node
            child = node.child_covering(lo)
            if child is None or child.hi < hi:
                return None
            node = child

    def estimate(self, lo: int, hi: int) -> int:
        """Lower-bound estimate of events that fell in ``[lo, hi]``.

        Sums the counters of every node whose range is fully contained in
        the query. Counts recorded on coarser ancestors are excluded,
        which is what makes the estimate a guaranteed lower bound with
        undercount at most ``epsilon * n`` (Section 2.2).
        """
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.lo > hi or node.hi < lo:
                continue
            if lo <= node.lo and node.hi <= hi:
                total += node.subtree_weight()
                continue
            stack.extend(node.children)
        return total

    def estimate_upper(self, lo: int, hi: int) -> int:
        """Upper-bound estimate: adds counters of partially covering nodes."""
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.lo > hi or node.hi < lo:
                continue
            if lo <= node.lo and node.hi <= hi:
                total += node.subtree_weight()
                continue
            total += node.count
            stack.extend(node.children)
        return total

    def nodes(self) -> Iterator[RapNode]:
        """Pre-order iteration over every node in the tree."""
        return self._root.iter_subtree()

    def leaves(self) -> Iterator[RapNode]:
        """Iteration over childless nodes."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def total_weight(self) -> int:
        """Sum of all counters; always equals :attr:`events`."""
        return self._root.subtree_weight()

    def depth(self) -> int:
        """Height of the tree (root alone has depth 0)."""
        best = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            stack.extend((child, depth + 1) for child in node.children)
        return best

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def audit(self) -> None:
        """Run the full structural auditor; raise ``AuditError`` if dirty.

        This is the ``config.audit_every`` debug hook, also callable
        directly. The heavyweight sibling of :meth:`check_invariants`:
        it additionally verifies split-threshold discipline, the merge
        schedule and the theoretical node budget (see
        :mod:`repro.checks.invariants`).
        """
        # Imported lazily: repro.checks imports this module.
        from ..checks.audit import TreeAuditor

        TreeAuditor().audit(self).raise_if_failed()

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is broken.

        Used by the test suite after randomized operation sequences:

        * children are sorted, disjoint cells of their parent's partition;
        * parent pointers are consistent;
        * all counters are non-negative and sum to ``events``;
        * the cached node count matches the actual tree size.
        """
        seen = 0
        weight = 0
        stack = [self._root]
        branching = self._config.branching
        while stack:
            node = stack.pop()
            seen += 1
            weight += node.count
            assert node.count >= 0, f"negative counter at {node!r}"
            assert node.lo <= node.hi, f"empty range at {node!r}"
            if node.children:
                cells = set(partition_range(node.lo, node.hi, branching))
                previous_hi = node.lo - 1
                for child in node.children:
                    assert child.parent is node, "broken parent pointer"
                    assert (child.lo, child.hi) in cells, (
                        f"child [{child.lo}, {child.hi}] is not a partition "
                        f"cell of [{node.lo}, {node.hi}]"
                    )
                    assert child.lo > previous_hi, "children overlap/unsorted"
                    previous_hi = child.hi
                stack.extend(node.children)
        assert seen == self._node_count, (
            f"cached node_count {self._node_count} != actual {seen}"
        )
        assert weight == self._events, (
            f"tree weight {weight} != events {self._events}"
        )

    def __len__(self) -> int:
        return self._node_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RapTree(R={self._config.range_max}, "
            f"eps={self._config.epsilon}, nodes={self._node_count}, "
            f"events={self._events})"
        )
