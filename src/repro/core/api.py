"""The paper's software API (Section 3.2).

The authors shipped a C++ library with three entry points —
``rap_init()``, ``rap_add_points()`` and ``rap_finalize()`` — usable both
online and for post-processing trace files, and supporting several
profiles at once. This module reproduces that surface on top of
:class:`~repro.core.tree.RapTree`, including the ASCII dump that
``rap_finalize`` produces "for further processing such as identifying
hot-spots, range coverage, phase identification, and so on".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .config import RapConfig
from .hot_ranges import DEFAULT_HOT_FRACTION, HotRange, find_hot_ranges
from .serialize import dump_tree
from .tree import RapTree


@dataclass
class RapProfile:
    """Handle returned by :func:`rap_init`: a set of named RAP trees.

    ``rap_init`` "initializes data structures to enable profiling
    multiple events simultaneously" — e.g. one tree over PCs and one over
    load values fed from the same instruction stream.
    """

    trees: Dict[str, RapTree] = field(default_factory=dict)
    finalized: bool = False

    def tree(self, name: str = "default") -> RapTree:
        try:
            return self.trees[name]
        except KeyError:
            raise KeyError(
                f"no profile named {name!r}; available: {sorted(self.trees)}"
            ) from None


def rap_init(
    range_max: Union[int, Dict[str, int]],
    epsilon: float = 0.01,
    branching: int = 4,
    **config_overrides: object,
) -> RapProfile:
    """Create a RAP profile (Section 3.2's ``rap_init``).

    Parameters
    ----------
    range_max:
        Either a single universe size (creates one profile named
        ``"default"``) or a mapping ``{profile_name: universe_size}`` to
        profile multiple event kinds simultaneously.
    epsilon, branching, config_overrides:
        Forwarded to :class:`~repro.core.config.RapConfig`.
    """
    if isinstance(range_max, int):
        universes = {"default": range_max}
    else:
        universes = dict(range_max)
        if not universes:
            raise ValueError("rap_init needs at least one profile universe")
    profile = RapProfile()
    for name, universe in universes.items():
        config = RapConfig(
            range_max=universe,
            epsilon=epsilon,
            branching=branching,
            **config_overrides,  # type: ignore[arg-type]
        )
        profile.trees[name] = RapTree(config)
    return profile


def rap_add_points(
    profile: RapProfile,
    points: Iterable[Union[int, Tuple[int, int]]],
    name: str = "default",
) -> None:
    """Feed events into one of the profile's trees.

    Accepts plain values or ``(value, count)`` pairs (the latter matching
    the combining event buffer). "rap_add_points looks up the appropriate
    counter, updates the counter, and when needed calls the internal
    functions rap_split() and rap_merge()" — splits and merges are
    internal to :class:`RapTree`.
    """
    if profile.finalized:
        raise RuntimeError("profile already finalized")
    tree = profile.tree(name)
    for point in points:
        if isinstance(point, tuple):
            value, count = point
            tree.add(value, count)
        else:
            tree.add(point)


@dataclass(frozen=True)
class RapSummary:
    """Result of :func:`rap_finalize` for one tree."""

    name: str
    events: int
    node_count: int
    max_nodes: int
    average_nodes: float
    splits: int
    merge_batches: int
    hot_ranges: List[HotRange]
    dump: str


def rap_finalize(
    profile: RapProfile,
    hot_fraction: float = DEFAULT_HOT_FRACTION,
    dump_path: Optional[str] = None,
) -> Dict[str, RapSummary]:
    """Finalize the profile and derive stream statistics (Section 3.2).

    Runs a final merge batch on every tree (so memory reflects the pruned
    state), extracts hot ranges, and produces the ASCII dump. If
    ``dump_path`` is given, each tree's dump is written to
    ``<dump_path>.<name>.rap``.
    """
    summaries: Dict[str, RapSummary] = {}
    for name, tree in profile.trees.items():
        if tree.events:
            tree.merge_now()
        dump = dump_tree(tree)
        if dump_path is not None:
            with open(f"{dump_path}.{name}.rap", "w", encoding="ascii") as fh:
                fh.write(dump)
        summaries[name] = RapSummary(
            name=name,
            events=tree.events,
            node_count=tree.node_count,
            max_nodes=tree.stats.max_nodes,
            average_nodes=tree.stats.average_nodes,
            splits=tree.stats.splits,
            merge_batches=tree.stats.merge_batches,
            hot_ranges=find_hot_ranges(tree, hot_fraction),
            dump=dump,
        )
    profile.finalized = True
    return summaries
