"""The paper's C-style software API — now a deprecation shim (API v2).

The authors shipped a C++ library with three entry points —
``rap_init()``, ``rap_add_points()`` and ``rap_finalize()`` — usable
both online and for post-processing trace files. This module keeps that
surface working, but since API v2 it is a thin shim over
:class:`repro.runtime.Profiler` (single-shard, serial executor: exactly
the old single-tree behavior) and every call emits a
``DeprecationWarning`` with a migration hint:

=========================  ============================================
v1 call                    v2 replacement
=========================  ============================================
``rap_init(R, eps)``       ``Profiler.from_config(RapConfig(R,``
                           ``epsilon=eps), executor="serial").open()``
``rap_add_points(p, xs)``  ``profiler.ingest(xs)`` /
                           ``profiler.ingest_counted(pairs)``
``rap_finalize(p)``        ``profiler.close()`` + ``profiler.metrics``
                           + ``profiler.hot_ranges()``
=========================  ============================================

The shim preserves the v1 observable contract: ``profile.trees`` /
``profile.tree(name)`` expose the live trees, finalizing runs one last
merge batch per non-empty tree, and adding after finalize raises
``RuntimeError``. One behavioral note: point batches are now
duplicate-combined and value-sorted before application (the Profiler's
batch kernel), which can change split/merge *timing* relative to v1's
strictly sequential ``add()`` loop — every count, estimate and bound is
unaffected.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

from .config import RapConfig
from .hot_ranges import DEFAULT_HOT_FRACTION, HotRange, find_hot_ranges
from .serialize import dump_tree
from .tree import RapTree

if TYPE_CHECKING:  # runtime builds on core; import only for annotations
    from ..runtime import Profiler


def _deprecated(old: str, hint: str) -> None:
    warnings.warn(
        f"{old} is deprecated; {hint} (see the API v2 migration table "
        "in README.md)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class RapProfile:
    """Handle returned by :func:`rap_init`: named single-shard Profilers.

    ``rap_init`` "initializes data structures to enable profiling
    multiple events simultaneously" — e.g. one tree over PCs and one
    over load values fed from the same instruction stream. Since API v2
    each named profile is a serial single-shard
    :class:`repro.runtime.Profiler`; :attr:`trees` exposes the live
    trees for compatibility.
    """

    profilers: Dict[str, "Profiler"] = field(default_factory=dict)
    finalized: bool = False

    @property
    def trees(self) -> Dict[str, RapTree]:
        """Live tree per profile name (v1 compatibility view)."""
        return {
            name: profiler.shard_trees()[0]
            for name, profiler in self.profilers.items()
        }

    def tree(self, name: str = "default") -> RapTree:
        try:
            profiler = self.profilers[name]
        except KeyError:
            raise KeyError(
                f"no profile named {name!r}; "
                f"available: {sorted(self.profilers)}"
            ) from None
        return profiler.shard_trees()[0]


def rap_init(
    range_max: Union[int, Dict[str, int]],
    epsilon: float = 0.01,
    branching: int = 4,
    **config_overrides: object,
) -> RapProfile:
    """Create a RAP profile (Section 3.2's ``rap_init``). Deprecated.

    Parameters
    ----------
    range_max:
        Either a single universe size (creates one profile named
        ``"default"``) or a mapping ``{profile_name: universe_size}`` to
        profile multiple event kinds simultaneously.
    epsilon, branching, config_overrides:
        Forwarded to :class:`~repro.core.config.RapConfig`.
    """
    _deprecated(
        "rap_init()",
        "use Profiler.from_config(RapConfig(range_max, epsilon=...), "
        "executor='serial').open()",
    )
    from ..runtime import Profiler  # lazy: runtime builds on core

    if isinstance(range_max, int):
        universes = {"default": range_max}
    else:
        universes = dict(range_max)
        if not universes:
            raise ValueError("rap_init needs at least one profile universe")
    profile = RapProfile()
    for name, universe in universes.items():
        config = RapConfig(
            range_max=universe,
            epsilon=epsilon,
            branching=branching,
            **config_overrides,  # type: ignore[arg-type]
        )
        profile.profilers[name] = Profiler.from_config(
            config, shards=1, executor="serial"
        ).open()
    return profile


def rap_add_points(
    profile: RapProfile,
    points: Iterable[Union[int, Tuple[int, int]]],
    name: str = "default",
) -> None:
    """Feed events into one of the profile's trees. Deprecated.

    Accepts plain values or ``(value, count)`` pairs (the latter
    matching the combining event buffer); both are routed through the
    owning Profiler's counted-ingest path.
    """
    _deprecated(
        "rap_add_points()",
        "use Profiler.ingest(values) or Profiler.ingest_counted(pairs)",
    )
    if profile.finalized:
        raise RuntimeError("profile already finalized")
    if name not in profile.profilers:
        profile.tree(name)  # raises the v1 KeyError with available names
    pairs: List[Tuple[int, int]] = []
    for point in points:
        if isinstance(point, tuple):
            value, count = point
            pairs.append((value, count))
        else:
            pairs.append((point, 1))
    profile.profilers[name].ingest_counted(pairs)


@dataclass(frozen=True)
class RapSummary:
    """Result of :func:`rap_finalize` for one tree."""

    name: str
    events: int
    node_count: int
    max_nodes: int
    average_nodes: float
    splits: int
    merge_batches: int
    hot_ranges: List[HotRange]
    dump: str


def rap_finalize(
    profile: RapProfile,
    hot_fraction: float = DEFAULT_HOT_FRACTION,
    dump_path: Optional[str] = None,
) -> Dict[str, RapSummary]:
    """Finalize the profile and derive stream statistics. Deprecated.

    Runs a final merge batch on every non-empty tree (so memory reflects
    the pruned state), closes each underlying Profiler, extracts hot
    ranges, and produces the ASCII dump. If ``dump_path`` is given, each
    tree's dump is written to ``<dump_path>.<name>.rap``.
    """
    _deprecated(
        "rap_finalize()",
        "use Profiler.close(), then Profiler.metrics / "
        "Profiler.hot_ranges() / repro.core.serialize.dump_tree()",
    )
    summaries: Dict[str, RapSummary] = {}
    for name, profiler in profile.profilers.items():
        tree = profiler.shard_trees()[0]
        if tree.events:
            tree.merge_now()
        profiler.close()
        dump = dump_tree(tree)
        if dump_path is not None:
            with open(f"{dump_path}.{name}.rap", "w", encoding="ascii") as fh:
                fh.write(dump)
        summaries[name] = RapSummary(
            name=name,
            events=tree.events,
            node_count=tree.node_count,
            max_nodes=tree.stats.max_nodes,
            average_nodes=tree.stats.average_nodes,
            splits=tree.stats.splits,
            merge_batches=tree.stats.merge_batches,
            hot_ranges=find_hot_ranges(tree, hot_fraction),
            dump=dump,
        )
    profile.finalized = True
    return summaries
