"""Bookkeeping for RAP tree runs.

The paper's evaluation tracks two memory statistics per run (Figure 7):
the *maximum* number of nodes ever held (tree size just before a merge
batch) and the *average* number of nodes over the run. Figure 6 addition-
ally plots the full node-count timeline for gcc. ``TreeStats`` records all
of these with O(1) work per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class TreeStats:
    """Counters describing one profiling run.

    Attributes
    ----------
    events:
        Total weight of events processed (counted adds add their count).
    updates:
        Number of ``add`` calls (a counted add is one update).
    splits:
        Number of split operations performed.
    merge_batches:
        Number of batched merge passes that ran.
    nodes_merged:
        Total nodes removed by merges across all batches.
    max_nodes:
        Largest node count ever observed.
    node_seconds:
        Integral of node count over events — ``node_seconds / events`` is
        the run's average tree size (the "average" bars of Figure 7).
    timeline:
        Optional ``(events, node_count)`` samples (Figure 6), recorded
        every ``sample_every`` events when ``sample_every > 0``.
    merge_points:
        Event counts at which merge batches fired (the dashed lines in
        Figure 6).
    """

    sample_every: int = 0
    events: int = 0
    updates: int = 0
    splits: int = 0
    merge_batches: int = 0
    nodes_merged: int = 0
    merge_scan_visits: int = 0
    max_nodes: int = 1
    node_seconds: float = 0.0
    timeline: List[Tuple[int, int]] = field(default_factory=list)
    merge_points: List[int] = field(default_factory=list)
    _next_sample: int = field(default=0, repr=False)

    def observe(self, events_delta: int, node_count: int) -> None:
        """Record the tree size after processing ``events_delta`` weight."""
        self.observe_weight(events_delta, node_count)
        self.updates += 1

    def observe_weight(self, events_delta: int, node_count: int) -> None:
        """Record weight without counting an update.

        The counted-add cascade flushes one of these per absorbed run so
        that ``events``/``node_seconds``/``timeline`` stay consistent at
        the moment a mid-count merge fires; the enclosing ``add`` then
        bumps ``updates`` once via :meth:`observe_update`.
        """
        self.events += events_delta
        if node_count > self.max_nodes:
            self.max_nodes = node_count
        self.node_seconds += events_delta * node_count
        if self.sample_every > 0 and self.events >= self._next_sample:
            self.timeline.append((self.events, node_count))
            self._next_sample = self.events + self.sample_every

    def observe_update(self) -> None:
        """Count one ``add`` call (a counted add is one update)."""
        self.updates += 1

    def observe_batch(
        self, events_delta: int, updates_delta: int, node_count: int
    ) -> None:
        """Flush a fast-path run: many updates at a constant tree size.

        Used by the inline ``extend``/``add_batch`` loops, which only run
        while no split or merge can fire (so ``node_count`` is constant
        across the run) and timeline sampling is off.
        """
        self.events += events_delta
        self.updates += updates_delta
        if node_count > self.max_nodes:
            self.max_nodes = node_count
        self.node_seconds += events_delta * node_count

    def observe_split(self) -> None:
        self.splits += 1

    def observe_merge_batch(self, nodes_removed: int, nodes_scanned: int) -> None:
        self.merge_batches += 1
        self.nodes_merged += nodes_removed
        self.merge_scan_visits += nodes_scanned
        self.merge_points.append(self.events)

    @property
    def average_nodes(self) -> float:
        """Time-averaged node count over the run (0 for an empty run)."""
        if self.events == 0:
            return 0.0
        return self.node_seconds / self.events

    def memory_bytes(self, bits_per_node: int = 128) -> int:
        """Peak memory in bytes at the paper's 128 bits per node (§4.2)."""
        return (self.max_nodes * bits_per_node + 7) // 8
