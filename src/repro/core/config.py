"""Configuration for Range Adaptive Profiling trees.

The paper exposes three user-facing knobs:

* ``epsilon`` — the error parameter. For any range, the estimate produced
  by RAP undercounts the true count by at most ``epsilon * n`` where ``n``
  is the number of events processed so far (Section 2.2).
* ``branching`` — the branching factor ``b`` used by split operations.
  The paper settles on ``b = 4`` as the best trade-off between memory and
  convergence speed (Section 3.1, Figure 2).
* ``merge_growth`` — the ratio ``q`` by which the interval between batched
  merges grows. The paper finds ``q = 2`` (doubling) most cost effective
  (Section 3.1, Figures 2 and 3).

Everything else here is an engineering constant that the paper leaves
implicit; defaults follow the paper's hardware implementation where one is
described (e.g. the first merge batch happens after about a thousand
events, Section 3.3).
"""

from __future__ import annotations

from dataclasses import KW_ONLY, dataclass, field, replace


@dataclass(frozen=True)
class RapConfig:
    """Immutable parameter set for a :class:`~repro.core.tree.RapTree`.

    Every field except ``range_max`` is keyword-only (the API v2
    contract): tuning knobs are named at every call site, so adding a
    knob can never silently reinterpret a positional argument.

    Parameters
    ----------
    range_max:
        Size ``R`` of the event universe. Events must be integers in
        ``[0, range_max - 1]``. The root of the RAP tree covers exactly
        this range.
    epsilon:
        Error parameter in ``(0, 1]``. Estimates undercount any range by
        at most ``epsilon * n``.
    branching:
        Branching factor ``b >= 2`` used when a node splits.
    merge_initial_interval:
        Number of events before the first batched merge.
    merge_growth:
        Factor ``q > 1`` by which the merge interval grows after every
        batch (``q = 2`` doubles it, as in the paper).
    min_split_threshold:
        Floor applied to the split threshold so that very short streams do
        not burst every counter on its first event. ``1.0`` means a node
        must count at least two events before it may split.
    timeline_sample_every:
        If positive, the tree records ``(events, node_count)`` samples
        every this many events (used to regenerate Figure 6). ``0``
        disables timeline recording.
    audit_every:
        If positive, the tree runs the full structural
        :class:`~repro.checks.audit.TreeAuditor` every this many events
        and raises :class:`~repro.checks.audit.AuditError` on the first
        violated invariant. A debug hook — it walks the whole tree, so
        keep it off (``0``, the default) outside tests and bug hunts.
    backend:
        Which tree kernel :meth:`RapTree.from_config` constructs:
        ``"object"`` (the linked ``RapNode`` graph, the reference
        implementation) or ``"columnar"`` (the struct-of-arrays kernel in
        :mod:`repro.core.columnar` with vectorized batch ingest). The two
        are observably equivalent — identical serialized trees for
        identical operation sequences — so this is purely a performance
        knob; it is construction-time only and never serialized.
    executor:
        Which runtime a :class:`~repro.runtime.profiler.Profiler` built
        from this config uses to drive its shards: ``"serial"``
        (inline on the calling thread), ``"thread"`` (one worker thread
        per shard behind bounded queues, the default) or ``"process"``
        (one worker process per shard, each owning a columnar tree in
        shared memory — requires ``backend="columnar"``). Like
        ``backend`` it selects an observably-equivalent engine, is
        construction-time only, and is never serialized.
    shards:
        How many shard trees that profiler partitions the stream
        across (``>= 1``). Construction-time only, never serialized.
    transport:
        How the process executor moves partitioned frames to its shard
        workers: ``"ring"`` (the default — binary counted frames
        through a shared-memory SPSC ring buffer per shard, zero
        pickle on the data path; see :mod:`repro.runtime.ring`) or
        ``"pipe"`` (pickle-framed ``multiprocessing`` pipes fed by
        per-shard feeder threads — the fallback when POSIX shared
        memory is unavailable, which the runtime also selects
        automatically). Ignored by the serial and thread executors,
        which move nothing between processes. Construction-time only,
        never serialized.
    debug_sanitize:
        If true, a :class:`~repro.checks.sanitizer.RapSanitizer` is
        attached to every :class:`~repro.runtime.profiler.Profiler`
        built from this config: shard trees get owner-thread
        assertions on every mutating call, shard queues get a
        happens-before log, and any confinement or lock-discipline
        violation raises immediately with the recorded event trail. A
        debug hook — it adds a per-call bookkeeping cost, so keep it
        off (the default) outside tests and race hunts. Like
        ``backend`` it is construction-time only and never serialized.
    """

    range_max: int
    _: KW_ONLY
    epsilon: float = 0.01
    branching: int = 4
    merge_initial_interval: int = 1024
    merge_growth: float = 2.0
    min_split_threshold: float = 1.0
    timeline_sample_every: int = 0
    audit_every: int = 0
    backend: str = "object"
    executor: str = "thread"
    shards: int = 1
    transport: str = "ring"
    debug_sanitize: bool = False

    def __post_init__(self) -> None:
        if self.range_max < 2:
            raise ValueError(f"range_max must be >= 2, got {self.range_max}")
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {self.epsilon}")
        if self.branching < 2:
            raise ValueError(f"branching must be >= 2, got {self.branching}")
        if self.merge_initial_interval < 1:
            raise ValueError(
                "merge_initial_interval must be >= 1, got "
                f"{self.merge_initial_interval}"
            )
        if self.merge_growth <= 1.0:
            raise ValueError(
                f"merge_growth must be > 1, got {self.merge_growth}"
            )
        if self.min_split_threshold < 0.0:
            raise ValueError(
                "min_split_threshold must be >= 0, got "
                f"{self.min_split_threshold}"
            )
        if self.timeline_sample_every < 0:
            raise ValueError(
                "timeline_sample_every must be >= 0, got "
                f"{self.timeline_sample_every}"
            )
        if self.audit_every < 0:
            raise ValueError(
                f"audit_every must be >= 0, got {self.audit_every}"
            )
        if self.backend not in ("object", "columnar"):
            raise ValueError(
                "backend must be 'object' or 'columnar', got "
                f"{self.backend!r}"
            )
        if self.executor not in ("serial", "thread", "process"):
            raise ValueError(
                "executor must be 'serial', 'thread' or 'process', got "
                f"{self.executor!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.transport not in ("ring", "pipe"):
            raise ValueError(
                f"transport must be 'ring' or 'pipe', got {self.transport!r}"
            )
        if self.executor == "process" and self.backend != "columnar":
            raise ValueError(
                "executor='process' requires backend='columnar': worker "
                "processes keep their shard trees in shared-memory column "
                "arrays, which the object backend's linked RapNode graph "
                "cannot provide. Use RapConfig(..., backend='columnar', "
                "executor='process'), or keep backend='object' with the "
                "'thread' or 'serial' executor."
            )

    @property
    def max_height(self) -> int:
        """Maximum possible height of the tree, ``ceil(log_b(R))``.

        This is the ``log(R)`` term in the paper's split threshold
        ``epsilon * n / log(R)``: the deepest chain of ranges from the
        root down to a single item.
        """
        return max_tree_height(self.range_max, self.branching)

    def split_threshold(self, events: int) -> float:
        """The paper's ``SplitThreshold = epsilon * n / log(R)``.

        Any node whose own counter exceeds this value is burst into
        ``branching`` children. The same value is used as the merge
        threshold (Section 3.3, stage 4: "the split and merge thresholds
        can be the same, hence just one computation and one register is
        sufficient").
        """
        raw = self.epsilon * events / self.max_height
        if raw < self.min_split_threshold:
            return self.min_split_threshold
        return raw

    def merge_threshold(self, events: int) -> float:
        """Merge threshold; equal to the split threshold (Section 3.3)."""
        return self.split_threshold(events)

    def with_updates(self, **changes: object) -> "RapConfig":
        """Return a copy of this configuration with fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


def split_crossing_point(
    count: int,
    events: int,
    eps_over_height: float,
    floor: float,
) -> int:
    """Smallest ``m >= 1`` whose arrival pushes a counter over threshold.

    A counter holding ``count`` at event total ``events`` receives units
    one at a time; the ``m``-th unit sees the threshold
    ``max(eps_over_height * (events + m), floor)``. This returns the
    first ``m`` with ``count + m > threshold(events + m)`` — i.e. the
    unit whose arrival makes the counter split under the one-at-a-time
    arrival semantics of Section 3.3. Both the software batch kernel and
    the hardware pipeline model use this to absorb whole runs of events
    in one step while staying unit-for-unit identical to single adds.

    Returns ``0`` when no such unit exists (``eps_over_height >= 1``:
    the threshold grows at least as fast as the counter, and a counter
    never exceeds the event total).

    The closed-form guess from the linear part is corrected by ±1 fixup
    loops evaluated against the exact float predicate, so the result
    matches what a unit-by-unit loop would compute, float rounding
    included.
    """
    if eps_over_height >= 1.0:
        return 0
    # Linear-part estimate: count + m > eps_over_height * (events + m).
    guess = int((eps_over_height * events - count) / (1.0 - eps_over_height)) + 1
    # The floor can dominate the linear term: count + m > floor too.
    floor_guess = int(floor) + 1 - count
    if floor_guess > guess:
        guess = floor_guess
    if guess < 1:
        guess = 1

    def _crosses(m: int) -> bool:
        threshold = eps_over_height * (events + m)
        if threshold < floor:
            threshold = floor
        return count + m > threshold

    while guess > 1 and _crosses(guess - 1):
        guess -= 1
    while not _crosses(guess):
        guess += 1
    return guess


def max_tree_height(range_max: int, branching: int) -> int:
    """Number of b-ary refinements needed to reach single items.

    ``ceil(log_b(range_max))``, but computed with integer arithmetic so
    that huge universes (2**64 and beyond) are exact — ``math.log`` on
    floats misrounds near power boundaries.
    """
    if range_max < 2:
        return 1
    height = 0
    reach = 1
    while reach < range_max:
        reach *= branching
        height += 1
    return height


def bits_for_range(range_max: int) -> int:
    """Number of bits needed to address the universe ``[0, range_max-1]``."""
    return max(1, (range_max - 1).bit_length())


@dataclass
class MergeScheduler:
    """Decides *when* batched merges fire (Section 3.1, Figure 3).

    Merges are performed periodically with exponentially growing spacing:
    the first batch fires once ``initial_interval`` events have been
    processed, and after every batch the trigger point is multiplied by
    ``growth`` (the paper's ``q``). The paper shows that with ``q = 2``
    profiling ``2**32`` events needs only ``32 - 10 = 22`` batches.
    """

    initial_interval: int = 1024
    growth: float = 2.0
    next_at: float = field(init=False)
    batches_fired: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.initial_interval < 1:
            raise ValueError(
                f"initial_interval must be >= 1, got {self.initial_interval}"
            )
        if self.growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")
        self.next_at = float(self.initial_interval)

    def due(self, events: int) -> bool:
        """True when a merge batch should fire at this event count."""
        return events >= self.next_at

    def fired(self, events: int) -> None:
        """Advance the schedule after a batch has been performed.

        The trigger grows geometrically; if processing jumped far past the
        trigger (large counted adds), keep multiplying so the *next*
        trigger is strictly in the future.
        """
        self.batches_fired += 1
        while self.next_at <= events:
            self.next_at *= self.growth

    def schedule_preview(self, max_events: int) -> list:
        """Trigger points strictly inside a stream of ``max_events``.

        A batch due exactly at end-of-stream never fires, which makes the
        count match the paper's arithmetic: 2**32 events with the first
        batch at 2**10 gives ``32 - 10 = 22`` batches (Section 3.3).
        """
        points = []
        at = float(self.initial_interval)
        while at < max_events:
            points.append(int(at))
            at *= self.growth
        return points
