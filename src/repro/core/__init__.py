"""Core Range Adaptive Profiling algorithm (the paper's contribution).

Public surface:

* :class:`RapConfig` / :class:`RapTree` — the adaptive profile tree with
  update, split and batched merge (Sections 2 and 3.1).
* :func:`find_hot_ranges` / :func:`hot_tree` — hot-range extraction
  (Section 4.1).
* :func:`rap_init` / :func:`rap_add_points` / :func:`rap_finalize` — the
  paper's C-style software API (Section 3.2).
* :mod:`repro.core.bounds` — worst-case memory formulas behind Figures 2
  and 3.
* :class:`MultiDimRapTree` — the multi-dimensional extension from the
  paper's conclusion.
* :class:`TreeBackend` / :class:`ColumnarRapTree` — the backend protocol
  and the struct-of-arrays kernel selected by
  ``RapConfig(backend="columnar")``; construct through
  ``RapTree.from_config`` (RAP-LINT012 flags imports of the kernel's
  module internals outside :mod:`repro.core`).
"""

from .api import RapProfile, RapSummary, rap_add_points, rap_finalize, rap_init
from .backend import TreeBackend
from .columnar import ColumnarRapTree
from .combine import combine_many, combine_trees, split_stream_profile
from .config import MergeScheduler, RapConfig, bits_for_range, max_tree_height
from .hot_ranges import (
    DEFAULT_HOT_FRACTION,
    HotRange,
    coverage_of_hot_ranges,
    find_hot_ranges,
    hot_tree,
)
from .multidim import MultiDimConfig, MultiDimNode, MultiDimRapTree
from .node import RapNode, partition_range
from .quantiles import cdf_bounds, median_bounds, quantile, quantile_bounds
from .sampled import SampledRapTree
from .serialize import dump_to_file, dump_tree, load_from_file, load_tree
from .stats import TreeStats
from .tree import RapTree

__all__ = [
    "ColumnarRapTree",
    "DEFAULT_HOT_FRACTION",
    "HotRange",
    "MergeScheduler",
    "MultiDimConfig",
    "MultiDimNode",
    "MultiDimRapTree",
    "RapConfig",
    "RapNode",
    "RapProfile",
    "RapSummary",
    "RapTree",
    "SampledRapTree",
    "TreeBackend",
    "TreeStats",
    "bits_for_range",
    "combine_many",
    "combine_trees",
    "coverage_of_hot_ranges",
    "dump_to_file",
    "dump_tree",
    "find_hot_ranges",
    "hot_tree",
    "load_from_file",
    "load_tree",
    "max_tree_height",
    "partition_range",
    "rap_add_points",
    "rap_finalize",
    "rap_init",
    "split_stream_profile",
    "cdf_bounds",
    "median_bounds",
    "quantile",
    "quantile_bounds",
]
