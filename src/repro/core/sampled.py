"""Sampling front end for RAP — the paper's proposed unification.

Section 6: "It may further be possible to unify our proposed techniques
with existing sampling based schemes to create a single general purpose
profiling system." This module implements that unification: a Bernoulli
sampler in front of a RAP tree. Only a ``rate`` fraction of events enter
the tree (cutting per-event work by ``1/rate``); estimates are scaled
back up by ``1/rate``.

The trade-off is exactly the one the paper's footnote draws ("counters
are never decremented which is why this is not a sampling scheme"):
scaled estimates are no longer one-sided lower bounds — sampling noise
is symmetric — and rare ranges can be missed entirely. The guarantees
become probabilistic: for a range with true count ``c``, the scaled
estimate concentrates within ``O(sqrt(c / rate))`` of ``c`` (binomial
deviation) plus the usual ``epsilon * n`` structural undercount.
The ablation experiment quantifies both effects.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from .config import RapConfig
from .hot_ranges import DEFAULT_HOT_FRACTION, HotRange, find_hot_ranges
from .tree import RapTree


class SampledRapTree:
    """A RAP tree fed by a seeded Bernoulli sampler.

    The public surface mirrors :class:`RapTree` where meaningful;
    estimates and hot-range weights are rescaled to the full stream.
    """

    def __init__(self, config: RapConfig, rate: float, seed: int = 0) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self._tree = RapTree(config)
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._events_seen = 0

    @property
    def tree(self) -> RapTree:
        """The underlying (sample-space) RAP tree."""
        return self._tree

    @property
    def config(self) -> RapConfig:
        return self._tree.config

    @property
    def events_seen(self) -> int:
        """Raw events offered to the sampler (the stream's ``n``)."""
        return self._events_seen

    @property
    def events_sampled(self) -> int:
        """Events that actually entered the tree."""
        return self._tree.events

    @property
    def node_count(self) -> int:
        return self._tree.node_count

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def add(self, value: int) -> None:
        self._events_seen += 1
        if self._rng.random() < self.rate:
            self._tree.add(value)

    def extend(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    def feed_array(self, values: np.ndarray) -> None:
        """Bulk path: one vectorized coin flip pass, then tree updates."""
        count = int(values.shape[0])
        if count == 0:
            return
        self._events_seen += count
        mask = self._rng.random(count) < self.rate
        picked = values[mask]
        # Preserve arrival order; combining is the tree's own business.
        for value in picked:
            self._tree.add(int(value))

    # ------------------------------------------------------------------
    # Scaled queries
    # ------------------------------------------------------------------

    def estimate(self, lo: int, hi: int) -> float:
        """Scaled estimate of true events in ``[lo, hi]``."""
        return self._tree.estimate(lo, hi) / self.rate

    def estimate_stddev(self, lo: int, hi: int) -> float:
        """One-sigma sampling noise of :meth:`estimate`.

        Binomial deviation of the scaled estimate:
        ``sqrt(c_hat * (1 - rate)) / rate`` with ``c_hat`` the sampled
        count — the structural (epsilon) undercount comes on top.
        """
        sampled = self._tree.estimate(lo, hi)
        return math.sqrt(max(0.0, sampled * (1.0 - self.rate))) / self.rate

    def hot_ranges(
        self, hot_fraction: float = DEFAULT_HOT_FRACTION
    ) -> List[HotRange]:
        """Hot ranges of the sample, weights rescaled to the full stream.

        Hot fractions are scale-free (both weight and ``n`` scale by the
        sampling rate), so the hot *set* is computed directly on the
        sample; only absolute weights need rescaling.
        """
        if self._events_seen == 0:
            return []
        scale = 1.0 / self.rate
        rescaled = []
        for item in find_hot_ranges(self._tree, hot_fraction):
            rescaled.append(
                HotRange(
                    lo=item.lo,
                    hi=item.hi,
                    weight=int(item.weight * scale),
                    fraction=item.weight / max(1, self._tree.events),
                    depth=item.depth,
                    inclusive_weight=int(item.inclusive_weight * scale),
                )
            )
        return rescaled

    def error_bound(self) -> float:
        """Structural undercount bound in full-stream units.

        ``epsilon`` applies to the *sampled* stream; scaled back up it is
        ``epsilon * n_sampled / rate ~= epsilon * n`` — sampling does not
        loosen the structural term, it adds the stochastic one.
        """
        return self.config.epsilon * self._tree.events / self.rate

    def memory_bytes(self, bits_per_node: int = 128) -> int:
        return self._tree.memory_bytes(bits_per_node)

    def modeled_memory_bytes(self, bits_per_node: int = 128) -> int:
        return self._tree.modeled_memory_bytes(bits_per_node)
