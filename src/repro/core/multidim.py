"""Multi-dimensional Range Adaptive Profiling.

The paper's conclusion sketches this extension: "The applicability of RAP
can be further extended with multi-dimensional profiling which allows
adaptive ranges over two or more variables. With this extension it is
possible to handle edge profiles, data-code correlation studies, and
general tuple space profiles."

This module implements that extension for any dimensionality ``d``:
nodes cover axis-aligned boxes of the product universe
``[0, R_1) x ... x [0, R_d)``; a split bursts a box into the cross
product of per-dimension partitions (``b^d`` cells for ``b``-ary splits,
the quadtree layout of the Hershberger et al. adaptive spatial
partitioning work the paper builds on); the split threshold uses the sum
of the per-dimension heights as its ``log(R)`` term; merges batch exactly
as in one dimension.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .config import MergeScheduler, max_tree_height
from .node import partition_range

Point = Tuple[int, ...]
Box = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class MultiDimConfig:
    """Parameters for a :class:`MultiDimRapTree`.

    ``range_maxes`` holds one universe size per dimension; ``epsilon``,
    ``branching`` and the merge schedule mean the same as in
    :class:`~repro.core.config.RapConfig`.
    """

    range_maxes: Tuple[int, ...]
    epsilon: float = 0.01
    branching: int = 4
    merge_initial_interval: int = 1024
    merge_growth: float = 2.0
    min_split_threshold: float = 1.0
    audit_every: int = 0

    def __post_init__(self) -> None:
        if not self.range_maxes:
            raise ValueError("need at least one dimension")
        for size in self.range_maxes:
            if size < 2:
                raise ValueError(f"every dimension needs size >= 2, got {size}")
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {self.epsilon}")
        if self.branching < 2:
            raise ValueError(f"branching must be >= 2, got {self.branching}")
        if self.merge_growth <= 1.0:
            raise ValueError(f"merge_growth must be > 1, got {self.merge_growth}")
        if self.audit_every < 0:
            raise ValueError(
                f"audit_every must be >= 0, got {self.audit_every}"
            )

    @property
    def dimensions(self) -> int:
        return len(self.range_maxes)

    @property
    def max_height(self) -> int:
        """Sum of per-dimension heights: the ``log(R)`` of the threshold.

        A root-to-point chain refines every dimension down to width one,
        so its length is at most the sum of the per-dimension depths.
        """
        return sum(
            max_tree_height(size, self.branching) for size in self.range_maxes
        )

    def split_threshold(self, events: int) -> float:
        raw = self.epsilon * events / self.max_height
        return raw if raw > self.min_split_threshold else self.min_split_threshold


class MultiDimNode:
    """A box-shaped counter in the multi-dimensional RAP tree."""

    __slots__ = ("box", "count", "children", "parent")

    def __init__(
        self,
        box: Box,
        count: int = 0,
        parent: Optional["MultiDimNode"] = None,
    ) -> None:
        for lo, hi in box:
            if lo > hi:
                raise ValueError(f"empty box side [{lo}, {hi}]")
        self.box = box
        self.count = count
        self.children: List[MultiDimNode] = []
        self.parent = parent

    @property
    def is_point(self) -> bool:
        """True when every side has width one (cannot split further)."""
        return all(lo == hi for lo, hi in self.box)

    @property
    def volume(self) -> int:
        product = 1
        for lo, hi in self.box:
            product *= hi - lo + 1
        return product

    def covers(self, point: Point) -> bool:
        return all(lo <= x <= hi for x, (lo, hi) in zip(point, self.box))

    def contains_box(self, box: Box) -> bool:
        return all(
            self_lo <= lo and hi <= self_hi
            for (self_lo, self_hi), (lo, hi) in zip(self.box, box)
        )

    def child_covering(self, point: Point) -> Optional["MultiDimNode"]:
        for child in self.children:
            if child.covers(point):
                return child
        return None

    def subtree_weight(self) -> int:
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += node.count
            stack.extend(node.children)
        return total

    def iter_subtree(self) -> Iterator["MultiDimNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sides = " x ".join(f"[{lo}, {hi}]" for lo, hi in self.box)
        return f"MultiDimNode({sides}, count={self.count})"


def partition_box(box: Box, branching: int) -> List[Box]:
    """All cells of the b-ary grid partition of ``box``.

    Dimensions already at width one are left unsplit, so a box never
    produces more cells than it has points.
    """
    per_dimension: List[List[Tuple[int, int]]] = []
    splittable = False
    for lo, hi in box:
        if lo == hi:
            per_dimension.append([(lo, hi)])
        else:
            per_dimension.append(partition_range(lo, hi, branching))
            splittable = True
    if not splittable:
        raise ValueError(f"cannot partition a single point box {box}")
    return [tuple(cells) for cells in itertools.product(*per_dimension)]


class MultiDimRapTree:
    """Range adaptive profiling over tuples (the paper's future work).

    The public surface mirrors :class:`~repro.core.tree.RapTree`:
    ``add``, ``extend``, ``estimate``, ``merge_now``, ``hot_boxes``.

    Examples
    --------
    >>> tree = MultiDimRapTree(MultiDimConfig(range_maxes=(256, 256)))
    >>> tree.add((10, 20))
    >>> tree.events
    1
    """

    def __init__(self, config: MultiDimConfig) -> None:
        self._config = config
        root_box = tuple((0, size - 1) for size in config.range_maxes)
        self._root = MultiDimNode(root_box)
        self._node_count = 1
        self._events = 0
        self._scheduler = MergeScheduler(
            initial_interval=config.merge_initial_interval,
            growth=config.merge_growth,
        )
        self._splits = 0
        self._merge_batches = 0
        self._max_nodes = 1
        self._audit_every = config.audit_every
        self._next_audit = config.audit_every

    @property
    def config(self) -> MultiDimConfig:
        return self._config

    @property
    def root(self) -> MultiDimNode:
        return self._root

    @property
    def events(self) -> int:
        return self._events

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def max_nodes(self) -> int:
        return self._max_nodes

    @property
    def splits(self) -> int:
        return self._splits

    @property
    def merge_batches(self) -> int:
        return self._merge_batches

    def add(self, point: Sequence[int], count: int = 1) -> None:
        """Record ``count`` occurrences of the tuple ``point``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        point = tuple(point)
        if len(point) != self._config.dimensions:
            raise ValueError(
                f"point has {len(point)} coordinates, tree has "
                f"{self._config.dimensions} dimensions"
            )
        if not self._root.covers(point):
            raise ValueError(f"point {point} outside universe")
        node = self._root
        while True:
            child = node.child_covering(point)
            if child is None:
                break
            node = child
        node.count += count
        self._events += count

        if (
            node.count > self._config.split_threshold(self._events)
            and not node.is_point
        ):
            self._split(node)

        if self._node_count > self._max_nodes:
            self._max_nodes = self._node_count

        if self._scheduler.due(self._events):
            self.merge_now()

        if self._audit_every and self._events >= self._next_audit:
            while self._next_audit <= self._events:
                self._next_audit += self._audit_every
            self.audit()

    def audit(self) -> None:
        """Structural self-audit; raises ``AuditError`` on violations."""
        # Imported lazily: repro.checks imports this module.
        from ..checks.audit import TreeAuditor

        TreeAuditor().audit(self).raise_if_failed()

    @property
    def merge_scheduler(self) -> MergeScheduler:
        return self._scheduler

    def extend(self, points: Iterable[Sequence[int]]) -> None:
        for point in points:
            self.add(point)

    def _split(self, node: MultiDimNode) -> None:
        existing = {child.box for child in node.children}
        created = 0
        for box in partition_box(node.box, self._config.branching):
            if box in existing:
                continue
            child = MultiDimNode(box, parent=node)
            node.children.append(child)
            created += 1
        self._node_count += created
        self._splits += 1

    def merge_now(self) -> int:
        """Run one batched merge pass; returns nodes removed."""
        threshold = self._config.split_threshold(self._events)
        before = self._node_count
        self._merge_subtree(self._root, threshold)
        self._merge_batches += 1
        self._scheduler.fired(self._events)
        return before - self._node_count

    def _merge_subtree(self, node: MultiDimNode, threshold: float) -> int:
        weight = node.count
        if node.children:
            kept: List[MultiDimNode] = []
            for child in node.children:
                child_weight = self._merge_subtree(child, threshold)
                weight += child_weight
                if child_weight <= threshold:
                    node.count += child_weight
                    child.parent = None
                    self._node_count -= 1
                else:
                    kept.append(child)
            node.children = kept
        return weight

    def estimate(self, box: Box) -> int:
        """Lower-bound estimate of events inside ``box``."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if _disjoint(node.box, box):
                continue
            if _contains(box, node.box):
                total += node.subtree_weight()
                continue
            stack.extend(node.children)
        return total

    def hot_boxes(self, hot_fraction: float = 0.10) -> List[Tuple[Box, int]]:
        """Hot boxes with their exclusive weights, heaviest first.

        Same semantics as the one-dimensional hot ranges: a box is hot if
        its own weight plus all non-hot sub-boxes reaches the cutoff.
        """
        if self._events == 0:
            return []
        cutoff = hot_fraction * self._events
        found: List[Tuple[Box, int]] = []

        def walk(node: MultiDimNode) -> int:
            exclusive = node.count
            for child in node.children:
                child_exclusive = walk(child)
                if child_exclusive < cutoff:
                    exclusive += child_exclusive
            if exclusive >= cutoff:
                found.append((node.box, exclusive))
            return exclusive

        walk(self._root)
        found.sort(key=lambda item: item[1], reverse=True)
        return found

    def total_weight(self) -> int:
        return self._root.subtree_weight()

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on structural inconsistency."""
        seen = 0
        weight = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            seen += 1
            weight += node.count
            assert node.count >= 0
            for child in node.children:
                assert child.parent is node
                assert node.contains_box(child.box)
            for first, second in itertools.combinations(node.children, 2):
                assert _disjoint(first.box, second.box), (
                    f"overlapping children {first.box} and {second.box}"
                )
            stack.extend(node.children)
        assert seen == self._node_count
        assert weight == self._events


def _disjoint(first: Box, second: Box) -> bool:
    return any(
        a_hi < b_lo or b_hi < a_lo
        for (a_lo, a_hi), (b_lo, b_hi) in zip(first, second)
    )


def _contains(outer: Box, inner: Box) -> bool:
    return all(
        o_lo <= i_lo and i_hi <= o_hi
        for (o_lo, o_hi), (i_lo, i_hi) in zip(outer, inner)
    )
