"""The shared contract between interchangeable tree kernels.

``RapConfig(backend=...)`` selects which kernel
:meth:`repro.core.tree.RapTree.from_config` constructs. Every backend —
the linked ``RapNode`` object graph in :mod:`repro.core.tree` and the
struct-of-arrays kernel in :mod:`repro.core.columnar` — implements the
:class:`TreeBackend` protocol below, and the rest of the system
(serialization v2, :func:`repro.core.combine.combine_many`, the
:class:`repro.checks.audit.TreeAuditor`, the :mod:`repro.runtime`
Profiler shards) talks only to this surface.

The contract is *observational equivalence*, not shared code: for the
same operation sequence every backend must produce the identical
serialized tree (``dump_tree``), the identical estimates, and the same
merge-schedule state. ``tests/core/test_columnar_equivalence.py`` sweeps
this property; ``tests/core/test_tree_fastpath.py`` pins the reference
semantics that both backends must reproduce.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Tuple, runtime_checkable

from .config import MergeScheduler, RapConfig
from .node import RapNode
from .stats import TreeStats


@runtime_checkable
class TreeBackend(Protocol):
    """Structural protocol every RAP tree kernel implements.

    Mirrors the public mutating/query surface of
    :class:`repro.core.tree.RapTree`. ``root``/``nodes()``/``leaves()``
    expose the profile as linked :class:`~repro.core.node.RapNode`
    objects — a backend that does not store the tree that way (the
    columnar kernel) materializes an equivalent read-only view, so
    serializers, auditors and folds walk every backend identically.
    """

    # -- identity ------------------------------------------------------
    @property
    def config(self) -> RapConfig: ...

    @property
    def root(self) -> RapNode: ...

    @property
    def events(self) -> int: ...

    @property
    def node_count(self) -> int: ...

    @property
    def stats(self) -> TreeStats: ...

    @property
    def mutation_generation(self) -> int: ...

    @property
    def merge_scheduler(self) -> MergeScheduler: ...

    # -- updates -------------------------------------------------------
    def add(self, value: int, count: int = 1) -> None: ...

    def extend(self, values: Iterable[int]) -> None: ...

    def add_counted(self, pairs: Iterable[Tuple[int, int]]) -> None: ...

    def add_batch(self, pairs: Iterable[Tuple[int, int]]) -> None: ...

    def merge_now(self) -> int: ...

    # -- queries -------------------------------------------------------
    def estimate(self, lo: int, hi: int) -> int: ...

    def estimate_upper(self, lo: int, hi: int) -> int: ...

    def nodes(self) -> Iterator[RapNode]: ...

    def leaves(self) -> Iterator[RapNode]: ...

    def total_weight(self) -> int: ...

    def memory_bytes(self, bits_per_node: int = 128) -> int:
        """Bytes this backend actually holds for the profile.

        Backend-specific by design: the object backend reports the
        paper's per-node model (its Python objects have no meaningful
        hardware analogue), the columnar backend reports real column
        allocation including free-list slack. Cross-backend analyses
        that mean the *paper's* figure must use
        :meth:`modeled_memory_bytes`, which is identical everywhere.
        """
        ...

    def modeled_memory_bytes(self, bits_per_node: int = 128) -> int:
        """The paper's memory model: ``node_count`` × 128 bits (§4.2).

        Identical on every backend — this is what figure 7 and the
        accuracy/memory trade-off analyses plot.
        """
        ...

    # -- runtime hooks -------------------------------------------------
    def clone(self) -> "TreeBackend": ...

    def confine_to_current_thread(self) -> None: ...

    def unconfine(self) -> None: ...

    # -- validation ----------------------------------------------------
    def audit(self) -> None: ...

    def check_invariants(self) -> None: ...
