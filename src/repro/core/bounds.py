"""Worst-case memory bounds for RAP trees (Sections 2.2 and 3.1).

The paper states that a tree built with
``SplitThreshold = epsilon * n / log(R)`` needs at most ``O(log(R) /
epsilon)`` nodes, and uses two engineering plots derived from the bound:

* **Figure 2** — worst-case node count versus branching factor ``b``
  (they pick ``b = 4``) and a memory/cost curve versus the merge-interval
  growth ratio ``q`` (they pick ``q = 2``).
* **Figure 3** — the sawtooth of the worst-case node count over the
  stream when merges are batched with exponentially growing spacing.

The paper does not print its constant factors, so the formulas here are
reconstructed from first principles; the derivations are in the
docstrings, and the experiment suite checks the *shapes* the paper
reports (a sweet spot at small ``b``, minimum cost at ``q = 2``, constant
post-merge bound, logarithmic growth between merges).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from .config import max_tree_height


def height(range_max: int, branching: int) -> int:
    """Maximum tree height ``ceil(log_b(R))`` (re-exported for symmetry)."""
    return max_tree_height(range_max, branching)


def heavy_nodes_bound(epsilon: float, range_max: int, branching: int) -> float:
    """Maximum number of nodes whose subtree outweighs the split threshold.

    Counters sum to ``n`` and the threshold is ``epsilon * n / H`` with
    ``H = log_b(R)``; on each of the ``H`` levels of the tree at most
    ``n / threshold = H / epsilon`` *disjoint* subtrees can carry that
    much weight, but summed across a root-to-leaf nesting the standard
    charging argument gives ``H / epsilon`` heavy nodes overall.
    """
    h = height(range_max, branching)
    return h / epsilon


def post_merge_nodes_bound(
    epsilon: float, range_max: int, branching: int
) -> float:
    """Worst-case tree size immediately after a merge batch.

    A merge keeps a node only if its subtree weight exceeds the
    threshold, i.e. only heavy nodes survive — plus each survivor may
    retain up to ``b`` children created by its own split. Hence at most
    ``(1 + b) * H / epsilon`` nodes remain.
    """
    return (1 + branching) * heavy_nodes_bound(epsilon, range_max, branching)


def growth_between_merges(
    epsilon: float, range_max: int, branching: int, growth: float
) -> float:
    """Extra nodes the tree can gain between consecutive merge batches.

    Between a merge at ``n`` events and the next at ``q * n`` events,
    ``(q - 1) * n`` new events arrive and every split consumes at least
    ``epsilon * n / H`` counter weight, so at most
    ``(q - 1) * H / epsilon`` splits fire, each adding up to ``b`` nodes:
    ``b * (q - 1) * H / epsilon`` extra nodes. Crucially this is
    *independent of n* — which is why exponentially spaced batches keep
    the worst case bounded forever (Figure 3).
    """
    h = height(range_max, branching)
    return branching * (growth - 1.0) * h / epsilon


def peak_nodes_bound(
    epsilon: float,
    range_max: int,
    branching: int,
    growth: float = 2.0,
) -> float:
    """Worst-case tree size just *before* a merge batch fires.

    Post-merge bound plus the growth possible within one interval. This
    is the flat ceiling that the sawtooth of Figure 3 touches.
    """
    return post_merge_nodes_bound(
        epsilon, range_max, branching
    ) + growth_between_merges(epsilon, range_max, branching, growth)


def convergence_splits(range_max: int, branching: int) -> int:
    """Splits needed before a single hot item is profiled individually.

    "If one particular value in a range is accounting for 100% of the
    profile data seen, it will take exactly log_b(R) splits to finally
    start profiling this item individually" (Section 3.1). Small ``b``
    converges slowly; large ``b`` wastes memory — the Figure 2 trade-off.
    """
    return height(range_max, branching)


def branching_tradeoff(
    epsilon: float,
    range_max: int,
    branchings: List[int],
    growth: float = 2.0,
) -> List[Tuple[int, float, int]]:
    """The Figure 2 lower curve: ``(b, worst-case nodes, height)`` rows.

    As ``b`` grows the height ``log_b(R)`` shrinks (faster convergence,
    smaller threshold denominator) but every split creates ``b`` children
    so memory grows; the product ``b / log(b)`` shape puts the minimum at
    small ``b``, with ``b = 4`` nearly as cheap as the minimum while
    halving the height compared to ``b = 2`` — the paper's pick.
    """
    rows = []
    for b in branchings:
        rows.append(
            (
                b,
                peak_nodes_bound(epsilon, range_max, b, growth),
                height(range_max, b),
            )
        )
    return rows


@dataclass(frozen=True)
class MergeCost:
    """Cost components of a merge-interval growth choice ``q`` (Figure 2).

    Attributes
    ----------
    growth:
        The ``q`` under evaluation.
    peak_nodes:
        Worst-case memory (nodes) just before a merge.
    merge_batches:
        Number of merge batches over a stream of ``stream_events``.
    scan_work:
        Total node visits spent scanning for merge candidates across the
        run (each batch walks the whole tree).
    amortized_scan_per_event:
        ``scan_work / stream_events`` — the per-event merge overhead,
        which explodes as ``q`` approaches 1 (continuous merging) and is
        why batches must at least roughly double the interval.
    """

    growth: float
    peak_nodes: float
    merge_batches: int
    scan_work: float
    amortized_scan_per_event: float


def merge_interval_tradeoff(
    epsilon: float,
    range_max: int,
    branching: int,
    growths: List[float],
    stream_events: int = 2**32,
    initial_interval: int = 1024,
) -> List[MergeCost]:
    """The Figure 2 upper curve: memory requirement per ratio ``q``.

    Peak memory grows monotonically with ``q`` (bigger intervals let the
    tree balloon further before pruning), so among practical ratios
    ``q >= 2`` the memory requirement is least at ``q = 2`` — the paper's
    conclusion ("with q = 2 we see that the memory size is the least").
    Ratios below 2 are impractical because the number of batches, hence
    the total merge scan work, grows like ``1 / ln(q)``; the returned
    rows expose both components so the trade-off is visible.
    """
    rows = []
    for q in growths:
        if q <= 1.0:
            raise ValueError(f"growth ratios must be > 1, got {q}")
        peak = peak_nodes_bound(epsilon, range_max, branching, q)
        batches = max(
            1,
            int(math.ceil(math.log(stream_events / initial_interval, q))),
        )
        scan = batches * peak
        rows.append(
            MergeCost(
                growth=q,
                peak_nodes=peak,
                merge_batches=batches,
                scan_work=scan,
                amortized_scan_per_event=scan / stream_events,
            )
        )
    return rows


def sawtooth_bound(
    epsilon: float,
    range_max: int,
    branching: int,
    growth: float,
    initial_interval: int,
    stream_events: int,
    points_per_interval: int = 8,
) -> List[Tuple[int, float]]:
    """The Figure 3 series: worst-case nodes versus events processed.

    Starts from the post-merge bound, grows logarithmically within each
    interval (splits get geometrically more expensive as ``n`` rises),
    and snaps back to the post-merge bound at each batch.
    """
    base = post_merge_nodes_bound(epsilon, range_max, branching)
    h = height(range_max, branching)
    series: List[Tuple[int, float]] = [(0, base)]
    interval_start = 1
    interval_end = initial_interval
    while interval_start < stream_events:
        end = min(interval_end, stream_events)
        for step in range(1, points_per_interval + 1):
            n = interval_start + (end - interval_start) * step // points_per_interval
            if n <= interval_start:
                continue
            # Splits since the interval began: sum over events of
            # 1/threshold(n) ~ (H / epsilon) * ln(n / start) — but never
            # more than one split per event (the threshold floor), which
            # caps the early intervals where the log ratio is huge.
            splits = min(
                (h / epsilon) * math.log(n / interval_start),
                float(n - interval_start),
            )
            series.append((n, base + branching * splits))
        series.append((end, base))  # merge snaps the bound back down
        interval_start = end
        interval_end = int(interval_end * growth)
        if interval_end <= interval_start:
            interval_end = interval_start + 1
    return series


def memory_bytes_bound(
    epsilon: float,
    range_max: int,
    branching: int,
    growth: float = 2.0,
    bits_per_node: int = 128,
) -> float:
    """Worst-case bytes of profile memory (128 bits per node, §4.2)."""
    return peak_nodes_bound(epsilon, range_max, branching, growth) * (
        bits_per_node / 8.0
    )
