"""Combining RAP trees: merge profiles from separate runs or windows.

The paper's software API is built for post-processing ("can either be
called from online analysis or to post process trace files", Section
3.2); combining summaries is the natural companion operation — profile
shards of a long run (or different cores / trace files) independently,
then merge the trees into one summary whose guarantees still hold:

* the combined estimate for a range is at least the sum of the shard
  estimates (weight only ever moves to *finer* placement, never coarser),
  so it remains a lower bound on the true combined count;
* the undercount of the combined tree is at most the sum of the shards'
  undercounts, i.e. at most ``epsilon * (n1 + ... + nk)`` when all
  shards ran with the same epsilon. Mismatched epsilons silently void
  this guarantee, so they are rejected unless explicitly allowed — in
  which case the result's config records the *largest* shard epsilon,
  the only value for which the combined bound still holds;
* memory is re-pruned with a final merge batch, so the result obeys the
  same worst-case bound.

The construction walks each shard once and adds each node's *own* count
into a single accumulator tree at the finest existing-or-creatable
position: counts recorded for range ``[lo, hi]`` are added at the node
for ``[lo, hi]`` itself (created on demand along the deterministic
partition path, so structure stays valid). One accumulator for all
shards keeps ``combine_many`` linear in total shard size — the old
pairwise fold re-copied the whole accumulated tree per shard, going
quadratic in the number of shards.
"""

from __future__ import annotations

from typing import Iterable, List

from .config import RapConfig
from .node import RapNode, partition_range
from .tree import RapTree


def combine_trees(
    first: RapTree,
    second: RapTree,
    *,
    allow_mismatched_epsilon: bool = False,
) -> RapTree:
    """Merge two RAP profiles over the same universe into a new tree.

    Both trees must share ``range_max`` and ``branching`` (so their
    range systems are identical) and ``epsilon`` (so the combined
    ``epsilon * (n1 + n2)`` undercount bound is meaningful). Pass
    ``allow_mismatched_epsilon=True`` to combine shards profiled at
    different precision; the result's config then records the larger
    epsilon, for which the combined bound still holds. The result ends
    with a merge batch to restore the memory bound.
    """
    return combine_many(
        [first, second], allow_mismatched_epsilon=allow_mismatched_epsilon
    )


def combine_many(
    trees: Iterable[RapTree],
    *,
    allow_mismatched_epsilon: bool = False,
) -> RapTree:
    """Merge any number of shard profiles into a single accumulator tree.

    Every shard is walked exactly once and deposited into one fresh
    accumulator — linear in total shard size, unlike a pairwise
    :func:`combine_trees` fold. A single tree is returned as-is (callers
    that must not alias the input — e.g. runtime snapshots — should
    :meth:`~repro.core.tree.RapTree.clone` it).

    Error bound: each shard ``i`` undercounts any range by at most
    ``epsilon_i * n_i``, and the fold deposits every shard counter at
    its exact range, so the combined tree undercounts by at most the sum
    ``sum_i(epsilon_i * n_i)``. With equal epsilons that is the familiar
    ``epsilon * (n_1 + ... + n_k)``; with ``allow_mismatched_epsilon=True``
    the result's config records ``max_i(epsilon_i)``, the smallest
    single epsilon for which the bound still reads ``epsilon * n``.
    """
    trees = list(trees)
    if not trees:
        raise ValueError("combine_many needs at least one tree")
    if len(trees) == 1:
        return trees[0]
    first = trees[0]
    for other in trees[1:]:
        _check_compatible(
            first, other, allow_mismatched_epsilon=allow_mismatched_epsilon
        )
    config = first.config
    max_epsilon = max(tree.config.epsilon for tree in trees)
    if max_epsilon != config.epsilon:
        config = config.with_updates(epsilon=max_epsilon)
    combined = RapTree(config)
    total_events = 0
    for source in trees:
        total_events += source.events
        for node in source.nodes():
            if node.count:
                _add_at_range(combined, node.lo, node.hi, node.count)
    combined._events = total_events  # noqa: SLF001 - fold owns the new tree
    if combined.events:
        combined.merge_now()
        combined.check_invariants()
    return combined


def _check_compatible(
    first: RapTree,
    second: RapTree,
    *,
    allow_mismatched_epsilon: bool = False,
) -> None:
    if first.config.range_max != second.config.range_max:
        raise ValueError(
            "cannot combine trees over different universes: "
            f"{first.config.range_max} vs {second.config.range_max}"
        )
    if first.config.branching != second.config.branching:
        raise ValueError(
            "cannot combine trees with different branching factors: "
            f"{first.config.branching} vs {second.config.branching}"
        )
    if (
        first.config.epsilon != second.config.epsilon
        and not allow_mismatched_epsilon
    ):
        raise ValueError(
            "cannot combine trees with different epsilon "
            f"({first.config.epsilon} vs {second.config.epsilon}): the "
            "epsilon * (n1 + n2) undercount guarantee would be silently "
            "voided; pass allow_mismatched_epsilon=True to combine at "
            "the larger epsilon's guarantee"
        )


def _add_at_range(tree: RapTree, lo: int, hi: int, count: int) -> None:
    """Add ``count`` onto the node for exactly ``[lo, hi]``.

    Descends the deterministic partition from the root, materializing
    the (at most ``log_b R``) missing siblings along the way; raises if
    ``[lo, hi]`` is not a valid partition range of the universe (it
    always is when the source is a compatible RAP tree).
    """
    node = tree.root
    branching = tree.config.branching
    created = 0
    while not (node.lo == lo and node.hi == hi):
        if node.is_leaf:
            for cell in partition_range(node.lo, node.hi, branching):
                node.attach_child(RapNode(cell[0], cell[1]))
                created += 1
        child = node.child_covering(lo)
        if child is None or child.hi < hi:
            # The target straddles a gap left by an earlier merge in the
            # destination: materialize this node's partition cells too.
            cells = partition_range(node.lo, node.hi, branching)
            existing = {(kid.lo, kid.hi) for kid in node.children}
            for cell in cells:
                if cell not in existing:
                    node.attach_child(RapNode(cell[0], cell[1]))
                    created += 1
            child = node.child_covering(lo)
            if child is None or child.hi < hi:
                raise ValueError(
                    f"[{lo}, {hi}] is not a partition range of this universe"
                )
        node = child
    # Combination deposits a source tree's range weight wholesale; the
    # destination re-establishes conservation once every range lands.
    node.count += count  # noqa: RAP-LINT003 - fold re-establishes conservation
    tree._node_count += created  # noqa: SLF001 - fold owns the new tree
    tree._generation += 1  # noqa: SLF001 - fold owns the new tree


def split_stream_profile(
    config: RapConfig,
    shards: List[List[int]],
    *,
    allow_mismatched_epsilon: bool = False,
) -> RapTree:
    """Convenience: profile each shard separately, then combine.

    Models the distributed deployment (one profiler per core or per
    trace file segment) and is what the combination tests exercise
    against a single-pass reference. All shards profile at the same
    ``config`` here, so ``allow_mismatched_epsilon`` only matters when a
    caller relaxes the fold after re-configuring shards; it is threaded
    through to :func:`combine_many` unchanged.
    """
    trees = []
    for shard in shards:
        tree = RapTree(config)
        tree.extend(shard)
        trees.append(tree)
    return combine_many(
        trees, allow_mismatched_epsilon=allow_mismatched_epsilon
    )
