"""Approximate quantiles from a RAP profile.

A hierarchical range summary answers more than hot-range queries: since
every counter is attached to a known range, the cumulative distribution
``F(v) = #events <= v`` is bracketed for every ``v``:

* ``L(v)`` — counts of nodes whose range ends at or below ``v`` — is a
  guaranteed lower bound;
* ``U(v)`` — counts of nodes whose range starts at or below ``v`` — is a
  guaranteed upper bound;

and ``U(v) - L(v)`` is exactly the weight parked on ranges straddling
``v``, which the split threshold keeps below ``epsilon * n`` per level.
Quantiles therefore come with **deterministic value brackets**: the
q-quantile lies in ``[quantile_bounds(tree, q)]``, always. This is the
"range coverage" style of post-processing Section 3.2 anticipates, and
it falls out of the tree with no extra state.
"""

from __future__ import annotations

import bisect
import weakref
from typing import List, Tuple

from .tree import RapTree

# Per-tree cache of the derived CDF arrays, keyed on the tree's mutation
# generation: building them is O(N log N) in tree size, and query bursts
# (many cdf_bounds/quantile_bounds calls between updates) would otherwise
# rebuild identical arrays every call. The weak keys let profiled trees
# be garbage collected normally.
_CDF_CACHE: "weakref.WeakKeyDictionary[RapTree, Tuple[int, tuple]]" = (
    weakref.WeakKeyDictionary()
)


def _cdf_arrays(tree: RapTree) -> Tuple[List[int], List[int], List[int], List[int]]:
    """Sorted (hi, prefix-count) and (lo, prefix-count) arrays.

    Cached per tree until its ``mutation_generation`` moves on.
    """
    generation = tree.mutation_generation
    cached = _CDF_CACHE.get(tree)
    if cached is not None and cached[0] == generation:
        return cached[1]
    by_hi: List[Tuple[int, int]] = []
    by_lo: List[Tuple[int, int]] = []
    for node in tree.nodes():
        if node.count:
            by_hi.append((node.hi, node.count))
            by_lo.append((node.lo, node.count))
    by_hi.sort()
    by_lo.sort()
    his = [hi for hi, _ in by_hi]
    hi_prefix = []
    running = 0
    for _, count in by_hi:
        running += count
        hi_prefix.append(running)
    los = [lo for lo, _ in by_lo]
    lo_prefix = []
    running = 0
    for _, count in by_lo:
        running += count
        lo_prefix.append(running)
    arrays = (his, hi_prefix, los, lo_prefix)
    _CDF_CACHE[tree] = (generation, arrays)
    return arrays


def cdf_bounds(tree: RapTree, value: int) -> Tuple[int, int]:
    """Guaranteed bracket on ``#events <= value``: ``(lower, upper)``."""
    if not 0 <= value < tree.config.range_max:
        raise ValueError(f"value {value} outside universe")
    his, hi_prefix, los, lo_prefix = _cdf_arrays(tree)
    hi_index = bisect.bisect_right(his, value)
    lower = hi_prefix[hi_index - 1] if hi_index else 0
    lo_index = bisect.bisect_right(los, value)
    upper = lo_prefix[lo_index - 1] if lo_index else 0
    return lower, upper


def quantile_bounds(tree: RapTree, q: float) -> Tuple[int, int]:
    """Guaranteed value bracket containing the q-quantile.

    Returns ``(v_low, v_high)`` such that the true q-quantile of the
    profiled stream lies in ``[v_low, v_high]``:

    * ``v_low`` — the smallest value whose *upper* CDF bound reaches the
      target rank (the quantile cannot be below it);
    * ``v_high`` — the smallest value whose *lower* CDF bound reaches it
      (the quantile cannot be above it).
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    if tree.events == 0:
        raise ValueError("cannot take quantiles of an empty profile")
    target = q * tree.events
    his, hi_prefix, los, lo_prefix = _cdf_arrays(tree)

    # v_high: first node-end where the guaranteed-below mass >= target.
    rank = bisect.bisect_left(hi_prefix, target)
    v_high = his[rank] if rank < len(his) else tree.config.range_max - 1

    # v_low: first node-start where even the optimistic mass >= target.
    rank = bisect.bisect_left(lo_prefix, target)
    v_low = los[rank] if rank < len(los) else tree.config.range_max - 1
    return min(v_low, v_high), max(v_low, v_high)


def quantile(tree: RapTree, q: float) -> int:
    """Point estimate of the q-quantile (midpoint of the bracket)."""
    low, high = quantile_bounds(tree, q)
    return low + (high - low) // 2


def median_bounds(tree: RapTree) -> Tuple[int, int]:
    """Bracket on the median (convenience for the common case)."""
    return quantile_bounds(tree, 0.5)
