"""Hot-range extraction (Section 4.1 of the paper).

A range is *hot* if and only if the total count for that range and all of
its **non-hot** sub-ranges is at least a threshold fraction of the stream.
The definition deliberately excludes weight that already belongs to hot
children, so a parent never becomes hot merely by containing a hot child —
this is what makes the small set of hot ranges "paint a picture of the
distribution of events across the entire range of possible events".

In Figure 5, for example, ``[0, e]`` is hot with 13.6% and its parent
``[0, fe]`` is hot with 16.7% — the parent's weight *excludes* the child's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .node import RapNode
from .tree import RapTree

DEFAULT_HOT_FRACTION = 0.10


@dataclass(frozen=True)
class HotRange:
    """One hot range reported by RAP.

    Attributes
    ----------
    lo, hi:
        The range bounds.
    weight:
        The *exclusive* hot weight: count of this range plus all of its
        non-hot sub-ranges (the number annotated on Figure 5's nodes).
    fraction:
        ``weight / n`` — the annotated percentage, as a fraction.
    depth:
        Depth of the corresponding node in the RAP tree.
    inclusive_weight:
        Total estimate for the range including hot descendants (e.g. the
        paper's "[0, fe] including its hot sub-range accounts for 30.3%").
    """

    lo: int
    hi: int
    weight: int
    fraction: float
    depth: int
    inclusive_weight: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    @property
    def inclusive_fraction(self) -> float:
        if self.weight == 0:
            return 0.0
        return self.fraction * self.inclusive_weight / self.weight

    def __str__(self) -> str:
        return f"[{self.lo:x}, {self.hi:x}] {100.0 * self.fraction:.1f}%"


def find_hot_ranges(
    tree: RapTree,
    hot_fraction: float = DEFAULT_HOT_FRACTION,
) -> List[HotRange]:
    """All hot ranges of ``tree`` at threshold ``hot_fraction`` of events.

    Returns hot ranges ordered by decreasing exclusive weight. Because
    estimates are lower bounds, "if RAP identifies a node as hot, then
    that node is guaranteed to be hot" (Section 4.3).
    """
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    events = tree.events
    if events == 0:
        return []
    cutoff = hot_fraction * events
    rows = getattr(tree, "_hot_range_rows", None)
    if rows is not None:
        # Columnar fast path: the backend computes the same post-order
        # exclusive/inclusive fold with level-wise array kernels and
        # returns rows in the reference walk's append order, so the
        # stable sort below reproduces the object ordering exactly,
        # ties included.
        found = [
            HotRange(
                lo=lo,
                hi=hi,
                weight=exclusive,
                fraction=exclusive / events,  # noqa: RAP-LINT006 - intentional float statistic
                depth=depth,
                inclusive_weight=inclusive,
            )
            for lo, hi, exclusive, inclusive, depth in rows(cutoff)
        ]
    else:
        found = []
        _walk(tree.root, cutoff, events, 0, found)
    found.sort(key=lambda item: item.weight, reverse=True)
    return found


def _walk(
    node: RapNode,
    cutoff: float,
    events: int,
    depth: int,
    found: List[HotRange],
) -> Tuple[int, int]:
    """Post-order walk computing (exclusive hot weight, inclusive weight).

    A child's weight is folded into its parent's exclusive weight only if
    the child itself did not qualify as hot.
    """
    exclusive = node.count
    inclusive = node.count
    for child in node.children:
        child_exclusive, child_inclusive = _walk(
            child, cutoff, events, depth + 1, found
        )
        inclusive += child_inclusive
        if child_exclusive < cutoff:
            exclusive += child_exclusive
    if exclusive >= cutoff:
        found.append(
            HotRange(
                lo=node.lo,
                hi=node.hi,
                weight=exclusive,
                # Reporting boundary: the fraction is a display statistic;
                # the exact counters live in weight/inclusive_weight.
                fraction=exclusive / events,  # noqa: RAP-LINT006 - intentional float statistic
                depth=depth,
                inclusive_weight=inclusive,
            )
        )
    return exclusive, inclusive


def hot_tree(
    tree: RapTree,
    hot_fraction: float = DEFAULT_HOT_FRACTION,
) -> List[HotRange]:
    """Hot ranges plus the ancestors needed to show their tree structure.

    Figure 5 draws the hot nodes *and* the root (0.9%) even though the
    root is below the hot threshold, because the picture is a tree. This
    returns the hot ranges along with every ancestor range on the path to
    the root, ordered root-first (by depth, then lo).
    """
    hot = find_hot_ranges(tree, hot_fraction)
    if not hot:
        return []
    wanted = {(item.lo, item.hi) for item in hot}
    extras: List[HotRange] = []
    events = tree.events
    for item in hot:
        node = tree.find_node(item.lo, item.hi)
        while node is not None and node.parent is not None:
            node = node.parent
            key = (node.lo, node.hi)
            if key in wanted:
                continue
            wanted.add(key)
            exclusive = _exclusive_weight(node, hot)
            extras.append(
                HotRange(
                    lo=node.lo,
                    hi=node.hi,
                    weight=exclusive,
                    fraction=exclusive / events,  # noqa: RAP-LINT006 - intentional float statistic
                    depth=node.depth,
                    inclusive_weight=node.subtree_weight(),
                )
            )
    merged = hot + extras
    merged.sort(key=lambda item: (item.depth, item.lo))
    return merged


def _exclusive_weight(node: RapNode, hot: List[HotRange]) -> int:
    """Inclusive weight of ``node`` minus weights of hot ranges inside it."""
    hot_inside = [
        item
        for item in hot
        if node.lo <= item.lo and item.hi <= node.hi
        and not (item.lo == node.lo and item.hi == node.hi)
    ]
    # Hot ranges can nest; only subtract maximal ones, each of which
    # already carries its own nested hot weight via inclusive_weight.
    maximal = [
        item
        for item in hot_inside
        if not any(
            other is not item
            and other.lo <= item.lo
            and item.hi <= other.hi
            for other in hot_inside
        )
    ]
    return node.subtree_weight() - sum(item.inclusive_weight for item in maximal)


def coverage_of_hot_ranges(hot: List[HotRange]) -> float:
    """Fraction of the stream captured by the hot ranges (exclusive sums)."""
    return sum(item.fraction for item in hot)
