"""repro — Range Adaptive Profiling (RAP).

A from-scratch reproduction of *"Profiling over Adaptive Ranges"*
(Mysore, Agrawal, Sherwood, Shrivastava, Suri — CGO 2006): a streaming,
one-pass profiler that summarizes billions of events (PCs, load values,
memory addresses, ...) into a tree of adaptively refined ranges with a
user-chosen error bound and stream-length-independent memory.

Quick start (API v2)::

    from repro import Profiler, RapConfig, find_hot_ranges

    config = RapConfig(range_max=2**32, epsilon=0.01)
    with Profiler.from_config(config, shards=4) as profiler:
        profiler.ingest(event_values)          # any int iterable / ndarray
        snapshot = profiler.snapshot()         # consistent fold of shards
    for hot in find_hot_ranges(snapshot, hot_fraction=0.10):
        print(hot)

For a single in-process tree without the runtime,
``RapTree.from_config(config)`` is the direct construction path. The
v1 C-style calls (``rap_init`` / ``rap_add_points`` / ``rap_finalize``)
still work but emit ``DeprecationWarning`` — see the migration table in
``README.md``.

Sub-packages:

* :mod:`repro.core` — the RAP algorithm (trees, thresholds, merges,
  hot ranges, bounds, combination, multi-dim extension).
* :mod:`repro.runtime` — sharded concurrent ingestion service
  (:class:`Profiler`, partitioners, bounded queues, runtime metrics).
* :mod:`repro.hardware` — cycle-level model of the pipelined RAP engine
  (TCAM, arbiter, SRAM, event buffer) plus an area/energy/delay model.
* :mod:`repro.workloads` — synthetic SPEC-like benchmark programs that
  generate the paper's code/value/address event streams.
* :mod:`repro.simulator` — trace-driven CPU front end and two-level
  cache simulator (for miss-value and zero-load studies).
* :mod:`repro.baselines` — exact offline profiler, fixed-range profiler,
  Space-Saving, sampling, and a continuous-merge RAP variant.
* :mod:`repro.analysis` — error/memory/coverage metrics and hot-range
  tree rendering.
* :mod:`repro.experiments` — one module per paper figure/claim.
"""

from .core import (
    HotRange,
    MultiDimConfig,
    MultiDimRapTree,
    RapConfig,
    RapNode,
    RapProfile,
    RapSummary,
    RapTree,
    combine_many,
    combine_trees,
    dump_tree,
    find_hot_ranges,
    hot_tree,
    load_tree,
    rap_add_points,
    rap_finalize,
    rap_init,
)
from .runtime import Profiler, RuntimeMetrics, ShardMetrics

__version__ = "2.0.0"

__all__ = [
    "HotRange",
    "MultiDimConfig",
    "MultiDimRapTree",
    "Profiler",
    "RapConfig",
    "RapNode",
    "RapProfile",
    "RapSummary",
    "RapTree",
    "RuntimeMetrics",
    "ShardMetrics",
    "__version__",
    "combine_many",
    "combine_trees",
    "dump_tree",
    "find_hot_ranges",
    "hot_tree",
    "load_tree",
    "rap_add_points",
    "rap_finalize",
    "rap_init",
]
