"""repro — Range Adaptive Profiling (RAP).

A from-scratch reproduction of *"Profiling over Adaptive Ranges"*
(Mysore, Agrawal, Sherwood, Shrivastava, Suri — CGO 2006): a streaming,
one-pass profiler that summarizes billions of events (PCs, load values,
memory addresses, ...) into a tree of adaptively refined ranges with a
user-chosen error bound and stream-length-independent memory.

Quick start::

    from repro import RapConfig, RapTree, find_hot_ranges

    tree = RapTree(RapConfig(range_max=2**32, epsilon=0.01))
    for event in event_stream:
        tree.add(event)
    for hot in find_hot_ranges(tree, hot_fraction=0.10):
        print(hot)

Sub-packages:

* :mod:`repro.core` — the RAP algorithm (trees, thresholds, merges,
  hot ranges, bounds, the paper's C-style API, multi-dim extension).
* :mod:`repro.hardware` — cycle-level model of the pipelined RAP engine
  (TCAM, arbiter, SRAM, event buffer) plus an area/energy/delay model.
* :mod:`repro.workloads` — synthetic SPEC-like benchmark programs that
  generate the paper's code/value/address event streams.
* :mod:`repro.simulator` — trace-driven CPU front end and two-level
  cache simulator (for miss-value and zero-load studies).
* :mod:`repro.baselines` — exact offline profiler, fixed-range profiler,
  Space-Saving, sampling, and a continuous-merge RAP variant.
* :mod:`repro.analysis` — error/memory/coverage metrics and hot-range
  tree rendering.
* :mod:`repro.experiments` — one module per paper figure/claim.
"""

from .core import (
    HotRange,
    MultiDimConfig,
    MultiDimRapTree,
    RapConfig,
    RapNode,
    RapProfile,
    RapSummary,
    RapTree,
    dump_tree,
    find_hot_ranges,
    hot_tree,
    load_tree,
    rap_add_points,
    rap_finalize,
    rap_init,
)

__version__ = "1.0.0"

__all__ = [
    "HotRange",
    "MultiDimConfig",
    "MultiDimRapTree",
    "RapConfig",
    "RapNode",
    "RapProfile",
    "RapSummary",
    "RapTree",
    "__version__",
    "dump_tree",
    "find_hot_ranges",
    "hot_tree",
    "load_tree",
    "rap_add_points",
    "rap_finalize",
    "rap_init",
]
