"""Set-associative cache simulator.

The paper's cache-miss value study (Figure 9) profiles "the set of all
load values which were subject to a cache miss" at two levels (DL1 and
DL2). This module provides the cache substrate that turns an address
trace into hit/miss classifications: classic set-associative caches with
true-LRU replacement, composed into a two-level hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class CacheGeometry:
    """Size, associativity, and line size of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int

    def __post_init__(self) -> None:
        for field_name in ("size_bytes", "ways", "line_bytes"):
            value = getattr(self, field_name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{field_name} must be a power of two, got {value}")
        if self.size_bytes < self.ways * self.line_bytes:
            raise ValueError("cache smaller than one set")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class Cache:
    """One level of set-associative cache with LRU replacement."""

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._line_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = geometry.num_sets - 1
        # Per-set list of tags in LRU order (last = most recent).
        self._sets: List[List[int]] = [[] for _ in range(geometry.num_sets)]
        self.accesses = 0
        self.hits = 0

    def reset(self) -> None:
        """Empty the cache and zero the statistics."""
        for entry in self._sets:
            entry.clear()
        self.accesses = 0
        self.hits = 0

    def access(self, address: int) -> bool:
        """Look up one byte address; returns True on hit.

        A miss allocates the line, evicting the LRU way when the set is
        full (write-allocate, which is all a load-only trace needs).
        """
        line = address >> self._line_shift
        bucket = self._sets[line & self._set_mask]
        self.accesses += 1
        try:
            bucket.remove(line)
        except ValueError:
            if len(bucket) >= self.geometry.ways:
                bucket.pop(0)
            bucket.append(line)
            return False
        bucket.append(line)
        self.hits += 1
        return True

    def access_many(self, addresses: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`access`; returns a boolean hit mask."""
        shift = self._line_shift
        set_mask = self._set_mask
        sets = self._sets
        ways = self.geometry.ways
        out = np.empty(addresses.shape[0], dtype=bool)
        hits = 0
        for index, raw in enumerate(addresses):
            line = int(raw) >> shift
            bucket = sets[line & set_mask]
            try:
                bucket.remove(line)
            except ValueError:
                if len(bucket) >= ways:
                    bucket.pop(0)
                bucket.append(line)
                out[index] = False
                continue
            bucket.append(line)
            out[index] = True
            hits += 1
        self.accesses += addresses.shape[0]
        self.hits += hits
        return out

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        geometry = self.geometry
        return (
            f"Cache({self.name}, {geometry.size_bytes >> 10}KB, "
            f"{geometry.ways}-way, {geometry.line_bytes}B lines)"
        )


# Typical early-2000s configuration (Alpha 21264-class), matching the
# machines the paper's SPEC traces came from.
DEFAULT_DL1 = CacheGeometry(size_bytes=32 * 1024, ways=2, line_bytes=32)
DEFAULT_DL2 = CacheGeometry(size_bytes=1024 * 1024, ways=4, line_bytes=64)


class CacheHierarchy:
    """A DL1 backed by a DL2; only DL1 misses reach the DL2."""

    def __init__(
        self,
        dl1: Optional[CacheGeometry] = None,
        dl2: Optional[CacheGeometry] = None,
    ) -> None:
        self.dl1 = Cache(dl1 or DEFAULT_DL1, name="dl1")
        self.dl2 = Cache(dl2 or DEFAULT_DL2, name="dl2")

    def reset(self) -> None:
        self.dl1.reset()
        self.dl2.reset()

    def access_many(self, addresses: np.ndarray) -> "HierarchyResult":
        """Classify every access: DL1 hit, DL2 hit, or DL2 miss."""
        dl1_hit = self.dl1.access_many(addresses)
        dl1_miss_addresses = addresses[~dl1_hit]
        dl2_hit_on_miss = self.dl2.access_many(dl1_miss_addresses)
        dl2_hit = np.zeros(addresses.shape[0], dtype=bool)
        dl2_hit[~dl1_hit] = dl2_hit_on_miss
        return HierarchyResult(dl1_hit=dl1_hit, dl2_hit=dl2_hit)


@dataclass
class HierarchyResult:
    """Hit masks for a trace run through a :class:`CacheHierarchy`.

    ``dl1_miss`` marks loads that missed the DL1 (they accessed the DL2);
    ``dl2_miss`` marks loads that missed both levels.
    """

    dl1_hit: np.ndarray
    dl2_hit: np.ndarray

    @property
    def dl1_miss(self) -> np.ndarray:
        return ~self.dl1_hit

    @property
    def dl2_miss(self) -> np.ndarray:
        return ~(self.dl1_hit | self.dl2_hit)

    @property
    def dl1_miss_rate(self) -> float:
        total = self.dl1_hit.shape[0]
        if total == 0:
            return 0.0
        return float(self.dl1_miss.sum()) / total

    @property
    def dl2_miss_rate(self) -> float:
        """Global DL2 miss rate (misses at both levels over all loads)."""
        total = self.dl1_hit.shape[0]
        if total == 0:
            return 0.0
        return float(self.dl2_miss.sum()) / total
