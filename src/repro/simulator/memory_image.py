"""Data-memory model: addresses and the values loads return from them.

The zero-load study (Figure 10) needs *address→value correlation*: RAP is
built "over the set of all memory addresses from which a zero was loaded"
and finds that specific heap regions produce most zeros ("any load to
this region has about 38% percent chance of being a zero"). The
cache-miss study (Figure 9) additionally needs region-dependent cache
behaviour: large streamed regions miss, small hot regions hit.

``MemoryImage`` realizes both from a benchmark's
:class:`~repro.workloads.spec.MemoryRegionSpec` table: addresses are
drawn per region with the region's pattern, and the value a load returns
is conditioned on its region (zero with ``zero_fraction``, otherwise from
the region's value band).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.distributions import zipf_weights
from ..workloads.spec import MemoryRegionSpec

_HOT_SLOTS = 512  # distinct lines a "hot" region cycles over


class MemoryImage:
    """Sampler over a benchmark's data address space."""

    def __init__(self, regions: Sequence[MemoryRegionSpec]) -> None:
        if not regions:
            raise ValueError("memory image needs at least one region")
        self.regions: Tuple[MemoryRegionSpec, ...] = tuple(regions)
        weights = np.array(
            [region.access_weight for region in regions], dtype=np.float64
        )
        self._weights = weights / weights.sum()
        self._cursors = [0] * len(self.regions)
        self._hot_weights = [
            zipf_weights(min(_HOT_SLOTS, max(1, region.size // 64)), 1.2)
            for region in self.regions
        ]

    def region_of(self, address: int) -> Optional[MemoryRegionSpec]:
        """The region containing ``address``, if any."""
        for region in self.regions:
            if region.base <= address < region.base + region.size:
                return region
        return None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_accesses(
        self, rng: np.random.Generator, count: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``count`` loads: ``(addresses, values, region_ids)``.

        Region choice is i.i.d. by access weight; addresses follow the
        region's pattern; values are zero with the region's
        ``zero_fraction`` and otherwise uniform in its value band.
        """
        if count == 0:
            empty = np.empty(0, dtype=np.uint64)
            return empty, empty.copy(), np.empty(0, dtype=np.int64)
        region_ids = rng.choice(len(self.regions), size=count, p=self._weights)
        addresses = np.empty(count, dtype=np.uint64)
        values = np.empty(count, dtype=np.uint64)
        for index, region in enumerate(self.regions):
            mask = region_ids == index
            picked = int(mask.sum())
            if not picked:
                continue
            addresses[mask] = self._sample_addresses(rng, index, picked)
            values[mask] = self._sample_values(rng, region, picked)
        return addresses, values, region_ids.astype(np.int64)

    def _sample_addresses(
        self, rng: np.random.Generator, region_index: int, count: int
    ) -> np.ndarray:
        region = self.regions[region_index]
        if region.pattern == "stride":
            start = self._cursors[region_index]
            offsets = (
                start
                + np.arange(count, dtype=np.uint64) * np.uint64(region.stride)
            ) % np.uint64(region.size)
            self._cursors[region_index] = int(
                (start + count * region.stride) % region.size
            )
        elif region.pattern == "random":
            offsets = rng.integers(0, region.size, size=count, dtype=np.uint64)
        else:  # "hot": Zipf over a small set of line-aligned slots
            hot_weights = self._hot_weights[region_index]
            slots = rng.choice(len(hot_weights), size=count, p=hot_weights)
            offsets = (slots.astype(np.uint64) * np.uint64(64)) % np.uint64(
                region.size
            )
        return offsets + np.uint64(region.base)

    @staticmethod
    def _sample_values(
        rng: np.random.Generator, region: MemoryRegionSpec, count: int
    ) -> np.ndarray:
        span = region.value_hi - region.value_lo + 1
        values = rng.integers(0, span, size=count, dtype=np.uint64) + np.uint64(
            region.value_lo
        )
        zero_mask = rng.random(count) < region.zero_fraction
        values[zero_mask] = 0
        return values

    # ------------------------------------------------------------------
    # Introspection helpers for the zero-load study
    # ------------------------------------------------------------------

    def zero_fraction_of(self, address: int) -> float:
        """Configured P(load == 0) at ``address`` (0 outside any region)."""
        region = self.region_of(address)
        return region.zero_fraction if region is not None else 0.0

    def expected_zero_share(self) -> List[Tuple[str, float]]:
        """Per-region expected share of all zero loads, heaviest first.

        ``share_i = weight_i * zero_fraction_i / sum_j(...)`` — the ground
        truth the Figure 10 reproduction checks RAP's findings against.
        """
        raw = [
            (region.name, weight * region.zero_fraction)
            for region, weight in zip(self.regions, self._weights)
        ]
        total = sum(share for _, share in raw)
        if total == 0.0:
            return [(name, 0.0) for name, _ in raw]
        shares = [(name, share / total) for name, share in raw]
        shares.sort(key=lambda item: item[1], reverse=True)
        return shares
