"""Trace-driven load execution: ties programs, memory, and caches.

This is the substrate behind the paper's advanced profiling scenarios
(Section 4.4): it produces, for a benchmark model, the full per-load
record — PC, effective address, loaded value, and DL1/DL2 hit/miss
classification — from which the derived profile streams are cut:

* ``all load values``  → Figure 9 baseline curve;
* ``DL1 / DL2 miss values`` → Figure 9 miss curves;
* ``addresses of zero loads`` → Figure 10;
* ``PCs of narrow-operand loads`` → the narrow-operand study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..workloads.spec import BenchmarkSpec
from ..workloads.streams import (
    ADDRESS_UNIVERSE,
    PC_UNIVERSE,
    VALUE_UNIVERSE,
    EventStream,
)
from .cache import CacheGeometry, CacheHierarchy
from .memory_image import MemoryImage


@dataclass
class LoadTrace:
    """Complete record of a simulated load stream."""

    benchmark: str
    pcs: np.ndarray
    addresses: np.ndarray
    values: np.ndarray
    dl1_hit: np.ndarray
    dl2_hit: np.ndarray

    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    @property
    def dl1_miss(self) -> np.ndarray:
        return ~self.dl1_hit

    @property
    def dl2_miss(self) -> np.ndarray:
        return ~(self.dl1_hit | self.dl2_hit)

    @property
    def dl1_miss_rate(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.dl1_miss.sum()) / len(self)

    @property
    def dl2_miss_rate(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.dl2_miss.sum()) / len(self)

    # ------------------------------------------------------------------
    # Derived profile streams
    # ------------------------------------------------------------------

    def all_load_values(self) -> EventStream:
        """Values of every load ("all_loads" in Figure 9)."""
        return EventStream(
            name=f"{self.benchmark}.all_loads",
            kind="load_value",
            universe=VALUE_UNIVERSE,
            values=self.values,
        )

    def dl1_miss_values(self) -> EventStream:
        """Values of loads that missed the DL1 ("dl1_misses")."""
        return EventStream(
            name=f"{self.benchmark}.dl1_miss_values",
            kind="load_value",
            universe=VALUE_UNIVERSE,
            values=self.values[self.dl1_miss],
        )

    def dl2_miss_values(self) -> EventStream:
        """Values of loads that missed both levels ("dl2_misses")."""
        return EventStream(
            name=f"{self.benchmark}.dl2_miss_values",
            kind="load_value",
            universe=VALUE_UNIVERSE,
            values=self.values[self.dl2_miss],
        )

    def zero_load_addresses(self) -> EventStream:
        """Addresses from which a zero was loaded (Figure 10)."""
        return EventStream(
            name=f"{self.benchmark}.zero_load_addresses",
            kind="address",
            universe=ADDRESS_UNIVERSE,
            values=self.addresses[self.values == 0],
        )

    def all_addresses(self) -> EventStream:
        """Every load's effective address."""
        return EventStream(
            name=f"{self.benchmark}.addresses",
            kind="address",
            universe=ADDRESS_UNIVERSE,
            values=self.addresses,
        )

    def load_pcs(self) -> EventStream:
        """PC of every load."""
        return EventStream(
            name=f"{self.benchmark}.load_pcs",
            kind="pc",
            universe=PC_UNIVERSE,
            values=self.pcs,
        )


def simulate_loads(
    spec: BenchmarkSpec,
    loads: int,
    seed: int = 0,
    dl1: Optional[CacheGeometry] = None,
    dl2: Optional[CacheGeometry] = None,
) -> LoadTrace:
    """Run ``loads`` load instructions of ``spec`` through the substrate.

    PCs come from the program's block trace (one load per executed
    block), addresses and values from the benchmark's memory image, and
    the cache hierarchy classifies each access. Fully deterministic for a
    given ``(spec, loads, seed)``.
    """
    pcs = spec.code_stream(loads, seed=seed).values
    image = MemoryImage(spec.memory_regions)
    rng = np.random.default_rng(seed + 404)
    addresses, values, _ = image.sample_accesses(rng, loads)
    hierarchy = CacheHierarchy(dl1=dl1, dl2=dl2)
    result = hierarchy.access_many(addresses)
    return LoadTrace(
        benchmark=spec.name,
        pcs=pcs,
        addresses=addresses,
        values=values,
        dl1_hit=result.dl1_hit,
        dl2_hit=result.dl2_hit,
    )
