"""CPU/cache substrate: turns benchmark models into classified load traces."""

from .cache import (
    DEFAULT_DL1,
    DEFAULT_DL2,
    Cache,
    CacheGeometry,
    CacheHierarchy,
    HierarchyResult,
)
from .cpu import LoadTrace, simulate_loads
from .memory_image import MemoryImage

__all__ = [
    "Cache",
    "CacheGeometry",
    "CacheHierarchy",
    "DEFAULT_DL1",
    "DEFAULT_DL2",
    "HierarchyResult",
    "LoadTrace",
    "MemoryImage",
    "simulate_loads",
]
