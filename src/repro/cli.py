"""Command-line interface: ``rap <command>``.

Commands:

* ``rap list`` — list the available experiment reproductions.
* ``rap experiment <id> [--events N] [--seed S]`` — run one experiment
  and print the paper-shaped report.
* ``rap profile <benchmark> <kind> [--epsilon E] [--events N]`` — profile
  a synthetic benchmark stream and print its hot-range tree.
* ``rap benchmarks`` — list the synthetic SPEC-like benchmarks.
* ``rap record <benchmark> <kind> <path>`` — write a binary trace file.
* ``rap analyze <path> [--epsilon E]`` — post-process a trace file:
  hot ranges, quantile brackets, memory stats (Section 3.2's offline
  flow).
* ``rap diff <path_a> <path_b>`` — profile two trace files and diff
  them range by range.
* ``rap serve <benchmark> <kind> [--shards N]`` — drive a stream through
  the sharded ingestion runtime (:class:`repro.runtime.Profiler`) in
  batches and report per-shard runtime metrics plus the snapshot's
  hot-range tree.
* ``rap audit <path> [--epsilon E]`` — replay a trace under the
  structural invariant auditor (``repro.checks``) and verify the
  estimate guarantees against an exact oracle.
* ``rap lint [paths...]`` — run the repo-specific RAP-LINT rules (the
  syntactic AST rules, the flow-sensitive dataflow rules, and the
  interprocedural concurrency rules; the registry is the single source
  of truth for the list). ``--strict`` forces every registered rule on
  and tightens noqa handling (bare suppressions are flagged, per-code
  ones need a reason); ``--explain RAP-LINTNNN`` prints a rule's
  rationale, example violation, and suggested fix.
* ``rap sanitize <benchmark> <kind> [--shards N]`` — replay a workload
  through a sharded profiler under the runtime race sanitizer
  (``RapConfig(debug_sanitize=True)``): owner-thread assertions on
  every shard-tree mutation, lock-holder tracking, a happens-before
  log. ``--inject-race`` deliberately mutates a confined shard tree
  from a foreign thread to prove the instrumentation trips.

Operational errors — an unknown experiment id, an unreadable or corrupt
trace file — print a one-line diagnostic and exit with status 1 rather
than raising a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.compare import diff_profiles
from .analysis.hot_report import render_hot_tree
from .checks.audit import audit_stream
from .checks.lint import (
    all_rule_codes,
    explain_rule,
    lint_paths,
    rule_count,
)
from .core.quantiles import quantile_bounds
from .experiments import runner
from .experiments.common import DEFAULT_SEED, HOT_FRACTION, profile_stream
from .workloads.spec import BENCHMARKS, benchmark
from .workloads.tracefile import read_trace, trace_info, write_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rap",
        description=(
            "Range Adaptive Profiling (CGO 2006) — reproduction toolkit"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiment reproductions")
    commands.add_parser("benchmarks", help="list synthetic benchmarks")

    experiment = commands.add_parser(
        "experiment", help="run one experiment reproduction"
    )
    # Validated in main() so an unknown id exits 1 with a clean message
    # instead of an argparse usage error.
    experiment.add_argument("name")
    experiment.add_argument("--events", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=DEFAULT_SEED)

    profile = commands.add_parser(
        "profile", help="profile one benchmark stream with RAP"
    )
    profile.add_argument("benchmark", choices=sorted(BENCHMARKS))
    profile.add_argument(
        "kind", choices=["code", "value", "narrow"], help="event stream kind"
    )
    profile.add_argument("--epsilon", type=float, default=0.01)
    profile.add_argument("--events", type=int, default=200_000)
    profile.add_argument("--seed", type=int, default=DEFAULT_SEED)
    profile.add_argument("--hot", type=float, default=HOT_FRACTION)

    record = commands.add_parser(
        "record", help="record a benchmark stream to a binary trace file"
    )
    record.add_argument("benchmark", choices=sorted(BENCHMARKS))
    record.add_argument("kind", choices=["code", "value", "narrow"])
    record.add_argument("path")
    record.add_argument("--events", type=int, default=200_000)
    record.add_argument("--seed", type=int, default=DEFAULT_SEED)

    analyze = commands.add_parser(
        "analyze", help="post-process a recorded trace file with RAP"
    )
    analyze.add_argument("path")
    analyze.add_argument("--epsilon", type=float, default=0.01)
    analyze.add_argument("--hot", type=float, default=HOT_FRACTION)

    diff = commands.add_parser(
        "diff", help="diff the profiles of two trace files"
    )
    diff.add_argument("path_a")
    diff.add_argument("path_b")
    diff.add_argument("--epsilon", type=float, default=0.02)
    diff.add_argument("--hot", type=float, default=HOT_FRACTION)

    serve = commands.add_parser(
        "serve",
        help="drive a stream through the sharded ingestion runtime",
    )
    serve.add_argument("benchmark", choices=sorted(BENCHMARKS))
    serve.add_argument("kind", choices=["code", "value", "narrow"])
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument(
        "--executor",
        choices=["thread", "serial", "process"],
        default="thread",
    )
    serve.add_argument(
        "--partition", choices=["hash", "range"], default="hash"
    )
    serve.add_argument(
        "--transport",
        choices=["ring", "pipe"],
        default=None,
        help=(
            "process-executor frame transport (default: the config "
            "default, ring); ignored by serial/thread executors"
        ),
    )
    serve.add_argument("--epsilon", type=float, default=0.01)
    serve.add_argument(
        "--shard-epsilon",
        type=float,
        default=None,
        help=(
            "per-shard epsilon (default: inherit --epsilon; pass "
            "shards*epsilon for the equal-memory configuration)"
        ),
    )
    serve.add_argument(
        "--backpressure", choices=["block", "drop", "spill"], default="block"
    )
    serve.add_argument("--batch-size", type=int, default=4096)
    serve.add_argument("--events", type=int, default=200_000)
    serve.add_argument("--seed", type=int, default=DEFAULT_SEED)
    serve.add_argument("--hot", type=float, default=HOT_FRACTION)

    audit = commands.add_parser(
        "audit",
        help="replay a trace under the structural invariant auditor",
    )
    audit.add_argument("path")
    audit.add_argument("--epsilon", type=float, default=0.01)
    audit.add_argument("--branching", type=int, default=4)

    sanitize = commands.add_parser(
        "sanitize",
        help="replay a workload under the runtime race sanitizer",
    )
    sanitize.add_argument("benchmark", choices=sorted(BENCHMARKS))
    sanitize.add_argument("kind", choices=["code", "value", "narrow"])
    sanitize.add_argument("--shards", type=int, default=4)
    sanitize.add_argument("--epsilon", type=float, default=0.05)
    sanitize.add_argument("--events", type=int, default=50_000)
    sanitize.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sanitize.add_argument("--batch-size", type=int, default=4096)
    sanitize.add_argument(
        "--inject-race",
        action="store_true",
        help=(
            "deliberately mutate a confined shard tree from a foreign "
            "thread; the run must then report at least one violation"
        ),
    )

    lint = commands.add_parser(
        "lint",
        help=f"run the {rule_count()} repo-specific RAP-LINT rules",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: the repro package)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help=(
            "comma-separated rule codes to run; a trailing * matches by "
            "prefix (RAP-LINT02*), which is how CI stages new rules"
        ),
    )
    lint.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip (wildcards ok)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help=(
            "tighten noqa handling: bare suppressions are flagged and "
            "per-code ones must carry a reason; composes with "
            "--select/--ignore"
        ),
    )
    lint.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print a rule's rationale, example, and fix, then exit",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    return parser


def _fail(message: str) -> int:
    print(f"rap: error: {message}", file=sys.stderr)
    return 1


def _read_trace_checked(path: str):
    """Read a trace, translating I/O and format problems into SystemExit-free
    diagnostics (the caller turns None into exit status 1)."""
    try:
        return read_trace(path)
    except OSError as error:
        print(f"rap: error: cannot read trace {path!r}: {error.strerror or error}",
              file=sys.stderr)
    except ValueError as error:
        print(f"rap: error: {path!r} is not a valid trace: {error}",
              file=sys.stderr)
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name, (_, description) in runner.EXPERIMENTS.items():
            print(f"{name:16s} {description}")
        return 0

    if args.command == "benchmarks":
        for name, spec in BENCHMARKS.items():
            print(f"{name:8s} {spec.description}")
        return 0

    if args.command == "experiment":
        if args.name not in runner.EXPERIMENTS:
            return _fail(
                f"unknown experiment {args.name!r}; run `rap list` to "
                f"see the available ids"
            )
        kwargs = {"seed": args.seed}
        if args.events is not None:
            kwargs["events"] = args.events
        print(runner.render_experiment(args.name, **kwargs))
        return 0

    if args.command == "profile":
        spec = benchmark(args.benchmark)
        if args.kind == "code":
            stream = spec.code_stream(args.events, seed=args.seed)
        elif args.kind == "value":
            stream = spec.value_stream(args.events, seed=args.seed)
        else:
            stream = spec.narrow_operand_stream(args.events, seed=args.seed)
        tree = profile_stream(stream, epsilon=args.epsilon)
        print(
            render_hot_tree(
                tree,
                args.hot,
                title=(
                    f"{stream.name}: {tree.events:,} events, "
                    f"eps={args.epsilon:.0%}, {tree.node_count} nodes"
                ),
            )
        )
        return 0

    if args.command == "record":
        spec = benchmark(args.benchmark)
        if args.kind == "code":
            stream = spec.code_stream(args.events, seed=args.seed)
        elif args.kind == "value":
            stream = spec.value_stream(args.events, seed=args.seed)
        else:
            stream = spec.narrow_operand_stream(args.events, seed=args.seed)
        write_trace(stream, args.path)
        info = trace_info(args.path)
        print(
            f"recorded {info['events']:,} {info['kind']} events to "
            f"{args.path}"
        )
        return 0

    if args.command == "analyze":
        stream = _read_trace_checked(args.path)
        if stream is None:
            return 1
        tree = profile_stream(stream, epsilon=args.epsilon)
        print(
            render_hot_tree(
                tree,
                args.hot,
                title=(
                    f"{args.path}: {tree.events:,} {stream.kind} events, "
                    f"eps={args.epsilon:.0%}, {tree.node_count} nodes "
                    f"({tree.memory_bytes() / 1024:.1f} KB)"
                ),
            )
        )
        if tree.events:
            print("\nquantile brackets (guaranteed):")
            for q in (0.5, 0.9, 0.99):
                low, high = quantile_bounds(tree, q)
                print(f"  p{int(q * 100):<3d} in [{low:#x}, {high:#x}]")
        return 0

    if args.command == "diff":
        first = _read_trace_checked(args.path_a)
        second = _read_trace_checked(args.path_b)
        if first is None or second is None:
            return 1
        before = profile_stream(first, epsilon=args.epsilon)
        after = profile_stream(second, epsilon=args.epsilon)
        result = diff_profiles(before, after, args.hot)
        print(result.render())
        print(f"\ntotal weight shift: {100 * result.total_shift():.1f}%")
        return 0

    if args.command == "serve":
        import time

        from .core import RapConfig
        from .runtime import Profiler

        spec = benchmark(args.benchmark)
        if args.kind == "code":
            stream = spec.code_stream(args.events, seed=args.seed)
        elif args.kind == "value":
            stream = spec.value_stream(args.events, seed=args.seed)
        else:
            stream = spec.narrow_operand_stream(args.events, seed=args.seed)
        config = RapConfig(
            stream.universe,
            epsilon=args.epsilon,
            # The process executor keeps shard trees in shared-memory
            # column arrays, which only the columnar backend provides.
            backend="columnar" if args.executor == "process" else "object",
        )
        profiler = Profiler.from_config(
            config,
            shards=args.shards,
            executor=args.executor,
            partition=args.partition,
            transport=args.transport,
            shard_epsilon=args.shard_epsilon,
            backpressure=args.backpressure,
            batch_size=args.batch_size,
            clock=time.perf_counter,
        )
        with profiler:
            for batch in stream.batches(args.batch_size):
                profiler.ingest(batch)
            snapshot = profiler.close()
        metrics = profiler.metrics
        label = f"{args.executor}/{args.partition}"
        if args.executor == "process":
            # profiler.transport reflects any fallback from ring to pipe.
            label += f"/{profiler.transport}"
        print(
            f"{stream.name}: {metrics.events:,} events through "
            f"{args.shards} shard(s) [{label}, {args.backpressure}]"
        )
        if args.executor == "process" and metrics.transport_stalls:
            print(
                f"  transport: {metrics.transport_stalls} ring-space "
                f"stall(s), {metrics.transport_stall_s * 1e3:.1f} ms waiting"
            )
        for shard in metrics.shards:
            print(
                f"  shard {shard.shard}: {shard.events:,} events in "
                f"{shard.batches} batches, {shard.node_count} nodes, "
                f"{shard.splits} splits, {shard.merge_batches} merges, "
                f"queue depth<={shard.max_queue_depth}, "
                f"dropped={shard.dropped_events}, "
                f"spilled={shard.spilled_batches}"
            )
        if metrics.events_per_second:
            print(
                f"  throughput: {metrics.events_per_second:,.0f} events/s "
                f"(ingest {metrics.ingest_seconds * 1e3:.1f} ms, "
                f"snapshot {metrics.snapshot_seconds * 1e3:.1f} ms)"
            )
        if metrics.dropped_events:
            print(
                f"  WARNING: {metrics.dropped_events:,} events dropped "
                "under backpressure"
            )
        print(
            render_hot_tree(
                snapshot,
                args.hot,
                title=(
                    f"snapshot: {snapshot.events:,} events, "
                    f"{snapshot.node_count} nodes "
                    f"(bound eps={snapshot.config.epsilon:.0%})"
                ),
            )
        )
        return 0

    if args.command == "sanitize":
        import threading

        from .checks.sanitizer import RapSanitizerError
        from .core import RapConfig
        from .runtime import Profiler

        spec = benchmark(args.benchmark)
        if args.kind == "code":
            stream = spec.code_stream(args.events, seed=args.seed)
        elif args.kind == "value":
            stream = spec.value_stream(args.events, seed=args.seed)
        else:
            stream = spec.narrow_operand_stream(args.events, seed=args.seed)
        config = RapConfig(
            stream.universe, epsilon=args.epsilon, debug_sanitize=True
        )
        profiler = Profiler.from_config(
            config, shards=args.shards, batch_size=args.batch_size
        )
        with profiler:
            for batch in stream.batches(args.batch_size):
                profiler.ingest(batch)
            profiler.drain()
            if args.inject_race:
                # Deliberate fault injection: mutate a confined shard
                # tree from a thread that does not own it. The wrapped
                # mutator must record the violation and raise before
                # the tree is touched, so the run stays deterministic.
                def _race() -> None:
                    try:
                        profiler._trees[0].add(0)  # noqa: SLF001 - deliberate fault injection
                    except RapSanitizerError:
                        pass  # recorded by the sanitizer; reported below
                intruder = threading.Thread(
                    target=_race, name="rap-sanitize-intruder"
                )
                intruder.start()
                intruder.join()
            snapshot = profiler.close()
        sanitizer = profiler.sanitizer
        assert sanitizer is not None
        summary = sanitizer.report()
        print(
            f"{stream.name}: {snapshot.events:,} events through "
            f"{args.shards} shard(s) under the race sanitizer"
        )
        print(
            f"  happens-before log: {summary['events_logged']} events "
            f"({summary['trees_tracked']} trees, "
            f"{summary['queues_tracked']} queues, "
            f"{len(summary['locks_tracked'])} locks tracked)"
        )
        violations = sanitizer.violations
        if violations:
            print(f"  {len(violations)} violation(s):")
            for message in violations:
                print(f"    - {message}")
        else:
            print("  no confinement or lock-discipline violations")
        if args.inject_race:
            if not violations:
                return _fail("injected race was not detected")
            print("  (expected: --inject-race provoked the violation)")
            return 0
        return 1 if violations else 0

    if args.command == "audit":
        stream = _read_trace_checked(args.path)
        if stream is None:
            return 1
        report = audit_stream(
            stream, epsilon=args.epsilon, branching=args.branching
        )
        print(report.render())
        return 0 if report.ok else 1

    if args.command == "lint":
        if args.explain is not None:
            try:
                print(explain_rule(args.explain))
            except ValueError as error:
                return _fail(str(error))
            return 0

        def parse_codes(raw: Optional[str]) -> Optional[List[str]]:
            if raw is None:
                return None
            return [c.strip().upper() for c in raw.split(",") if c.strip()]

        try:
            report = lint_paths(
                args.paths or [__file__.rsplit("/", 1)[0]],
                select=parse_codes(args.select),
                ignore=parse_codes(args.ignore),
                strict=args.strict,
            )
        except (ValueError, FileNotFoundError) as error:
            return _fail(
                f"{error} (known rules: {', '.join(all_rule_codes())})"
            )
        if args.format == "json":
            print(report.to_json())
        elif args.format == "sarif":
            print(report.to_sarif())
        else:
            print(report.render_text())
        return 0 if report.ok else 1

    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
