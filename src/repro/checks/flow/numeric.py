"""Numeric & array abstract interpretation, plus RAP-LINT018..023.

The reproduction mixes four numeric worlds: unbounded CPython ints (the
object backend's exact counters), ``int64`` numpy counter mirrors,
``uint64`` bound columns, and ``float64`` thresholds. numpy's promotion
rules make that mix treacherous — ``uint64 op int64`` silently promotes
to ``float64``, ``np.bincount(..., weights=...)`` always sums in
``float64``, and an int64-vs-float64 comparison rounds both sides above
``2**53`` where CPython would compare exactly. This module makes those
hazards machine-checked the same way the taint lattice machine-checks
counter/RNG discipline: an abstract interpreter on the existing CFG +
worklist solver with three cooperating domains, and six lint rules on
top.

The domains (one :class:`NumValue` per variable, a product lattice):

* **dtype lattice** — the powerset of ``{bool, int64, uint64, float64,
  object, int, float}`` (``int``/``float`` are exact Python scalars;
  the empty set is "unknown", the lattice top). Propagated through
  ``np.zeros/empty/asarray/astype``, arithmetic (with numpy's promotion
  table, pinned against ``np.result_type`` in the tests), comparisons,
  indexing, and the recognised ufunc/reduction calls.
* **interval domain** — ``[lo, hi]`` bounds with ``None`` as ±∞, used
  to flag *possible* int64 overflow and int→float64 precision loss past
  ``2**53``. Joins widen bounds outward to a fixed bucket grid
  (…, 2**31, 2**53, 2**63−1, …) so the lattice stays finite and the
  solver terminates.
* **array-trait domain** — ``array`` (a numpy array), ``view`` (may
  alias another live array's memory: slices, ``.T``, ``reshape``,
  ``ravel``, ``view``, ``asarray``), plus the set of base names a view
  may alias and a ``counter`` origin tag that follows values read from
  counter columns (``.count``, ``._counts``, …) through arithmetic.

The rules (registered in :mod:`repro.checks.lint.registry`):

* **RAP-LINT018 mixed-signedness-promotion** — ``uint64`` meets
  ``int64`` under an arithmetic operator or comparison; numpy promotes
  both to ``float64`` and the result is silently inexact above 2**53.
* **RAP-LINT019 counter-float-comparison** — a counter-origin value is
  compared under float64 array semantics (the columnar fit-mask caveat,
  found statically).
* **RAP-LINT020 counter-accumulation-precision** — counter weight is
  accumulated through a float64 carrier (float augmented assignment,
  ``bincount``-with-weights, an ``astype(int64)`` cast back out of
  float64), or an integer product/sum provably may exceed int64.
* **RAP-LINT021 aliased-view-mutation** — in-place mutation of a value
  the trait domain says may alias another live array.
* **RAP-LINT022 hot-loop-allocation** — an allocating numpy call inside
  a loop of a function the hotspec (:mod:`repro.checks.hotspec`)
  declares hot.
* **RAP-LINT023 scalar-loop-over-array** — a Python-scalar ``for`` loop
  sweeping an array that has a vectorized equivalent.

Every violation carries a ``flow_trace`` witness (definition chain from
the origin to the flagged site), rendered by ``rap lint`` text output
and the JSON/SARIF payloads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..hotspec import is_hot
from ..lint.rules import (
    LintContext,
    Rule,
    Violation,
    _import_aliases,
)
from .analyses import Definition, reaching_definitions
from .cfg import CFG, CFGNode
from .rules import (
    FlowRule,
    UnitAnalysis,
    _executed_exprs,
    _source_line,
    _unit_analyses,
)
from .solver import DataflowProblem, Solution, solve
from .taint import _render, _resolved_call_name

# --------------------------------------------------------------------------
# The dtype lattice
# --------------------------------------------------------------------------

DT_BOOL = "bool"
DT_INT64 = "int64"
DT_UINT64 = "uint64"
DT_FLOAT64 = "float64"
DT_OBJECT = "object"
DT_INT = "int"  # exact CPython int
DT_FLOAT = "float"  # CPython float (same 53-bit mantissa as float64)

ALL_DTYPES = frozenset(
    {DT_BOOL, DT_INT64, DT_UINT64, DT_FLOAT64, DT_OBJECT, DT_INT, DT_FLOAT}
)

#: dtypes whose values live in floating point (inexact above 2**53).
FLOAT_DTYPES = frozenset({DT_FLOAT64, DT_FLOAT})
#: dtypes whose values are integers (exact while they fit).
INT_DTYPES = frozenset({DT_BOOL, DT_INT64, DT_UINT64, DT_INT})

TWO_53 = 2**53
INT64_MAX = 2**63 - 1
UINT64_MAX = 2**64 - 1

#: The binary-operation promotion table, pinned against
#: ``np.result_type`` by ``tests/checks/test_numeric.py``. The one
#: surprise is the first row: numpy has no integer type that holds both
#: uint64 and int64, so it promotes the pair to float64.
PROMOTION: Dict[FrozenSet[str], str] = {
    frozenset({DT_UINT64, DT_INT64}): DT_FLOAT64,
    frozenset({DT_UINT64, DT_UINT64}): DT_UINT64,
    frozenset({DT_UINT64, DT_INT}): DT_UINT64,
    frozenset({DT_UINT64, DT_BOOL}): DT_UINT64,
    frozenset({DT_INT64, DT_INT64}): DT_INT64,
    frozenset({DT_INT64, DT_INT}): DT_INT64,
    frozenset({DT_INT64, DT_BOOL}): DT_INT64,
    frozenset({DT_INT, DT_INT}): DT_INT,
    frozenset({DT_INT, DT_BOOL}): DT_INT,
    frozenset({DT_BOOL, DT_BOOL}): DT_BOOL,
}


def promote(left: str, right: str) -> str:
    """numpy's binary promotion for one dtype pair."""
    if DT_OBJECT in (left, right):
        return DT_OBJECT
    if DT_FLOAT64 in (left, right):
        return DT_FLOAT64
    if DT_FLOAT in (left, right):
        # A Python float against an array dtype becomes float64; two
        # Python scalars stay a Python float.
        if left in (DT_FLOAT, DT_INT) and right in (DT_FLOAT, DT_INT):
            return DT_FLOAT
        return DT_FLOAT64
    return PROMOTION[frozenset({left, right})]


# --------------------------------------------------------------------------
# The interval domain
# --------------------------------------------------------------------------

Bound = Optional[int]  # None encodes the relevant infinity

#: Widening grid: joined bounds snap outward to these magnitudes so the
#: interval lattice has finite height (the solver needs termination).
_BUCKETS = (
    -(2**64),
    -INT64_MAX - 1,
    -(2**31),
    -1,
    0,
    1,
    2**31,
    TWO_53,
    INT64_MAX,
    2**64,
)


def _widen_lo(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    if a == b:
        return a
    low = min(a, b)
    for bucket in reversed(_BUCKETS):
        if bucket <= low:
            return bucket
    return None


def _widen_hi(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    if a == b:
        return a
    high = max(a, b)
    for bucket in _BUCKETS:
        if bucket >= high:
            return bucket
    return None


def _add_bound(a: Bound, b: Bound) -> Bound:
    return None if a is None or b is None else a + b


def _mul_hi(a_lo: Bound, a_hi: Bound, b_lo: Bound, b_hi: Bound) -> Bound:
    """Upper bound of a product of two non-negative-ish intervals; None
    (unbounded) unless all four corners are finite."""
    corners = (a_lo, a_hi, b_lo, b_hi)
    if any(corner is None for corner in corners):
        return None
    return max(
        a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi
    )


# --------------------------------------------------------------------------
# Abstract values
# --------------------------------------------------------------------------

TRAIT_ARRAY = "array"
TRAIT_VIEW = "view"

ORIGIN_COUNTER = "counter"


@dataclass(frozen=True)
class NumValue:
    """One variable's abstract numeric state (product of the domains).

    ``dtypes`` empty means unknown (top). ``bases`` names the variables
    / attribute chains a view may alias. Instances are immutable and
    hashable so environments compare structurally in the solver.
    """

    dtypes: FrozenSet[str] = frozenset()
    lo: Bound = None
    hi: Bound = None
    traits: FrozenSet[str] = frozenset()
    bases: FrozenSet[str] = frozenset()
    origins: FrozenSet[str] = frozenset()

    @property
    def is_array(self) -> bool:
        return TRAIT_ARRAY in self.traits

    @property
    def is_view(self) -> bool:
        return TRAIT_VIEW in self.traits

    @property
    def is_counter(self) -> bool:
        return ORIGIN_COUNTER in self.origins

    def has_float(self) -> bool:
        return bool(self.dtypes & FLOAT_DTYPES)

    def pure_int(self) -> bool:
        return bool(self.dtypes) and self.dtypes <= INT_DTYPES

    def may_exceed(self, limit: int) -> bool:
        """Could this (integer) value exceed ``limit``?"""
        return self.hi is None or self.hi > limit

    def join(self, other: "NumValue") -> "NumValue":
        return NumValue(
            dtypes=self.dtypes | other.dtypes,
            lo=_widen_lo(self.lo, other.lo),
            hi=_widen_hi(self.hi, other.hi),
            traits=self.traits | other.traits,
            bases=self.bases | other.bases,
            origins=self.origins | other.origins,
        )


UNKNOWN = NumValue()

Env = Tuple[Tuple[str, NumValue], ...]


def _env_get(env: Env, name: str) -> NumValue:
    for key, value in env:
        if key == name:
            return value
    return UNKNOWN


def _env_set(env: Env, updates: Dict[str, NumValue]) -> Env:
    merged = dict(env)
    for name, value in updates.items():
        if value == UNKNOWN:
            merged.pop(name, None)
        else:
            merged[name] = value
    return tuple(sorted(merged.items()))


def _numeric_env_join(values: Sequence[Env]) -> Env:
    merged: Dict[str, NumValue] = {}
    for env in values:
        for name, value in env:
            existing = merged.get(name)
            merged[name] = value if existing is None else existing.join(value)
    return tuple(sorted(merged.items()))


# --------------------------------------------------------------------------
# Recognised numpy surface
# --------------------------------------------------------------------------

#: Attribute reads with a known numeric meaning in this repo. Counter
#: columns and scalar counters carry the ``counter`` origin the rules
#: key on; the bound columns are the uint64 side of RAP-LINT018.
_COUNTER_SCALAR_ATTRS = frozenset({"count", "_events", "events"})
_COUNTER_ARRAY_ATTRS = frozenset({"counts", "_counts"})
_UINT64_ARRAY_ATTRS = frozenset({"_cov_starts", "_values", "_masks"})

#: dtype spellings accepted in ``dtype=`` arguments.
_DTYPE_NAMES: Dict[str, str] = {
    "numpy.bool_": DT_BOOL,
    "numpy.int64": DT_INT64,
    "numpy.intp": DT_INT64,
    "numpy.uint64": DT_UINT64,
    "numpy.float64": DT_FLOAT64,
    "numpy.double": DT_FLOAT64,
    "bool": DT_BOOL,
    "int": DT_INT64,
    "float": DT_FLOAT64,
    "object": DT_OBJECT,
    "int64": DT_INT64,
    "intp": DT_INT64,
    "uint64": DT_UINT64,
    "float64": DT_FLOAT64,
}

#: Allocation-returning constructors (RAP-LINT022's banned set inside
#: hot loops) and the default dtype each produces without ``dtype=``.
ALLOCATING_CALLS: Dict[str, str] = {
    "numpy.zeros": DT_FLOAT64,
    "numpy.empty": DT_FLOAT64,
    "numpy.ones": DT_FLOAT64,
    "numpy.full": DT_FLOAT64,
    "numpy.array": DT_FLOAT64,
    "numpy.arange": DT_INT64,
    "numpy.concatenate": DT_FLOAT64,
    "numpy.copy": DT_FLOAT64,
    "numpy.zeros_like": DT_FLOAT64,
    "numpy.empty_like": DT_FLOAT64,
    "numpy.ones_like": DT_FLOAT64,
    "numpy.full_like": DT_FLOAT64,
    "numpy.tile": DT_FLOAT64,
    "numpy.repeat": DT_FLOAT64,
    "numpy.stack": DT_FLOAT64,
    "numpy.vstack": DT_FLOAT64,
    "numpy.hstack": DT_FLOAT64,
}

#: Calls whose result is an int64 index/position array.
_INDEX_CALLS = frozenset(
    {
        "numpy.searchsorted",
        "numpy.argsort",
        "numpy.flatnonzero",
        "numpy.nonzero",
        "numpy.argmax",
        "numpy.argmin",
    }
)

#: Calls that preserve their first argument's dtype/origin.
_PRESERVING_CALLS = frozenset(
    {
        "numpy.unique",
        "numpy.sort",
        "numpy.abs",
        "numpy.concatenate",
        "numpy.copy",
        "numpy.tile",
        "numpy.repeat",
    }
)

#: Binary ufuncs that follow the promotion table.
_BINARY_UFUNCS = frozenset(
    {
        "numpy.add",
        "numpy.subtract",
        "numpy.multiply",
        "numpy.floor_divide",
        "numpy.minimum",
        "numpy.maximum",
    }
)

#: Methods that mutate an array in place (RAP-LINT021 sites).
INPLACE_METHODS = frozenset({"sort", "fill", "partition", "put"})

#: Methods whose result may alias the receiver's memory.
_VIEW_METHODS = frozenset({"view", "reshape", "ravel", "transpose",
                           "swapaxes", "squeeze"})


def _dtype_from_expr(
    expr: Optional[ast.expr], aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve a ``dtype=`` argument expression to a lattice dtype."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _DTYPE_NAMES.get(expr.value)
    parts: List[str] = []
    node: ast.AST = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        dotted = ".".join(reversed(parts))
        head, _, rest = dotted.partition(".")
        head = aliases.get(head, head)
        dotted = f"{head}.{rest}" if rest else head
        return _DTYPE_NAMES.get(dotted)
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _attr_chain(expr: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` chains (used as view-base labels)."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------------
# The analysis
# --------------------------------------------------------------------------


class NumericAnalysis:
    """Numeric abstract interpretation for one CFG (one function)."""

    def __init__(self, cfg: CFG, aliases: Optional[Dict[str, str]] = None):
        self.cfg = cfg
        self.aliases = aliases or {}
        self.solution: Solution[Env] = self._solve()
        self.reaching: Solution[FrozenSet[Definition]] = (
            reaching_definitions(cfg)
        )

    # -- expression evaluation -------------------------------------------

    def eval_value(self, expr: Optional[ast.AST], env: Env) -> NumValue:
        if expr is None:
            return UNKNOWN
        if isinstance(expr, ast.Name):
            return _env_get(env, expr.id)
        if isinstance(expr, ast.Constant):
            return self._eval_constant(expr)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.BoolOp):
            value = UNKNOWN
            for sub in expr.values:
                value = value.join(self.eval_value(sub, env))
            return value
        if isinstance(expr, ast.IfExp):
            return self.eval_value(expr.body, env).join(
                self.eval_value(expr.orelse, env)
            )
        if isinstance(expr, (ast.NamedExpr, ast.Await, ast.Starred)):
            return self.eval_value(expr.value, env)
        if isinstance(expr, ast.Compare):
            operands = [expr.left, *expr.comparators]
            any_array = any(
                self.eval_value(operand, env).is_array
                for operand in operands
            )
            return NumValue(
                dtypes=frozenset({DT_BOOL}),
                lo=0,
                hi=1,
                traits=(
                    frozenset({TRAIT_ARRAY}) if any_array else frozenset()
                ),
            )
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        return UNKNOWN

    @staticmethod
    def _eval_constant(expr: ast.Constant) -> NumValue:
        value = expr.value
        if isinstance(value, bool):
            as_int = int(value)
            return NumValue(
                dtypes=frozenset({DT_BOOL}), lo=as_int, hi=as_int
            )
        if isinstance(value, int):
            return NumValue(dtypes=frozenset({DT_INT}), lo=value, hi=value)
        if isinstance(value, float):
            return NumValue(dtypes=frozenset({DT_FLOAT}))
        return UNKNOWN

    def _eval_attribute(self, expr: ast.Attribute, env: Env) -> NumValue:
        attr = expr.attr
        if attr in _COUNTER_SCALAR_ATTRS:
            return NumValue(
                dtypes=frozenset({DT_INT}),
                lo=0,
                origins=frozenset({ORIGIN_COUNTER}),
            )
        if attr in _COUNTER_ARRAY_ATTRS:
            # int64 storage bounds the elements even when the analysis
            # knows nothing else — the bound is what lets the 32-bit
            # split idiom prove its halves small.
            return NumValue(
                dtypes=frozenset({DT_INT64}),
                lo=0,
                hi=INT64_MAX,
                traits=frozenset({TRAIT_ARRAY}),
                origins=frozenset({ORIGIN_COUNTER}),
            )
        if attr in _UINT64_ARRAY_ATTRS:
            return NumValue(
                dtypes=frozenset({DT_UINT64}),
                lo=0,
                hi=UINT64_MAX,
                traits=frozenset({TRAIT_ARRAY}),
            )
        base = self.eval_value(expr.value, env)
        if attr == "T" and base.is_array:
            label = _attr_chain(expr.value) or "<array>"
            return replace(
                base,
                traits=base.traits | frozenset({TRAIT_VIEW}),
                bases=base.bases | frozenset({label}),
            )
        if attr == "size" and base.is_array:
            return NumValue(dtypes=frozenset({DT_INT}), lo=0)
        if attr == "dtype":
            return UNKNOWN
        return UNKNOWN

    def _eval_subscript(self, expr: ast.Subscript, env: Env) -> NumValue:
        base = self.eval_value(expr.value, env)
        if not base.is_array:
            return UNKNOWN
        label = _attr_chain(expr.value) or "<array>"
        if isinstance(expr.slice, ast.Slice):
            # A slice is a *view* over the same memory.
            return replace(
                base,
                traits=base.traits | frozenset({TRAIT_VIEW}),
                bases=base.bases | frozenset({label}),
            )
        index = self.eval_value(expr.slice, env)
        if index.is_array:
            # Fancy indexing copies; scalar element otherwise. Both
            # keep dtype and origin; fancy indexing keeps arrayness.
            return NumValue(
                dtypes=base.dtypes,
                lo=base.lo,
                hi=base.hi,
                traits=frozenset({TRAIT_ARRAY}),
                origins=base.origins,
            )
        return NumValue(
            dtypes=base.dtypes, lo=base.lo, hi=base.hi,
            origins=base.origins,
        )

    def _eval_binop(self, expr: ast.BinOp, env: Env) -> NumValue:
        left = self.eval_value(expr.left, env)
        right = self.eval_value(expr.right, env)
        return self.combine(expr.op, left, right)

    def combine(
        self, op: ast.operator, left: NumValue, right: NumValue
    ) -> NumValue:
        traits = (left.traits | right.traits) & frozenset({TRAIT_ARRAY})
        origins = left.origins | right.origins
        any_array = bool(traits)
        dtypes: FrozenSet[str]
        if isinstance(op, ast.Div):
            dtypes = frozenset(
                {DT_FLOAT64 if any_array or not (
                    left.dtypes <= frozenset({DT_INT, DT_FLOAT})
                    and right.dtypes <= frozenset({DT_INT, DT_FLOAT})
                ) else DT_FLOAT}
            )
        elif left.dtypes and right.dtypes:
            dtypes = frozenset(
                promote(a, b) for a in left.dtypes for b in right.dtypes
            )
        else:
            dtypes = frozenset()
        lo: Bound = None
        hi: Bound = None
        if isinstance(op, ast.Add):
            lo = _add_bound(left.lo, right.lo)
            hi = _add_bound(left.hi, right.hi)
        elif isinstance(op, ast.Sub):
            lo = (
                None
                if left.lo is None or right.hi is None
                else left.lo - right.hi
            )
            hi = (
                None
                if left.hi is None or right.lo is None
                else left.hi - right.lo
            )
        elif isinstance(op, ast.Mult):
            hi = _mul_hi(left.lo, left.hi, right.lo, right.hi)
            if (
                left.lo is not None
                and right.lo is not None
                and left.lo >= 0
                and right.lo >= 0
            ):
                lo = left.lo * right.lo
        elif isinstance(op, ast.BitAnd):
            # Masking with a non-negative constant bounds the result.
            for operand in (left, right):
                if (
                    operand.lo is not None
                    and operand.lo == operand.hi
                    and operand.lo >= 0
                ):
                    lo, hi = 0, operand.lo
                    break
        elif isinstance(op, ast.RShift):
            if left.lo is not None and left.lo >= 0:
                lo = 0
                if (
                    left.hi is not None
                    and right.lo is not None
                    and right.lo == right.hi
                    and right.lo >= 0
                ):
                    hi = left.hi >> right.lo
                else:
                    hi = left.hi
        elif isinstance(op, (ast.FloorDiv, ast.Mod)):
            if left.lo is not None and left.lo >= 0:
                lo, hi = 0, left.hi
        return NumValue(
            dtypes=dtypes, lo=lo, hi=hi, traits=traits, origins=origins
        )

    def _eval_unary(self, expr: ast.UnaryOp, env: Env) -> NumValue:
        operand = self.eval_value(expr.operand, env)
        if isinstance(expr.op, ast.USub):
            lo = None if operand.hi is None else -operand.hi
            hi = None if operand.lo is None else -operand.lo
            return replace(operand, lo=lo, hi=hi)
        if isinstance(expr.op, ast.Not):
            return NumValue(dtypes=frozenset({DT_BOOL}), lo=0, hi=1)
        return operand

    def _eval_call(self, call: ast.Call, env: Env) -> NumValue:
        resolved = _resolved_call_name(call, self.aliases)
        if resolved is None:
            # Method call on a composite receiver, e.g.
            # ``table[lo:hi].copy()`` — fall through to the attribute
            # dispatch below with no named-call match possible.
            resolved = ""
        if resolved in ALLOCATING_CALLS or resolved == "numpy.asarray":
            declared = _dtype_from_expr(
                _keyword(call, "dtype"), self.aliases
            )
            arg = self.eval_value(call.args[0], env) if call.args else UNKNOWN
            if declared is not None:
                dtypes = frozenset({declared})
            elif resolved in ("numpy.asarray", "numpy.array") and (
                arg.is_array and arg.dtypes
            ):
                dtypes = arg.dtypes
            elif resolved in _PRESERVING_CALLS and arg.dtypes:
                dtypes = arg.dtypes
            elif resolved == "numpy.asarray":
                dtypes = frozenset()
            else:
                dtypes = frozenset({ALLOCATING_CALLS[resolved]})
            traits = frozenset({TRAIT_ARRAY})
            bases: FrozenSet[str] = frozenset()
            if resolved == "numpy.asarray" and call.args:
                # asarray of an array is a no-copy alias.
                label = _attr_chain(call.args[0])
                if arg.is_array and label is not None:
                    traits |= frozenset({TRAIT_VIEW})
                    bases = frozenset({label})
            lo, hi = (None, None)
            if resolved == "numpy.zeros":
                lo, hi = 0, 0
            elif resolved == "numpy.ones":
                lo, hi = 1, 1
            elif resolved in _PRESERVING_CALLS:
                lo, hi = arg.lo, arg.hi
            origins = (
                arg.origins if resolved in _PRESERVING_CALLS
                or resolved in ("numpy.asarray", "numpy.array")
                else frozenset()
            )
            return NumValue(
                dtypes=dtypes, lo=lo, hi=hi, traits=traits, bases=bases,
                origins=origins,
            )
        if resolved == "numpy.bincount":
            weights = _keyword(call, "weights")
            if weights is None and len(call.args) > 1:
                weights = call.args[1]
            if weights is not None:
                weight_value = self.eval_value(weights, env)
                origins = weight_value.origins
                if (
                    weight_value.hi is not None
                    and weight_value.hi <= 2**32 - 1
                ):
                    # The blessed 32-bit-split idiom: a bounded half's
                    # float64 sums are exact, so its bincount result is
                    # no longer a hazardous counter carrier.
                    origins = origins - frozenset({ORIGIN_COUNTER})
                return NumValue(
                    dtypes=frozenset({DT_FLOAT64}),
                    traits=frozenset({TRAIT_ARRAY}),
                    origins=origins,
                )
            return NumValue(
                dtypes=frozenset({DT_INT64}),
                lo=0,
                traits=frozenset({TRAIT_ARRAY}),
            )
        if resolved in _INDEX_CALLS:
            return NumValue(
                dtypes=frozenset({DT_INT64}),
                lo=0,
                traits=frozenset({TRAIT_ARRAY}),
            )
        if resolved in ("numpy.cumsum", "numpy.sum"):
            arg = self.eval_value(call.args[0], env) if call.args else UNKNOWN
            dtypes = frozenset(
                DT_INT64 if dtype in (DT_BOOL, DT_INT) else dtype
                for dtype in arg.dtypes
            )
            traits = (
                frozenset({TRAIT_ARRAY})
                if resolved == "numpy.cumsum"
                else frozenset()
            )
            return NumValue(
                dtypes=dtypes, lo=arg.lo, traits=traits,
                origins=arg.origins,
            )
        if resolved in _PRESERVING_CALLS:
            arg = self.eval_value(call.args[0], env) if call.args else UNKNOWN
            return NumValue(
                dtypes=arg.dtypes, lo=arg.lo, hi=arg.hi,
                traits=frozenset({TRAIT_ARRAY}), origins=arg.origins,
            )
        if resolved in _BINARY_UFUNCS and len(call.args) >= 2:
            left = self.eval_value(call.args[0], env)
            right = self.eval_value(call.args[1], env)
            op: ast.operator
            if resolved == "numpy.subtract":
                op = ast.Sub()
            elif resolved == "numpy.multiply":
                op = ast.Mult()
            elif resolved == "numpy.floor_divide":
                op = ast.FloorDiv()
            else:
                op = ast.Add()
            value = self.combine(op, left, right)
            return replace(value, traits=frozenset({TRAIT_ARRAY}))
        if resolved == "float":
            return NumValue(dtypes=frozenset({DT_FLOAT}))
        if resolved in ("int", "math.floor", "math.ceil", "round"):
            arg = self.eval_value(call.args[0], env) if call.args else UNKNOWN
            return NumValue(
                dtypes=frozenset({DT_INT}), lo=arg.lo, hi=arg.hi,
                origins=arg.origins,
            )
        if resolved == "len":
            return NumValue(dtypes=frozenset({DT_INT}), lo=0)
        if resolved in ("min", "max") and call.args:
            value = UNKNOWN
            for arg in call.args:
                value = value.join(self.eval_value(arg, env))
            return replace(value, traits=frozenset())
        # Method calls on a tracked value.
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = self.eval_value(func.value, env)
            label = _attr_chain(func.value) or "<array>"
            if func.attr == "astype":
                declared = _dtype_from_expr(
                    call.args[0] if call.args else _keyword(call, "dtype"),
                    self.aliases,
                )
                return NumValue(
                    dtypes=(
                        frozenset({declared})
                        if declared is not None
                        else frozenset()
                    ),
                    lo=receiver.lo,
                    hi=receiver.hi,
                    traits=frozenset({TRAIT_ARRAY}),
                    origins=receiver.origins,
                )
            if func.attr == "copy" and receiver.is_array:
                return NumValue(
                    dtypes=receiver.dtypes, lo=receiver.lo, hi=receiver.hi,
                    traits=frozenset({TRAIT_ARRAY}),
                    origins=receiver.origins,
                )
            if func.attr in _VIEW_METHODS and receiver.is_array:
                return replace(
                    receiver,
                    traits=receiver.traits | frozenset({TRAIT_VIEW}),
                    bases=receiver.bases | frozenset({label}),
                )
            if func.attr == "sum" and receiver.is_array:
                dtypes = frozenset(
                    DT_INT64 if dtype in (DT_BOOL, DT_INT) else dtype
                    for dtype in receiver.dtypes
                )
                return NumValue(
                    dtypes=dtypes, lo=receiver.lo,
                    origins=receiver.origins,
                )
            if func.attr == "tolist":
                return UNKNOWN
        return UNKNOWN

    # -- transfer / fixed point ------------------------------------------

    def _transfer(self, node: CFGNode, env: Env) -> Env:
        stmt = node.stmt
        if stmt is None:
            return env
        updates: Dict[str, NumValue] = {}
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.NamedExpr) and isinstance(
                sub.target, ast.Name
            ):
                updates[sub.target.id] = self.eval_value(sub.value, env)
        if isinstance(stmt, ast.Assign):
            value = self.eval_value(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    updates[target.id] = value
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            updates[element.id] = UNKNOWN
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                updates[stmt.target.id] = self.eval_value(stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                before = _env_get(env, stmt.target.id)
                value = self.combine(
                    stmt.op, before, self.eval_value(stmt.value, env)
                )
                updates[stmt.target.id] = value
        elif isinstance(stmt, (ast.For, ast.AsyncFor)) and node.kind == "loop":
            iter_value = self.eval_value(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                if iter_value.is_array:
                    updates[stmt.target.id] = NumValue(
                        dtypes=iter_value.dtypes,
                        lo=iter_value.lo,
                        hi=iter_value.hi,
                        origins=iter_value.origins,
                    )
                else:
                    updates[stmt.target.id] = UNKNOWN
            else:
                for sub in ast.walk(stmt.target):
                    if isinstance(sub, ast.Name):
                        updates[sub.id] = UNKNOWN
        elif isinstance(stmt, (ast.With, ast.AsyncWith)) and (
            node.kind == "with"
        ):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    updates[item.optional_vars.id] = UNKNOWN
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                updates[stmt.name] = UNKNOWN
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            updates[stmt.name] = UNKNOWN
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name != "*":
                    updates[alias.asname or alias.name.split(".")[0]] = (
                        UNKNOWN
                    )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    updates[target.id] = UNKNOWN
        if not updates:
            return env
        return _env_set(env, updates)

    def _solve(self) -> Solution[Env]:
        problem: DataflowProblem[Env] = DataflowProblem(
            direction="forward",
            boundary=(),
            bottom=(),
            transfer=self._transfer,
            join=_numeric_env_join,
        )
        return solve(self.cfg, problem)

    # -- queries and witnesses -------------------------------------------

    def env_before(self, node_id: int) -> Env:
        return self.solution.inputs[node_id]

    def value_before(self, node_id: int, name: str) -> NumValue:
        return _env_get(self.env_before(node_id), name)

    def def_chain(
        self, node_id: int, name: str, max_depth: int = 8
    ) -> List[Tuple[int, int, str]]:
        """Definition-chain witness: where ``name`` last got its value,
        chased backwards through contributing variables."""
        steps: List[Tuple[int, int, str]] = []
        visited: Set[Tuple[int, str]] = set()

        def resolve(at_node: int, var: str, depth: int) -> None:
            if depth > max_depth or (at_node, var) in visited:
                return
            visited.add((at_node, var))
            reaching_in = self.reaching.inputs[at_node]
            candidates = sorted(
                def_node
                for fact_var, def_node in reaching_in
                if fact_var == var
            )
            if not candidates:
                return
            def_node_id = candidates[-1]  # closest definition
            def_node = self.cfg.nodes[def_node_id]
            value = _definition_value(def_node, var)
            if value is not None:
                env = self.env_before(def_node_id)
                feeder = _interesting_name(value, env)
                if feeder is not None and feeder != var:
                    resolve(def_node_id, feeder, depth + 1)
                steps.append(
                    (
                        def_node.line,
                        def_node.col,
                        f"{var} = {_render(value)}",
                    )
                )

        resolve(node_id, name, 0)
        return steps


def _definition_value(node: CFGNode, var: str) -> Optional[ast.expr]:
    stmt = node.stmt
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == var:
                return stmt.value
        return None
    if isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.target.id == var:
            return stmt.value
        return None
    if isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name) and stmt.target.id == var:
            return stmt.value
        return None
    if isinstance(stmt, (ast.For, ast.AsyncFor)) and node.kind == "loop":
        names = [
            sub.id for sub in ast.walk(stmt.target)
            if isinstance(sub, ast.Name)
        ]
        if var in names:
            return stmt.iter
        return None
    if stmt is not None:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.NamedExpr)
                and isinstance(sub.target, ast.Name)
                and sub.target.id == var
            ):
                return sub.value
    return None


def _interesting_name(value: ast.expr, env: Env) -> Optional[str]:
    """A variable inside ``value`` worth chasing further back: one the
    environment knows something about."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if _env_get(env, sub.id) != UNKNOWN:
                return sub.id
    return None


def _numeric(analysis: UnitAnalysis) -> NumericAnalysis:
    """Per-unit NumericAnalysis, cached alongside the taint artifacts."""
    cached = getattr(analysis, "_numeric", None)
    if cached is None:
        cached = NumericAnalysis(analysis.cfg, analysis.aliases)
        analysis._numeric = cached  # type: ignore[attr-defined]
    return cached


def _uses_numpy(context: LintContext) -> bool:
    aliases = _import_aliases(context.tree)
    return "numpy" in aliases.values() or any(
        dotted.startswith("numpy.") for dotted in aliases.values()
    )


# --------------------------------------------------------------------------
# The rules
# --------------------------------------------------------------------------

_ARITH_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)


class NumericRule(FlowRule):
    """Base for the numeric rules: skips files that never import numpy."""

    kind = "numeric"

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not _uses_numpy(context):
            return
        for analysis in _unit_analyses(context):
            yield from self.check_unit(context, analysis)

    def check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def _operand_chain(
        self,
        numeric: NumericAnalysis,
        node: CFGNode,
        expr: ast.AST,
    ) -> List[Tuple[int, int, str]]:
        """Witness prefix: the def chain of the first tracked name in
        ``expr`` (empty when the expression is self-contained)."""
        env = numeric.env_before(node.id)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if _env_get(env, sub.id) != UNKNOWN:
                    return numeric.def_chain(node.id, sub.id)
        return []


class MixedSignednessRule(NumericRule):
    code = "RAP-LINT018"
    name = "mixed-signedness-promotion"
    scope = "core/, hardware/"
    catches = "uint64/int64 mixes that silently promote to float64"
    rationale = (
        "numpy has no integer type holding both uint64 and int64, so "
        "mixing them (uint64 bound columns against int64 counters) "
        "promotes BOTH sides to float64 — arithmetic and comparisons "
        "silently lose exactness above 2**53"
    )
    example = (
        "starts = np.zeros(8, dtype=np.uint64)\n"
        "counts = np.zeros(8, dtype=np.int64)\n"
        "gap = starts - counts            # float64, inexact past 2**53"
    )
    fix = (
        "keep one signedness per dataflow: cast explicitly at the "
        "boundary (starts.astype(np.int64), checked) or store the "
        "column in the signedness its consumers need"
    )

    _scopes = ("core/", "hardware/")

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        yield from super().check(context)

    def check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        numeric = _numeric(analysis)
        for node in analysis.cfg.code_nodes():
            env = numeric.env_before(node.id)
            seen: Set[int] = set()
            for expr in _executed_exprs(node):
                pairs: List[Tuple[ast.AST, ast.expr, ast.expr, str]] = []
                if isinstance(expr, ast.BinOp) and isinstance(
                    expr.op, _ARITH_OPS
                ):
                    pairs.append(
                        (expr, expr.left, expr.right, "arithmetic")
                    )
                elif isinstance(expr, ast.Compare) and len(
                    expr.comparators
                ) == 1:
                    pairs.append(
                        (expr, expr.left, expr.comparators[0], "comparison")
                    )
                for site, left_expr, right_expr, what in pairs:
                    if id(site) in seen:
                        continue
                    left = numeric.eval_value(left_expr, env)
                    right = numeric.eval_value(right_expr, env)
                    mixed = (
                        DT_UINT64 in left.dtypes
                        and DT_INT64 in right.dtypes
                    ) or (
                        DT_INT64 in left.dtypes
                        and DT_UINT64 in right.dtypes
                    )
                    if not mixed:
                        continue
                    seen.add(id(site))
                    trace = self._operand_chain(numeric, node, site)
                    line = getattr(site, "lineno", node.line)
                    trace.append(
                        (
                            line,
                            getattr(site, "col_offset", node.col),
                            f"uint64 meets int64 in {what}: "
                            f"{_source_line(context, line)}",
                        )
                    )
                    yield self.flow_violation(
                        context,
                        site,
                        f"uint64 and int64 mix in {what}; numpy promotes "
                        f"both to float64, losing exactness above 2**53 "
                        f"— cast one side explicitly",
                        trace,
                    )


class CounterFloatComparisonRule(NumericRule):
    code = "RAP-LINT019"
    name = "counter-float-comparison"
    scope = "core/"
    catches = "counter values compared under float64 array semantics"
    rationale = (
        "comparing int64 counter totals against float64 thresholds "
        "rounds both sides to 53-bit mantissas before comparing — the "
        "columnar fit mask's documented caveat; CPython compares "
        "int-vs-float exactly, numpy arrays do not"
    )
    example = (
        "totals = np.bincount(owners, weights=deposits)  # float64 sums\n"
        "ok = counts + totals <= threshold  # float64 compare of counters"
    )
    fix = (
        "compare on the integer side: accumulate deposits in int64 and "
        "test against math.floor(threshold) (for integral lhs, "
        "x <= t iff x <= floor(t)), or guard the cast with an explicit "
        "2**53 bound check"
    )

    _scopes = ("core/",)

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        yield from super().check(context)

    def check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        numeric = _numeric(analysis)
        for node in analysis.cfg.code_nodes():
            env = numeric.env_before(node.id)
            for expr in _executed_exprs(node):
                if not isinstance(expr, ast.Compare):
                    continue
                operands = [expr.left, *expr.comparators]
                values = [
                    numeric.eval_value(operand, env) for operand in operands
                ]
                if not any(value.is_array for value in values):
                    continue  # CPython scalar compares are exact
                counter_at = [
                    index
                    for index, value in enumerate(values)
                    if value.is_counter
                ]
                if not counter_at:
                    continue
                floaty = any(value.has_float() for value in values)
                if not floaty:
                    continue
                index = counter_at[0]
                trace = self._operand_chain(
                    numeric, node, operands[index]
                ) or self._operand_chain(numeric, node, expr)
                trace.append(
                    (
                        expr.lineno,
                        expr.col_offset,
                        "counter compared in float64: "
                        f"{_source_line(context, expr.lineno)}",
                    )
                )
                yield self.flow_violation(
                    context,
                    expr,
                    "counter value compared under float64 array "
                    "semantics; exactness is lost above 2**53 — compare "
                    "on the integer side (floor the threshold) or guard "
                    "the cast",
                    trace,
                )


class CounterAccumulationRule(NumericRule):
    code = "RAP-LINT020"
    name = "counter-accumulation-precision"
    scope = "core/"
    catches = "counter accumulation through float64, or provable overflow"
    rationale = (
        "counters accumulated through a float64 carrier (bincount "
        "weights, float augmented sums, astype(int64) casts back out) "
        "round above 2**53, and int64 products of large counters can "
        "overflow outright — both turn exact lower bounds into "
        "approximations"
    )
    example = (
        "totals = np.bincount(owners, weights=counts)  # float64 sums\n"
        "deposits = totals.astype(np.int64)  # rounded above 2**53"
    )
    fix = (
        "accumulate on the integer side (split weights into 32-bit "
        "halves for exact bincounts, or np.add.at into an int64 "
        "buffer); keep provably-large products in Python ints"
    )

    _scopes = ("core/",)

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        yield from super().check(context)

    def check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        numeric = _numeric(analysis)
        for node in analysis.cfg.code_nodes():
            env = numeric.env_before(node.id)
            stmt = node.stmt
            if isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                before = _env_get(env, stmt.target.id)
                after = numeric.combine(
                    stmt.op, before, numeric.eval_value(stmt.value, env)
                )
                # `before` may already include float at the fixed point
                # (the loop's back edge joins the post-increment state
                # in), so the guard is "some path still carries an exact
                # int here", not "no float yet".
                if (
                    before.is_counter
                    and before.dtypes & INT_DTYPES
                    and after.has_float()
                ):
                    trace = numeric.def_chain(node.id, stmt.target.id)
                    trace.append(
                        (
                            node.line,
                            node.col,
                            "float accumulation: "
                            f"{_source_line(context, node.line)}",
                        )
                    )
                    yield self.flow_violation(
                        context,
                        stmt,
                        f"counter {stmt.target.id!r} is accumulated in "
                        f"float; weight past 2**53 is rounded away — "
                        f"accumulate in exact ints",
                        trace,
                    )
                    continue
                if (
                    before.is_counter
                    and isinstance(stmt.op, ast.Mult)
                    and after.pure_int()
                    and after.hi is not None
                    and after.hi > INT64_MAX
                ):
                    yield self._overflow(context, numeric, node, stmt)
                    continue
            for expr in _executed_exprs(node):
                if not isinstance(expr, ast.Call):
                    continue
                yield from self._check_call(context, numeric, node, expr, env)
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.BinOp
            ) and isinstance(stmt.value.op, ast.Mult):
                value = numeric.eval_value(stmt.value, env)
                if (
                    value.is_counter
                    and value.pure_int()
                    and DT_INT64 in value.dtypes
                    and value.hi is not None
                    and value.hi > INT64_MAX
                ):
                    yield self._overflow(context, numeric, node, stmt)

    def _overflow(
        self,
        context: LintContext,
        numeric: NumericAnalysis,
        node: CFGNode,
        stmt: ast.stmt,
    ) -> Violation:
        trace = self._operand_chain(numeric, node, stmt)
        trace.append(
            (
                node.line,
                node.col,
                "int64 product may overflow: "
                f"{_source_line(context, node.line)}",
            )
        )
        return self.flow_violation(
            context,
            stmt,
            "counter product may exceed int64; the multiplication wraps "
            "— do the arithmetic in Python ints or split the factors",
            trace,
        )

    def _check_call(
        self,
        context: LintContext,
        numeric: NumericAnalysis,
        node: CFGNode,
        call: ast.Call,
        env: Env,
    ) -> Iterator[Violation]:
        resolved = _resolved_call_name(call, numeric.aliases)
        if resolved == "numpy.bincount":
            weights = _keyword(call, "weights")
            if weights is None and len(call.args) > 1:
                weights = call.args[1]
            if weights is None:
                return
            weight_value = numeric.eval_value(weights, env)
            # Weights provably below 2**32 are the documented
            # 32-bit-split idiom: each float64 partial sum stays exact
            # for any realistic window, so only counter weights that may
            # exceed that bound are flagged.
            if (
                weight_value.is_counter
                and weight_value.pure_int()
                and weight_value.may_exceed(2**32 - 1)
            ):
                trace = self._operand_chain(numeric, node, weights)
                trace.append(
                    (
                        call.lineno,
                        call.col_offset,
                        "bincount sums weights in float64: "
                        f"{_source_line(context, call.lineno)}",
                    )
                )
                yield self.flow_violation(
                    context,
                    call,
                    "np.bincount sums counter weights in float64 "
                    "(weighted bincount always returns float64); "
                    "deposits above 2**53 are rounded — split the "
                    "weights into 32-bit halves for exact integer sums",
                    trace,
                )
            return
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
        ):
            receiver = numeric.eval_value(func.value, env)
            declared = _dtype_from_expr(
                call.args[0] if call.args else _keyword(call, "dtype"),
                numeric.aliases,
            )
            if (
                receiver.is_counter
                and DT_FLOAT64 in receiver.dtypes
                and declared in (DT_INT64, DT_UINT64)
            ):
                trace = self._operand_chain(numeric, node, func.value)
                trace.append(
                    (
                        call.lineno,
                        call.col_offset,
                        "cast back from float64: "
                        f"{_source_line(context, call.lineno)}",
                    )
                )
                yield self.flow_violation(
                    context,
                    call,
                    "counter weight round-trips through float64 before "
                    "the astype(int64) cast; values above 2**53 come "
                    "back rounded — keep the accumulation integral",
                    trace,
                )


class AliasedViewMutationRule(NumericRule):
    code = "RAP-LINT021"
    name = "aliased-view-mutation"
    catches = "in-place mutation of a possibly-aliased array view"
    rationale = (
        "a slice/reshape/asarray result can share memory with its base "
        "array; mutating the view in place silently rewrites the base "
        "(and every other alias), which is how batch kernels corrupt "
        "columns they only meant to read"
    )
    example = (
        "window = counts[start:stop]     # view over counts\n"
        "window += deposits              # silently rewrites counts"
    )
    fix = (
        "copy before mutating (window = counts[start:stop].copy()) "
        "when scratch space is wanted, or mutate the base explicitly "
        "(counts[start:stop] += deposits) so the write is visible at "
        "the call site"
    )

    def check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        numeric = _numeric(analysis)
        for node in analysis.cfg.code_nodes():
            env = numeric.env_before(node.id)
            stmt = node.stmt

            def view_name(expr: ast.AST) -> Optional[str]:
                if isinstance(expr, ast.Name):
                    value = _env_get(env, expr.id)
                    if value.is_view:
                        return expr.id
                return None

            sites: List[Tuple[ast.AST, str, str]] = []
            if isinstance(stmt, ast.AugAssign):
                name = view_name(stmt.target)
                if name is not None:
                    sites.append(
                        (stmt, name, "augmented assignment writes through")
                    )
                elif isinstance(stmt.target, ast.Subscript):
                    name = view_name(stmt.target.value)
                    if name is not None:
                        sites.append(
                            (stmt, name, "indexed augmented write through")
                        )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        name = view_name(target.value)
                        if name is not None:
                            sites.append(
                                (stmt, name, "item assignment writes through")
                            )
            for expr in _executed_exprs(node):
                if not isinstance(expr, ast.Call):
                    continue
                func = expr.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in INPLACE_METHODS
                ):
                    name = view_name(func.value)
                    if name is not None:
                        sites.append(
                            (expr, name, f".{func.attr}() mutates")
                        )
                out = _keyword(expr, "out")
                if out is not None:
                    name = view_name(out)
                    if name is not None:
                        sites.append(
                            (expr, name, "ufunc out= writes through")
                        )
            reported: Set[str] = set()
            for site, name, what in sites:
                if name in reported:
                    continue
                reported.add(name)
                value = _env_get(env, name)
                bases = ", ".join(sorted(value.bases)) or "another array"
                trace = numeric.def_chain(node.id, name)
                line = getattr(site, "lineno", node.line)
                trace.append(
                    (
                        line,
                        getattr(site, "col_offset", node.col),
                        f"{what} a view of {bases}: "
                        f"{_source_line(context, line)}",
                    )
                )
                yield self.flow_violation(
                    context,
                    site,
                    f"{what} {name!r}, which may alias {bases}; in-place "
                    f"mutation of a view rewrites the base array — copy "
                    f"first or write through the base explicitly",
                    trace,
                )


class HotLoopAllocationRule(NumericRule):
    code = "RAP-LINT022"
    name = "hot-loop-allocation"
    scope = "hotspec functions"
    catches = "allocating numpy calls inside loops of hot functions"
    rationale = (
        "the hotspec (repro.checks.hotspec) names the per-event/batch "
        "critical path — columnar vector rounds, descent cache, TCAM "
        "batch match, ShardQueue drain; an np.zeros/array/concatenate "
        "per loop iteration there is a measured throughput regression, "
        "not a style nit"
    )
    example = (
        "def extend(self, values):       # hotspec entry\n"
        "    for chunk in chunks:\n"
        "        buf = np.zeros(n)       # fresh allocation per iteration"
    )
    fix = (
        "hoist the allocation out of the loop and reuse the buffer "
        "(fill/slice-assign per iteration), or batch the loop body "
        "into one vectorized call"
    )

    def check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        unit = analysis.unit
        if unit.is_module:
            return
        if not is_hot(
            context.relpath,
            unit.name,
            source_lines=context.source_lines,
            def_lineno=unit.node.lineno,
        ):
            return
        aliases = _import_aliases(context.tree)
        yield from self._scan(context, aliases, unit.node.body, None)

    def _scan(
        self,
        context: LintContext,
        aliases: Dict[str, str],
        body: Sequence[ast.stmt],
        loop: Optional[ast.stmt],
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested units are analysed separately
            if loop is not None:
                for header in self._stmt_exprs(stmt):
                    for sub in ast.walk(header):
                        if not isinstance(sub, ast.Call):
                            continue
                        resolved = _resolved_call_name(sub, aliases)
                        if resolved not in ALLOCATING_CALLS:
                            continue
                        trace = [
                            (
                                loop.lineno,
                                loop.col_offset,
                                "loop on the declared hot path: "
                                f"{_source_line(context, loop.lineno)}",
                            ),
                            (
                                sub.lineno,
                                sub.col_offset,
                                f"{resolved}() allocates every iteration: "
                                f"{_source_line(context, sub.lineno)}",
                            ),
                        ]
                        yield self.flow_violation(
                            context,
                            sub,
                            f"{resolved}() allocates inside a loop of a "
                            f"hotspec function; hoist the buffer out of "
                            f"the loop or vectorize the body",
                            trace,
                        )
            enclosing = (
                stmt
                if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While))
                else loop
            )
            for attr in ("body", "orelse", "finalbody"):
                inner_body = getattr(stmt, attr, None)
                if inner_body:
                    yield from self._scan(
                        context, aliases, inner_body, enclosing
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._scan(
                    context, aliases, handler.body, enclosing
                )

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
        """Expressions evaluated *at* this statement each time control
        reaches it (compound statements' bodies are recursed separately;
        a nested loop's header still runs once per outer iteration)."""
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt.iter
        elif isinstance(stmt, (ast.While, ast.If)):
            yield stmt.test
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                yield item.context_expr
        elif isinstance(stmt, ast.Try):
            return
        else:
            yield stmt


class ScalarLoopOverArrayRule(NumericRule):
    code = "RAP-LINT023"
    name = "scalar-loop-over-array"
    scope = "core/, hardware/"
    catches = "Python-scalar loops over arrays with vectorized equivalents"
    rationale = (
        "iterating a numpy array element by element pays a boxed-scalar "
        "conversion per item — two orders of magnitude over the ufunc "
        "that does the same reduction/transform in one call; in the "
        "kernel packages that is exactly the anti-pattern the columnar "
        "rewrite exists to remove"
    )
    example = (
        "deposits = np.bincount(owners, minlength=n)\n"
        "total = 0\n"
        "for d in deposits:\n"
        "    total += d                 # np.sum(deposits) in slow motion"
    )
    fix = (
        "use the vectorized equivalent (np.sum/np.cumsum/ufunc "
        "arithmetic/boolean masks); when per-item Python logic is "
        "genuinely needed, convert once with .tolist() so the loop "
        "works on unboxed CPython ints"
    )

    _scopes = ("core/", "hardware/")

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        yield from super().check(context)

    def check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        numeric = _numeric(analysis)
        for node in analysis.cfg.code_nodes():
            if node.kind != "loop":
                continue
            stmt = node.stmt
            if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                continue
            env = numeric.env_before(node.id)
            iter_expr = stmt.iter
            iter_value = numeric.eval_value(iter_expr, env)
            if not iter_value.is_array:
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            target = stmt.target.id
            used = self._target_arithmetic(stmt, target)
            if used is None:
                continue
            trace: List[Tuple[int, int, str]] = []
            if isinstance(iter_expr, ast.Name):
                trace = numeric.def_chain(node.id, iter_expr.id)
            trace.append(
                (
                    stmt.lineno,
                    stmt.col_offset,
                    "scalar loop over an array: "
                    f"{_source_line(context, stmt.lineno)}",
                )
            )
            trace.append(
                (
                    used.lineno,
                    used.col_offset,
                    f"per-element arithmetic on {target!r}: "
                    f"{_source_line(context, used.lineno)}",
                )
            )
            yield self.flow_violation(
                context,
                stmt,
                f"Python-scalar loop over a numpy array does boxed "
                f"per-element arithmetic on {target!r}; use the "
                f"vectorized equivalent (ufunc/reduction) or .tolist() "
                f"once",
                trace,
            )

    @staticmethod
    def _target_arithmetic(
        stmt: ast.stmt, target: str
    ) -> Optional[ast.AST]:
        """The first statement in the loop body doing arithmetic with
        the loop variable (accumulation, binop, comparison)."""
        for sub in ast.walk(stmt):
            if isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            uses_target = any(
                isinstance(name, ast.Name) and name.id == target
                for name in ast.walk(sub)
            )
            if not uses_target:
                continue
            if isinstance(sub, ast.AugAssign):
                return sub
            if isinstance(sub, (ast.BinOp, ast.Compare)):
                return sub
        return None


NUMERIC_RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        MixedSignednessRule(),
        CounterFloatComparisonRule(),
        CounterAccumulationRule(),
        AliasedViewMutationRule(),
        HotLoopAllocationRule(),
        ScalarLoopOverArrayRule(),
    )
}
