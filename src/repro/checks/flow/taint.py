"""Abstract interpretation over value *kinds*, plus witness traces.

The lattice is the powerset of a small set of kind tags, joined by
union, tracked per local variable:

* ``counter`` — values read from exact RAP counters (``.count``,
  ``._events``, ``.events``); the conservation / lower-bound guarantees
  only hold while these stay integers.
* ``float`` — float literals, true-division results, ``float()`` calls.
* ``rng`` — RNG objects constructed without an explicit seed (including
  seeds that are ``None`` via an alias, which the syntactic RAP-LINT001
  cannot see).
* ``clock`` — wall-clock reads (``time.time()`` and friends).
* ``node`` / ``children`` — references to tree nodes and to a node's
  live children list, obtained through attribute loads, subscripts, or
  iteration; mutating these outside the tree classes breaks the
  conservation proof exactly like the direct mutations RAP-LINT003
  bans.
* ``none`` — the literal ``None`` (bookkeeping for seed tracking).
* ``confined`` — values pinned to the current thread by a
  ``confine_to_current_thread()`` call (shard trees in the sharded
  runtime). The kind survives aliasing but is laundered by calls, so
  ``tree.clone()`` / snapshot-protocol copies are free to cross thread
  boundaries while the live tree is not; RAP-LINT013 consumes this.

Kinds propagate through assignments, unpacking-free aliases, arithmetic
(union of operand kinds, plus ``float`` across ``/``), conditional
expressions, and ``for``-iteration over children lists. Calls other
than the recognised constructors launder taint (their result kinds are
empty) — deliberately modest, and documented in docs/checks.md.

After the fixed point, :meth:`TaintAnalysis.trace` rebuilds a witness
path for "variable ``v`` carries kind ``k`` at node ``n``" by chasing
reaching definitions backwards to the statement that introduced the
kind. The trace is what the flow rules attach to violations as
``flow_trace``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .analyses import Definition, reaching_definitions
from .cfg import CFG, CFGNode
from .solver import DataflowProblem, Solution, env_join, solve

KIND_COUNTER = "counter"
KIND_FLOAT = "float"
KIND_RNG = "rng"
KIND_CLOCK = "clock"
KIND_NODE = "node"
KIND_CHILDREN = "children"
KIND_NONE = "none"
KIND_CONFINED = "confined"

ALL_KINDS = frozenset(
    {
        KIND_COUNTER,
        KIND_FLOAT,
        KIND_RNG,
        KIND_CLOCK,
        KIND_NODE,
        KIND_CHILDREN,
        KIND_NONE,
        KIND_CONFINED,
    }
)

#: Method that pins a tree backend to the calling thread, and its dual.
CONFINE_METHOD = "confine_to_current_thread"
UNCONFINE_METHOD = "unconfine"

#: Attributes that read an exact counter.
COUNTER_ATTRS = frozenset({"count", "_events", "events"})
#: Attributes that yield a tree-node reference.
NODE_ATTRS = frozenset({"root", "parent"})
#: Attribute holding a node's live children list.
CHILDREN_ATTR = "children"

#: Seedable RNG constructors (shared with RAP-LINT001's notion).
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
)

#: Wall-clock reads (shared with RAP-LINT005's notion).
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

Kinds = FrozenSet[str]
Env = Tuple[Tuple[str, Kinds], ...]  # sorted (name, kinds) pairs

_EMPTY: Kinds = frozenset()


def _env_get(env: Env, name: str) -> Kinds:
    for key, kinds in env:
        if key == name:
            return kinds
    return _EMPTY


def _env_set(env: Env, updates: Dict[str, Kinds]) -> Env:
    merged = dict(env)
    for name, kinds in updates.items():
        if kinds:
            merged[name] = kinds
        else:
            merged.pop(name, None)
    return tuple(sorted(merged.items()))


def _resolved_call_name(
    call: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    parts: List[str] = []
    node: ast.AST = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    dotted = ".".join(reversed(parts))
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


class TaintAnalysis:
    """Kind-tracking abstract interpretation for one CFG."""

    def __init__(self, cfg: CFG, aliases: Optional[Dict[str, str]] = None):
        self.cfg = cfg
        self.aliases = aliases or {}
        self.solution: Solution[Env] = self._solve()
        self.reaching: Solution[FrozenSet[Definition]] = (
            reaching_definitions(cfg)
        )

    # -- expression evaluation -------------------------------------------

    def eval_kinds(self, expr: Optional[ast.AST], env: Env) -> Kinds:
        """Abstract value of ``expr`` under the environment."""
        if expr is None:
            return _EMPTY
        if isinstance(expr, ast.Name):
            return _env_get(env, expr.id)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, float):
                return frozenset({KIND_FLOAT})
            if expr.value is None:
                return frozenset({KIND_NONE})
            return _EMPTY
        if isinstance(expr, ast.Attribute):
            if expr.attr in COUNTER_ATTRS:
                return frozenset({KIND_COUNTER})
            if expr.attr == CHILDREN_ATTR:
                return frozenset({KIND_CHILDREN})
            if expr.attr in NODE_ATTRS:
                return frozenset({KIND_NODE})
            return _EMPTY
        if isinstance(expr, ast.Subscript):
            base = self.eval_kinds(expr.value, env)
            if KIND_CHILDREN in base:
                return frozenset({KIND_NODE})
            return _EMPTY
        if isinstance(expr, ast.BinOp):
            kinds = self.eval_kinds(expr.left, env) | self.eval_kinds(
                expr.right, env
            )
            kinds -= frozenset({KIND_NONE})
            if isinstance(expr.op, ast.Div):
                kinds |= frozenset({KIND_FLOAT})
            return kinds
        if isinstance(expr, ast.UnaryOp):
            return self.eval_kinds(expr.operand, env)
        if isinstance(expr, ast.BoolOp):
            kinds: Kinds = _EMPTY
            for value in expr.values:
                kinds |= self.eval_kinds(value, env)
            return kinds
        if isinstance(expr, ast.IfExp):
            return self.eval_kinds(expr.body, env) | self.eval_kinds(
                expr.orelse, env
            )
        if isinstance(expr, (ast.NamedExpr, ast.Await, ast.Starred)):
            return self.eval_kinds(expr.value, env)
        if isinstance(expr, ast.Compare):
            return _EMPTY  # comparisons yield plain bools
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        return _EMPTY

    def _eval_call(self, call: ast.Call, env: Env) -> Kinds:
        resolved = _resolved_call_name(call, self.aliases)
        if resolved is None:
            return _EMPTY
        if resolved == "float":
            return frozenset({KIND_FLOAT})
        if resolved in CLOCK_CALLS:
            return frozenset({KIND_CLOCK})
        if resolved in ("reversed", "iter"):
            # Non-copying views over the same live children list (so a
            # for-loop over them still yields real node references).
            # Copying calls (list/sorted/tuple) drop the kind: mutating
            # a copy cannot corrupt the tree.
            if call.args:
                inner = self.eval_kinds(call.args[0], env)
                return inner & frozenset({KIND_CHILDREN})
            return _EMPTY
        if resolved in RNG_CONSTRUCTORS:
            if self._rng_call_is_unseeded(call, env):
                return frozenset({KIND_RNG})
            return _EMPTY
        return _EMPTY

    def _rng_call_is_unseeded(self, call: ast.Call, env: Env) -> bool:
        seed_exprs: List[ast.expr] = list(call.args)
        seed_exprs.extend(
            keyword.value
            for keyword in call.keywords
            if keyword.arg in (None, "seed", "x")
        )
        if not seed_exprs:
            return True
        seed = seed_exprs[0]
        if isinstance(seed, ast.Constant) and seed.value is None:
            return True
        return KIND_NONE in self.eval_kinds(seed, env)

    # -- the fixed point --------------------------------------------------

    def _transfer(self, node: CFGNode, env: Env) -> Env:
        stmt = node.stmt
        if stmt is None:
            return env
        updates: Dict[str, Kinds] = {}
        # Walrus bindings anywhere in the node's expressions.
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.NamedExpr) and isinstance(
                sub.target, ast.Name
            ):
                updates[sub.target.id] = self.eval_kinds(sub.value, env)
        if isinstance(stmt, ast.Assign):
            value_kinds = self.eval_kinds(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    updates[target.id] = value_kinds
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            updates[element.id] = _EMPTY
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                updates[stmt.target.id] = self.eval_kinds(stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                kinds = _env_get(env, stmt.target.id) | self.eval_kinds(
                    stmt.value, env
                )
                if isinstance(stmt.op, ast.Div):
                    kinds |= frozenset({KIND_FLOAT})
                updates[stmt.target.id] = kinds - frozenset({KIND_NONE})
        elif isinstance(stmt, (ast.For, ast.AsyncFor)) and node.kind == "loop":
            iter_kinds = self.eval_kinds(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                updates[stmt.target.id] = (
                    frozenset({KIND_NODE})
                    if KIND_CHILDREN in iter_kinds
                    else _EMPTY
                )
            else:
                for name in _nested_names(stmt.target):
                    updates[name] = _EMPTY
        elif isinstance(stmt, (ast.With, ast.AsyncWith)) and (
            node.kind == "with"
        ):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    updates[item.optional_vars.id] = _EMPTY
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                updates[stmt.name] = _EMPTY
        elif isinstance(
            stmt,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            updates[stmt.name] = _EMPTY
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name != "*":
                    updates[alias.asname or alias.name.split(".")[0]] = (
                        _EMPTY
                    )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    updates[target.id] = _EMPTY
        # Confinement transitions: ``x.confine_to_current_thread()`` pins
        # ``x`` to this thread, ``x.unconfine()`` lifts the pin. These are
        # Expr statements, not definitions, so they are handled after the
        # assignment dispatch (and win over it on the rare shared target).
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute) or not isinstance(
                func.value, ast.Name
            ):
                continue
            receiver = func.value.id
            if func.attr == CONFINE_METHOD:
                base = updates.get(receiver, _env_get(env, receiver))
                updates[receiver] = base | frozenset({KIND_CONFINED})
            elif func.attr == UNCONFINE_METHOD:
                base = updates.get(receiver, _env_get(env, receiver))
                updates[receiver] = base - frozenset({KIND_CONFINED})
        if not updates:
            return env
        return _env_set(env, updates)

    def _solve(self) -> Solution[Env]:
        problem: DataflowProblem[Env] = DataflowProblem(
            direction="forward",
            boundary=(),
            bottom=(),
            transfer=self._transfer,
            join=env_join,
        )
        return solve(self.cfg, problem)

    # -- public queries ---------------------------------------------------

    def env_before(self, node_id: int) -> Env:
        return self.solution.inputs[node_id]

    def kinds_before(self, node_id: int, name: str) -> Kinds:
        return _env_get(self.env_before(node_id), name)

    # -- witness reconstruction -------------------------------------------

    def trace(
        self, node_id: int, name: str, kind: str, max_depth: int = 12
    ) -> List[Tuple[int, int, str]]:
        """Origin-to-use steps explaining why ``name`` carries ``kind``.

        Each step is ``(line, column, event)``. The final use step is
        appended by the rule; this returns the definition chain.
        """
        steps: List[Tuple[int, int, str]] = []
        visited: Set[Tuple[int, str]] = set()

        def resolve(at_node: int, var: str, depth: int) -> None:
            if depth > max_depth or (at_node, var) in visited:
                return
            visited.add((at_node, var))
            reaching_in = self.reaching.inputs[at_node]
            candidates = sorted(
                (def_node for fact_var, def_node in reaching_in
                 if fact_var == var),
            )
            for def_node_id in candidates:
                def_node = self.cfg.nodes[def_node_id]
                value = _definition_value(def_node, var)
                env = self.env_before(def_node_id)
                if value is None:
                    continue
                if kind not in self.eval_kinds(value, env) and not (
                    isinstance(def_node.stmt, ast.AugAssign)
                    and isinstance(def_node.stmt.op, ast.Div)
                    and kind == KIND_FLOAT
                ):
                    # Special case: for-loop targets over children get
                    # the node kind from the iterable, not the "value".
                    if not (
                        kind == KIND_NODE
                        and isinstance(
                            def_node.stmt, (ast.For, ast.AsyncFor)
                        )
                        and KIND_CHILDREN
                        in self.eval_kinds(value, env)
                    ):
                        continue
                # Chase the contributing variable one hop further back.
                feeder = _contributing_name(value, env, kind)
                if feeder is not None:
                    resolve(def_node_id, feeder, depth + 1)
                steps.append(
                    (
                        def_node.line,
                        def_node.col,
                        _describe_definition(def_node, var),
                    )
                )
                return
        resolve(node_id, name, 0)
        return steps


def _nested_names(target: ast.expr) -> List[str]:
    names: List[str] = []
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
    return names


def _definition_value(
    node: CFGNode, var: str
) -> Optional[ast.expr]:
    """The RHS expression a definition of ``var`` evaluated, if any."""
    stmt = node.stmt
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == var:
                return stmt.value
        return None
    if isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.target.id == var:
            return stmt.value
        return None
    if isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name) and stmt.target.id == var:
            return stmt.value
        return None
    if isinstance(stmt, (ast.For, ast.AsyncFor)) and node.kind == "loop":
        if var in _nested_names(stmt.target):
            return stmt.iter
        return None
    for sub in ast.walk(stmt) if stmt is not None else ():
        if (
            isinstance(sub, ast.NamedExpr)
            and isinstance(sub.target, ast.Name)
            and sub.target.id == var
        ):
            return sub.value
    return None


def _contributing_name(
    value: ast.expr, env: Env, kind: str
) -> Optional[str]:
    """A variable inside ``value`` that already carried ``kind``."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if kind in _env_get(env, sub.id):
                return sub.id
    return None


def _describe_definition(node: CFGNode, var: str) -> str:
    stmt = node.stmt
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return f"{var} bound by iteration over {_render(stmt.iter)}"
    value = _definition_value(node, var)
    if value is not None:
        return f"{var} = {_render(value)}"
    return f"{var} defined here"


def _render(expr: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = f"<{type(expr).__name__}>"
    return text if len(text) <= limit else text[: limit - 3] + "..."
