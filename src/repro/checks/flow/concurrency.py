"""Concurrency rules RAP-LINT013..017: confinement, locks, shared state.

These rules combine the intraprocedural dataflow engine (CFG + taint
lattice, :mod:`repro.checks.flow`) with the per-module interprocedural
call graph (:mod:`repro.checks.callgraph`). They statically enforce the
invariants the sharded runtime relies on — the same invariants
:class:`repro.checks.sanitizer.RapSanitizer` asserts dynamically:

* **RAP-LINT013 confined-tree-escape** — a value pinned by
  ``confine_to_current_thread()`` (taint kind ``confined``) is published
  across a thread boundary — passed to ``threading.Thread``/
  ``.submit()``, ``.put()`` onto a queue, stored into a shared
  attribute/container — without going through the snapshot/fold
  protocol (``clone()``/``combine_many`` launder the kind).
* **RAP-LINT014 lock-without-release** — a raw ``.acquire()`` with some
  CFG path to the function exit that never releases (forward dataflow,
  same engine as RAP-LINT010's open-handle tracking).
* **RAP-LINT015 lock-order-inversion** — two locks acquired in both
  orders across the module, through lexical nesting or resolvable call
  chains (deadlock precondition; witness shows both chains).
* **RAP-LINT016 blocking-under-lock** — a blocking call (``.wait()``,
  ``.join()``, queue ``put``/``get``, sleeps, IO) while holding a lock.
  Waiting on a ``threading.Condition`` constructed *from* the held lock
  is the documented protocol (the wait releases it) and is exempt.
* **RAP-LINT017 unlocked-shared-buffer** — a ``self.<attr>`` numpy
  buffer touched from both a thread-entry method (resolved through the
  call graph) and coordinator methods, mutated in place with no lock
  held.

Every violation carries a ``flow_trace`` witness rendered by
``rap lint --explain`` — the confine site and alias chain for 013, both
acquisition chains for 015, the allocation/spawn/mutation triple for
017.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..callgraph import (
    BlockingSite,
    CallGraph,
    FunctionSummary,
    build_callgraph,
    canonical_name,
    is_lock_name,
)
from ..lint.rules import (
    LintContext,
    Rule,
    Violation,
    _dotted,
    _resolved_call_name,
)
from .cfg import CFGNode
from .rules import (
    FlowRule,
    UnitAnalysis,
    _executed_exprs,
    _source_line,
    _steps,
    _unit_analyses,
)
from .solver import DataflowProblem, solve
from .taint import CONFINE_METHOD, KIND_CONFINED

#: Functions that *implement* a lock abstraction delegate acquire and
#: release across method boundaries by design; RAP-LINT014 skips them.
_LOCK_PROTOCOL_METHODS = frozenset(
    {"acquire", "release", "locked", "__enter__", "__exit__"}
)

Steps = List[Tuple[int, int, str]]


def _callgraph(context: LintContext) -> CallGraph:
    """Per-file call graph, cached on the context across rules."""
    cached = getattr(context, "_callgraph", None)
    if cached is not None:
        return cached
    graph = build_callgraph(context.tree)
    context._callgraph = graph  # type: ignore[attr-defined]
    return graph


def _names_in_args(call: ast.Call) -> Iterator[ast.Name]:
    """Every plain-name load appearing in a call's arguments."""
    roots: List[ast.AST] = list(call.args)
    roots.extend(keyword.value for keyword in call.keywords)
    for root in roots:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                yield sub


class ConfinedEscapeRule(FlowRule):
    code = "RAP-LINT013"
    name = "confined-tree-escape"
    kind = "concurrency"
    catches = (
        "a thread-confined tree published across a thread boundary"
    )
    rationale = (
        "a shard tree pinned by confine_to_current_thread() is owned by "
        "exactly one worker; handing the live object to another thread "
        "(Thread args, executor submit, queue put, shared attribute) "
        "races its mutations against the owner and voids the "
        "conservation proof — only snapshot/fold copies may cross"
    )
    example = (
        "tree.confine_to_current_thread()\n"
        "worker = threading.Thread(target=run, args=(tree,))"
    )
    fix = (
        "publish a copy instead: tree.clone() or the snapshot/fold "
        "protocol (combine_many folds per-thread trees on an epoch "
        "boundary); or unconfine() first if ownership really transfers"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for analysis in _unit_analyses(context):
            confine_sites = self._confine_sites(analysis)
            if not confine_sites:
                continue
            taint = analysis.taint
            for node in analysis.cfg.code_nodes():
                seen: Set[Tuple[str, str]] = set()
                for name_node, how in self._publications(
                    node, analysis.aliases
                ):
                    name = name_node.id
                    if (name, how) in seen:
                        continue
                    if KIND_CONFINED not in taint.kinds_before(
                        node.id, name
                    ):
                        continue
                    seen.add((name, how))
                    yield self._escape(
                        context, analysis, node, name_node, name, how,
                        confine_sites,
                    )

    def _escape(
        self,
        context: LintContext,
        analysis: UnitAnalysis,
        node: CFGNode,
        name_node: ast.Name,
        name: str,
        how: str,
        confine_sites: Dict[str, Tuple[int, int]],
    ) -> Violation:
        trace: Steps = []
        site = confine_sites.get(name) or next(iter(confine_sites.values()))
        trace.append(
            (
                site[0],
                site[1],
                f"pinned to its worker thread: "
                f"{_source_line(context, site[0])}",
            )
        )
        trace.extend(analysis.taint.trace(node.id, name, KIND_CONFINED))
        line = getattr(name_node, "lineno", node.line)
        trace.append(
            (
                line,
                getattr(name_node, "col_offset", node.col),
                f"escape: {_source_line(context, line)}",
            )
        )
        return self.flow_violation(
            context,
            name_node,
            f"confined tree {name!r} {how} without going through the "
            f"snapshot/fold protocol; publish a clone() or snapshot "
            f"instead",
            trace,
        )

    @staticmethod
    def _confine_sites(
        analysis: UnitAnalysis,
    ) -> Dict[str, Tuple[int, int]]:
        sites: Dict[str, Tuple[int, int]] = {}
        for node in analysis.cfg.code_nodes():
            for expr in _executed_exprs(node):
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == CONFINE_METHOD
                    and isinstance(expr.func.value, ast.Name)
                ):
                    sites.setdefault(
                        expr.func.value.id,
                        (expr.lineno, expr.col_offset),
                    )
        return sites

    def _publications(
        self, node: CFGNode, aliases: Dict[str, str]
    ) -> Iterator[Tuple[ast.Name, str]]:
        for expr in _executed_exprs(node):
            if isinstance(expr, ast.Call):
                yield from self._call_publications(expr, aliases)
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                shared = self._shared_store_target(target)
                if shared is None:
                    continue
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Load
                    ):
                        yield sub, f"stored into shared location {shared}"

    @staticmethod
    def _shared_store_target(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Attribute):
            return _dotted(target) or "<attribute>"
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            base = _dotted(target.value) or "<attribute>"
            return f"{base}[...]"
        return None

    @staticmethod
    def _call_publications(
        call: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Tuple[ast.Name, str]]:
        resolved = _resolved_call_name(call, aliases)
        if resolved == "threading.Thread":
            for name in _names_in_args(call):
                yield name, "passed into threading.Thread(...)"
            return
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "submit":
            for name in _names_in_args(call):
                yield name, "submitted to an executor"
        elif func.attr in ("put", "put_nowait"):
            for name in _names_in_args(call):
                yield name, f"published via .{func.attr}() onto a queue"
        elif func.attr == "append" and isinstance(
            func.value, ast.Attribute
        ):
            container = _dotted(func.value) or "<attribute>"
            for name in _names_in_args(call):
                yield name, f"appended to shared container {container}"


class LockBalanceRule(FlowRule):
    code = "RAP-LINT014"
    name = "lock-without-release"
    kind = "concurrency"
    catches = "a raw .acquire() some CFG path never releases"
    rationale = (
        "a lock acquired with .acquire() and not released on every "
        "path to the exit (early return, exception hop, missed branch) "
        "deadlocks the next acquirer; `with lock:` makes the balance "
        "structural, raw acquire leaves it to path coverage"
    )
    example = (
        "lock.acquire()\n"
        "if not ready:\n"
        "    return None               # exits still holding the lock\n"
        "lock.release()"
    )
    fix = (
        "prefer `with lock:`; if the hold region genuinely spans "
        "scopes, release in a try/finally so every path (including "
        "exceptions) releases"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        bindings = _callgraph(context).bindings
        for analysis in _unit_analyses(context):
            leaf = analysis.unit.name.rsplit(".", 1)[-1]
            if leaf in _LOCK_PROTOCOL_METHODS:
                continue  # lock wrappers delegate acquire/release by design
            yield from self._check_unit(context, analysis, bindings)

    def _check_unit(
        self, context: LintContext, analysis: UnitAnalysis, bindings
    ) -> Iterator[Violation]:
        cfg = analysis.cfg
        class_name = (
            analysis.unit.classes[-1] if analysis.unit.classes else None
        )

        def lock_call(node: CFGNode, method: str) -> Optional[str]:
            for expr in _executed_exprs(node):
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == method
                ):
                    canon = canonical_name(
                        _dotted(expr.func.value), class_name
                    )
                    if is_lock_name(canon, bindings):
                        return canon
            return None

        acquire_sites: Dict[int, str] = {}
        for node in cfg.code_nodes():
            name = lock_call(node, "acquire")
            if name is not None:
                acquire_sites[node.id] = name
        if not acquire_sites:
            return

        Env = Tuple[Tuple[str, frozenset], ...]

        def transfer(node: CFGNode, env: Env) -> Env:
            if node.stmt is None:
                return env
            state = {name: sites for name, sites in env}
            released = lock_call(node, "release")
            if released is not None:
                state.pop(released, None)
            acquired = acquire_sites.get(node.id)
            if acquired is not None:
                state[acquired] = (
                    state.get(acquired, frozenset()) | {node.id}
                )
            return tuple(sorted(state.items()))

        def join(values) -> Env:
            merged: Dict[str, frozenset] = {}
            for env in values:
                for name, sites in env:
                    merged[name] = merged.get(name, frozenset()) | sites
            return tuple(sorted(merged.items()))

        problem: DataflowProblem = DataflowProblem(
            direction="forward",
            boundary=(),
            bottom=(),
            transfer=transfer,
            join=join,
        )
        solution = solve(cfg, problem)
        for name, sites in sorted(dict(solution.inputs[cfg.exit]).items()):
            for site_id in sorted(sites):
                site = cfg.nodes[site_id]
                trace = [
                    (
                        site.line,
                        site.col,
                        f"acquired: {_source_line(context, site.line)}",
                    ),
                    (
                        site.line,
                        site.col,
                        f"a path reaches the exit of "
                        f"{analysis.unit.name!r} still holding {name}",
                    ),
                ]
                yield self.flow_violation(
                    context,
                    site.stmt if site.stmt is not None else ast.Pass(),
                    f"lock {name} is acquired here but not released on "
                    f"every path to the exit; use `with` or release in "
                    f"a finally",
                    trace,
                )


class LockOrderRule(Rule):
    code = "RAP-LINT015"
    name = "lock-order-inversion"
    kind = "concurrency"
    catches = "two locks acquired in both orders across the module"
    rationale = (
        "two threads taking the same pair of locks in opposite orders "
        "is the classic deadlock precondition; the inversion usually "
        "hides across function boundaries, so the check follows "
        "resolvable call chains, not just lexical nesting"
    )
    example = (
        "def fold():                       # A then B\n"
        "    with state_lock:\n"
        "        with merge_lock: ...\n"
        "def audit():                      # B then A — inversion\n"
        "    with merge_lock:\n"
        "        with state_lock: ..."
    )
    fix = (
        "pick one global acquisition order (document it where the "
        "locks are created) and restructure the latecomer; or collapse "
        "the pair into one lock if they always guard the same state"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        graph = _callgraph(context)
        for conflict in graph.lock_order_conflicts():
            steps: Steps = list(conflict.forward)
            steps.append(
                (
                    conflict.reverse[0][0],
                    conflict.reverse[0][1],
                    "but elsewhere, in the opposite order:",
                )
            )
            steps.extend(conflict.reverse)
            yield Violation(
                rule=self.code,
                path=context.path,
                line=conflict.line,
                column=conflict.col,
                message=(
                    f"locks {conflict.first} and {conflict.second} are "
                    f"acquired in both orders in this module; a "
                    f"consistent global order is required to rule out "
                    f"deadlock"
                ),
                flow_trace=_steps(steps),
            )


class BlockingUnderLockRule(Rule):
    code = "RAP-LINT016"
    name = "blocking-under-lock"
    kind = "concurrency"
    catches = "a blocking call while holding a lock"
    rationale = (
        "a thread that blocks (.join(), queue put/get, sleeps, IO, "
        "waiting on an unrelated condition) while holding a "
        "ShardQueue/ingest lock stalls every producer behind that "
        "lock, and deadlocks outright if the thing waited on needs the "
        "same lock; Condition.wait on the lock's own condition is the "
        "sanctioned exception because the wait releases it"
    )
    example = (
        "with self._ingest_lock:\n"
        "    self._flush_thread.join()  # blocks all producers"
    )
    fix = (
        "move the blocking call outside the lock region (copy what it "
        "needs under the lock, wait after releasing); if holding the "
        "lock is the point — e.g. a quiesce barrier — justify with a "
        "per-code noqa explaining why it cannot deadlock"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        graph = _callgraph(context)
        reported: Set[Tuple[int, int]] = set()
        for qualname in sorted(graph.functions):
            summary = graph.functions[qualname]
            for site in summary.blocking:
                held = {lock.lock for lock in site.held}
                if not held or self._exempt(graph, site, held):
                    continue
                if (site.line, site.col) in reported:
                    continue
                reported.add((site.line, site.col))
                yield self._violation(
                    context, summary, site, site.held, chain=()
                )
            for call in summary.calls:
                if not call.held:
                    continue
                for callee in graph.resolve(summary, call):
                    for site, chain in graph.transitive_blocking(callee):
                        held = {lock.lock for lock in call.held}
                        held |= {lock.lock for lock in site.held}
                        if self._exempt(graph, site, held):
                            continue
                        if (site.line, site.col) in reported:
                            continue
                        reported.add((site.line, site.col))
                        yield self._violation(
                            context,
                            summary,
                            site,
                            call.held,
                            chain=(call,) + chain,
                        )

    @staticmethod
    def _exempt(
        graph: CallGraph, site: BlockingSite, held: Set[str]
    ) -> bool:
        if not site.what.endswith((".wait()", ".wait_for()")):
            return False
        receiver = site.receiver
        if receiver is None:
            return False
        tie = graph.bindings.condition_ties.get(receiver)
        return receiver in held or (tie is not None and tie in held)

    def _violation(
        self,
        context: LintContext,
        summary: FunctionSummary,
        site: BlockingSite,
        held,
        chain,
    ) -> Violation:
        locks = ", ".join(sorted({lock.lock for lock in held}))
        steps: Steps = [
            (
                lock.line,
                lock.col,
                f"{summary.qualname}: acquires {lock.lock}",
            )
            for lock in held
        ]
        steps.extend(
            (hop.line, hop.col, f"calls {hop.text} while holding {locks}")
            for hop in chain
        )
        steps.append(
            (
                site.line,
                site.col,
                f"blocks: {_source_line(context, site.line)}",
            )
        )
        return Violation(
            rule=self.code,
            path=context.path,
            line=site.line,
            column=site.col,
            message=(
                f"blocking call {site.what} while holding {locks}; "
                f"move the wait outside the lock region or justify "
                f"with a per-code noqa"
            ),
            flow_trace=_steps(steps),
        )


class SharedBufferRule(Rule):
    code = "RAP-LINT017"
    name = "unlocked-shared-buffer"
    kind = "concurrency"
    catches = "cross-thread numpy buffer mutation outside any lock"
    rationale = (
        "a self.<attr> numpy buffer touched by both worker threads "
        "(methods reachable from a Thread/submit target) and the "
        "coordinator, and mutated in place with no lock held, is a "
        "data race: element writes are not atomic and torn counts "
        "break the exact-counter invariants"
    )
    example = (
        "self._counts = np.zeros(n)        # shared buffer\n"
        "threading.Thread(target=self._loop).start()\n"
        "...\n"
        "self._counts[shard] += 1          # unlocked, both threads"
    )
    fix = (
        "guard every in-place mutation with the owning lock (`with "
        "self._lock:`), give each thread its own buffer and fold on an "
        "epoch boundary (the shard-tree pattern), or use a queue"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        graph = _callgraph(context)
        spawned = graph.spawned_classes()
        for class_name in sorted(graph.bindings.buffers):
            spawn = spawned.get(class_name)
            if spawn is None:
                continue
            yield from self._check_class(context, graph, class_name, spawn)

    def _check_class(
        self, context: LintContext, graph: CallGraph, class_name, spawn
    ) -> Iterator[Violation]:
        worker = graph.worker_methods(class_name)
        members = [
            summary
            for summary in graph.functions.values()
            if summary.class_name == class_name
            and summary.leaf_name != "__init__"
        ]
        touched: Dict[str, Set[str]] = {}
        for summary in members:
            side = "worker" if summary.qualname in worker else "main"
            for attr in summary.buffer_touches:
                touched.setdefault(attr, set()).add(side)
        shared = {
            attr for attr, sides in touched.items() if len(sides) == 2
        }
        if not shared:
            return
        allocations = graph.bindings.buffers[class_name]
        for summary in sorted(members, key=lambda s: s.line):
            side = "worker" if summary.qualname in worker else "coordinator"
            for mutation in summary.buffer_mutations:
                if mutation.attr not in shared or mutation.held:
                    continue
                alloc_line = allocations.get(mutation.attr, summary.line)
                steps = [
                    (
                        alloc_line,
                        0,
                        f"self.{mutation.attr} allocated as a numpy "
                        f"buffer shared across {class_name}'s threads",
                    ),
                    (
                        spawn.line,
                        spawn.col,
                        f"{class_name} crosses a thread boundary here "
                        f"({spawn.kind})",
                    ),
                    (
                        mutation.line,
                        mutation.col,
                        f"unlocked {mutation.how} on the {side} side: "
                        f"{_source_line(context, mutation.line)}",
                    ),
                ]
                yield Violation(
                    rule=self.code,
                    path=context.path,
                    line=mutation.line,
                    column=mutation.col,
                    message=(
                        f"in-place {mutation.how} to shared numpy "
                        f"buffer self.{mutation.attr} with no lock "
                        f"held; both the worker and coordinator sides "
                        f"touch this buffer"
                    ),
                    flow_trace=_steps(steps),
                )


CONCURRENCY_RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        ConfinedEscapeRule(),
        LockBalanceRule(),
        LockOrderRule(),
        BlockingUnderLockRule(),
        SharedBufferRule(),
    )
}
