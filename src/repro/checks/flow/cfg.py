"""Per-function control-flow graphs over the Python AST.

The graph is *statement level*: every simple statement, branch
condition, loop header, ``with`` enter, and ``except`` clause is its own
node, which keeps the dataflow transfer functions trivial (no basic
block splitting). The builder models:

* ``if``/``while`` conditions decomposed over short-circuit operators —
  ``if a and b:`` becomes two condition nodes so ``b`` is only reached
  when ``a`` was truthy, and constant conditions (``while True:``) drop
  the impossible edge, which is what makes unreachable-code detection
  work.
* loops with back edges, ``break``/``continue`` routed to the right
  targets (through any intervening ``finally`` blocks), and
  ``for``/``while`` ``else`` clauses.
* ``try/except/finally``: every statement inside a ``try`` body gets an
  exceptional edge to the innermost handlers; ``return``/``break``/
  ``continue``/uncaught ``raise`` are routed through the pending
  ``finally`` chain before reaching their target.
* ``with`` bodies, ``match`` statements, and ``return``/``raise`` edges
  to the function exit.

Approximations (deliberate, and safe for lint): implicit exceptions are
only modelled inside ``try`` bodies that have handlers; a ``finally``
subgraph is built once, so distinct abrupt exits merge inside it
(over-approximating paths, which can only *hide* unreachable code, never
invent it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionAst = Union[ast.FunctionDef, ast.AsyncFunctionDef]
UnitAst = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]

#: Node kinds that carry a real source statement/expression (as opposed
#: to the synthetic entry/exit/join/finally markers).
CODE_KINDS = frozenset({"stmt", "cond", "loop", "with", "except"})


@dataclass
class CFGNode:
    """One CFG vertex: a statement, condition, or synthetic marker."""

    id: int
    kind: str  # "entry" | "exit" | "join" | "finally" | a CODE_KINDS member
    stmt: Optional[ast.AST] = None
    succs: Set[int] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)
    #: (body-list token, index) for statements, so contiguous
    #: unreachable statements in one suite can be grouped into a region.
    body_key: Optional[Tuple[int, int]] = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    @property
    def col(self) -> int:
        return getattr(self.stmt, "col_offset", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = type(self.stmt).__name__ if self.stmt is not None else "-"
        return f"<CFGNode {self.id} {self.kind} {what} line={self.line}>"


@dataclass
class CFG:
    """A built control-flow graph for one function or module body."""

    name: str
    entry: int
    exit: int
    nodes: Dict[int, CFGNode]

    def node(self, node_id: int) -> CFGNode:
        return self.nodes[node_id]

    def code_nodes(self) -> List[CFGNode]:
        """Nodes that carry source code, in creation (roughly source) order."""
        return [
            node
            for node_id, node in sorted(self.nodes.items())
            if node.kind in CODE_KINDS
        ]

    def reachable(self) -> Set[int]:
        """Node ids reachable from the entry."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.nodes[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def postorder(self) -> List[int]:
        """Depth-first postorder from the entry (reachable nodes only)."""
        order: List[int] = []
        seen: Set[int] = set()

        def visit(node_id: int) -> None:
            stack = [(node_id, iter(sorted(self.nodes[node_id].succs)))]
            seen.add(node_id)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(sorted(self.nodes[succ].succs))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        return order


class _LoopFrame:
    __slots__ = ("head", "after", "finally_depth")

    def __init__(self, head: int, after: int, finally_depth: int) -> None:
        self.head = head
        self.after = after
        self.finally_depth = finally_depth


class _FinallyFrame:
    __slots__ = ("entry", "pending")

    def __init__(self, entry: int) -> None:
        self.entry = entry
        # Continuation targets the finally block must flow on to because
        # some abrupt jump (return/break/continue/raise) traversed it.
        self.pending: Set[int] = set()


class _Builder:
    def __init__(self) -> None:
        self.nodes: Dict[int, CFGNode] = {}
        self._next_id = 0
        self._body_token = 0
        self._loops: List[_LoopFrame] = []
        self._finallies: List[_FinallyFrame] = []
        self._handlers: List[List[int]] = []
        self.exit = -1

    # -- graph primitives -------------------------------------------------

    def new_node(
        self,
        kind: str,
        stmt: Optional[ast.AST] = None,
        body_key: Optional[Tuple[int, int]] = None,
    ) -> int:
        node_id = self._next_id
        self._next_id += 1
        self.nodes[node_id] = CFGNode(
            id=node_id, kind=kind, stmt=stmt, body_key=body_key
        )
        # Any statement inside a try body may raise into the innermost
        # handlers.
        if kind in CODE_KINDS and self._handlers:
            for handler in self._handlers[-1]:
                self.edge(node_id, handler)
        return node_id

    def edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)

    def link(self, frontier: Sequence[int], target: int) -> None:
        for node_id in frontier:
            self.edge(node_id, target)

    def route(self, src: int, target: int, finally_depth: int) -> None:
        """Connect an abrupt jump, threading pending ``finally`` blocks."""
        frames = self._finallies[finally_depth:]
        if not frames:
            self.edge(src, target)
            return
        chain = list(reversed(frames))  # innermost first
        self.edge(src, chain[0].entry)
        for frame, outer in zip(chain, chain[1:]):
            frame.pending.add(outer.entry)
        chain[-1].pending.add(target)

    # -- statement lowering ----------------------------------------------

    def build_body(
        self, stmts: Sequence[ast.stmt], preds: List[int]
    ) -> List[int]:
        token = self._body_token
        self._body_token += 1
        frontier = preds
        for index, stmt in enumerate(stmts):
            frontier = self.build_stmt(stmt, frontier, (token, index))
        return frontier

    def build_cond(
        self, expr: ast.expr, preds: List[int], body_key: Tuple[int, int]
    ) -> Tuple[List[int], List[int]]:
        """Lower a condition to (true-frontier, false-frontier) nodes."""
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            true_frontier, false_frontier = preds, []
            for value in expr.values:
                true_frontier, false_part = self.build_cond(
                    value, true_frontier, body_key
                )
                false_frontier += false_part
            return true_frontier, false_frontier
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
            true_frontier, false_frontier = [], preds
            for value in expr.values:
                true_part, false_frontier = self.build_cond(
                    value, false_frontier, body_key
                )
                true_frontier += true_part
            return true_frontier, false_frontier
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            true_frontier, false_frontier = self.build_cond(
                expr.operand, preds, body_key
            )
            return false_frontier, true_frontier
        node = self.new_node("cond", stmt=expr, body_key=body_key)
        self.link(preds, node)
        if isinstance(expr, ast.Constant):
            # while True: / if False: — drop the impossible edge.
            return ([node], []) if expr.value else ([], [node])
        return [node], [node]

    def build_stmt(
        self, stmt: ast.stmt, preds: List[int], body_key: Tuple[int, int]
    ) -> List[int]:
        if isinstance(stmt, ast.If):
            true_frontier, false_frontier = self.build_cond(
                stmt.test, preds, body_key
            )
            then_frontier = self.build_body(stmt.body, true_frontier)
            if stmt.orelse:
                else_frontier = self.build_body(stmt.orelse, false_frontier)
            else:
                else_frontier = false_frontier
            return then_frontier + else_frontier

        if isinstance(stmt, ast.While):
            head = self._next_id  # first condition node created below
            true_frontier, false_frontier = self.build_cond(
                stmt.test, preds, body_key
            )
            after = self.new_node("join")
            self._loops.append(
                _LoopFrame(head, after, len(self._finallies))
            )
            body_frontier = self.build_body(stmt.body, true_frontier)
            self.link(body_frontier, head)
            self._loops.pop()
            if stmt.orelse:
                else_frontier = self.build_body(stmt.orelse, false_frontier)
                self.link(else_frontier, after)
            else:
                self.link(false_frontier, after)
            return [after]

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head = self.new_node("loop", stmt=stmt, body_key=body_key)
            self.link(preds, head)
            after = self.new_node("join")
            self._loops.append(
                _LoopFrame(head, after, len(self._finallies))
            )
            body_frontier = self.build_body(stmt.body, [head])
            self.link(body_frontier, head)
            self._loops.pop()
            if stmt.orelse:
                else_frontier = self.build_body(stmt.orelse, [head])
                self.link(else_frontier, after)
            else:
                self.edge(head, after)
            return [after]

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.new_node("with", stmt=stmt, body_key=body_key)
            self.link(preds, node)
            return self.build_body(stmt.body, [node])

        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._build_try(stmt, preds, body_key)

        if isinstance(stmt, ast.Match):
            node = self.new_node("stmt", stmt=stmt, body_key=body_key)
            self.link(preds, node)
            frontier: List[int] = [node]  # no case may match
            for case in stmt.cases:
                frontier += self.build_body(case.body, [node])
            return frontier

        if isinstance(stmt, ast.Return):
            node = self.new_node("stmt", stmt=stmt, body_key=body_key)
            self.link(preds, node)
            self.route(node, self.exit, finally_depth=0)
            return []

        if isinstance(stmt, ast.Raise):
            node = self.new_node("stmt", stmt=stmt, body_key=body_key)
            self.link(preds, node)
            if not self._handlers:
                # Uncaught: propagates out of the function (via finallys).
                self.route(node, self.exit, finally_depth=0)
            return []

        if isinstance(stmt, ast.Break):
            node = self.new_node("stmt", stmt=stmt, body_key=body_key)
            self.link(preds, node)
            if self._loops:
                frame = self._loops[-1]
                self.route(node, frame.after, frame.finally_depth)
            return []

        if isinstance(stmt, ast.Continue):
            node = self.new_node("stmt", stmt=stmt, body_key=body_key)
            self.link(preds, node)
            if self._loops:
                frame = self._loops[-1]
                self.route(node, frame.head, frame.finally_depth)
            return []

        # Simple statements — including nested FunctionDef/ClassDef,
        # whose bodies are separate analysis units, not part of this CFG.
        node = self.new_node("stmt", stmt=stmt, body_key=body_key)
        self.link(preds, node)
        return [node]

    def _build_try(
        self, stmt: ast.stmt, preds: List[int], body_key: Tuple[int, int]
    ) -> List[int]:
        assert isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        )
        fin_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            marker = self.new_node("finally")
            fin_frame = _FinallyFrame(marker)
            self._finallies.append(fin_frame)

        clause_nodes = [
            self.new_node("except", stmt=handler, body_key=body_key)
            for handler in stmt.handlers
        ]
        if clause_nodes:
            self._handlers.append(clause_nodes)
        body_frontier = self.build_body(stmt.body, preds)
        if clause_nodes:
            self._handlers.pop()

        handler_frontier: List[int] = []
        for handler, clause in zip(stmt.handlers, clause_nodes):
            handler_frontier += self.build_body(handler.body, [clause])

        if stmt.orelse:
            else_frontier = self.build_body(stmt.orelse, body_frontier)
        else:
            else_frontier = body_frontier
        normal = else_frontier + handler_frontier

        if fin_frame is None:
            return normal
        self._finallies.pop()
        self.link(normal, fin_frame.entry)
        fin_frontier = self.build_body(stmt.finalbody, [fin_frame.entry])
        for target in sorted(fin_frame.pending):
            self.link(fin_frontier, target)
        return fin_frontier


def build_cfg(unit: UnitAst, name: str = "<unit>") -> CFG:
    """Build the CFG for one function body or the module top level."""
    builder = _Builder()
    entry = builder.new_node("entry")
    builder.exit = builder.new_node("exit")
    frontier = builder.build_body(unit.body, [entry])
    builder.link(frontier, builder.exit)
    return CFG(
        name=name, entry=entry, exit=builder.exit, nodes=builder.nodes
    )


@dataclass(frozen=True)
class Unit:
    """One analysis unit: the module top level or a (nested) function."""

    name: str
    node: UnitAst
    classes: Tuple[str, ...]
    functions: Tuple[str, ...]

    @property
    def is_module(self) -> bool:
        return isinstance(self.node, ast.Module)


def iter_units(tree: ast.Module) -> Iterator[Unit]:
    """Yield the module plus every function/method at any nesting depth."""
    yield Unit(name="<module>", node=tree, classes=(), functions=())

    def visit(
        node: ast.AST, classes: Tuple[str, ...], functions: Tuple[str, ...]
    ) -> Iterator[Unit]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, classes + (child.name,), functions)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join(classes + functions + (child.name,))
                yield Unit(
                    name=qual,
                    node=child,
                    classes=classes,
                    functions=functions,
                )
                yield from visit(
                    child, classes, functions + (child.name,)
                )
            else:
                yield from visit(child, classes, functions)

    yield from visit(tree, (), ())
