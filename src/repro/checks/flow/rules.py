"""Flow-sensitive lint rules RAP-LINT006..010.

Each rule runs the dataflow engine (:mod:`repro.checks.flow.cfg`,
:mod:`~repro.checks.flow.solver`, :mod:`~repro.checks.flow.analyses`,
:mod:`~repro.checks.flow.taint`) over every function and the module top
level, and attaches a ``flow_trace`` witness path to every violation —
the chain of assignments that carried the offending value to the
flagged site. The syntactic rules (001..005) catch the direct pattern;
these catch the same bug laundered through aliases:

* **RAP-LINT006 counter-float-flow** — an exact counter read
  (``c = node.count``) that reaches float arithmetic (``c / n``,
  ``float(c)``) through any chain of assignments, in ``core/``.
* **RAP-LINT007 rng-flow** — an RNG object that is unseeded (including
  ``seed = None`` through an alias, invisible to RAP-LINT001) reaching
  a draw or a call site through a variable.
* **RAP-LINT008 node-alias-mutation** — a node's live ``children`` list
  escaping into a local alias that is then mutated outside the tree
  classes (``kids = node.children; kids.append(x)``).
* **RAP-LINT009 dead-code** — statements unreachable in the CFG and
  assignments whose value no path ever reads, in ``core/`` and
  ``hardware/``.
* **RAP-LINT010 unclosed-resource** — ``open()`` handles bound outside
  a ``with`` block that are not closed on every path to the exit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..lint.rules import (
    FlowStep,
    LintContext,
    Rule,
    Violation,
    _import_aliases,
    _resolved_call_name,
)
from .analyses import Solution, live_variables, reaching_definitions
from .cfg import CFG, CFGNode, Unit, build_cfg, iter_units
from .solver import DataflowProblem, solve
from .taint import (
    KIND_CHILDREN,
    KIND_COUNTER,
    KIND_RNG,
    TaintAnalysis,
    _render,
)

_OWNER_CLASSES = frozenset(
    {"RapTree", "MultiDimRapTree", "RapNode", "MultiDimNode"}
)
_LIST_MUTATORS = frozenset(
    {"append", "insert", "remove", "clear", "pop", "extend", "sort",
     "reverse"}
)
_OPEN_CALLS = frozenset(
    {"open", "io.open", "gzip.open", "bz2.open", "lzma.open",
     "tarfile.open"}
)


class UnitAnalysis:
    """Lazily built dataflow artifacts for one function/module unit."""

    def __init__(self, unit: Unit, aliases: Dict[str, str]) -> None:
        self.unit = unit
        self.aliases = aliases
        self._cfg: Optional[CFG] = None
        self._taint: Optional[TaintAnalysis] = None
        self._liveness: Optional[Solution] = None

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.unit.node, name=self.unit.name)
        return self._cfg

    @property
    def taint(self) -> TaintAnalysis:
        if self._taint is None:
            self._taint = TaintAnalysis(self.cfg, self.aliases)
        return self._taint

    @property
    def liveness(self) -> Solution:
        if self._liveness is None:
            self._liveness = live_variables(self.cfg)
        return self._liveness


def _unit_analyses(context: LintContext) -> List[UnitAnalysis]:
    """Per-file analysis units, cached on the context across rules."""
    cached = getattr(context, "_flow_units", None)
    if cached is not None:
        return cached
    aliases = _import_aliases(context.tree)
    units = [
        UnitAnalysis(unit, aliases) for unit in iter_units(context.tree)
    ]
    context._flow_units = units  # type: ignore[attr-defined]
    return units


def _executed_exprs(node: CFGNode) -> Iterator[ast.AST]:
    """AST nodes whose evaluation happens *at* this CFG node.

    Unlike the liveness scope, this prunes nested function/class/lambda
    bodies — they execute later (or in another unit), so rules must not
    double-report them from the enclosing unit.
    """
    stmt = node.stmt
    if stmt is None:
        return
    roots: List[ast.AST]
    if node.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif node.kind == "except" and isinstance(stmt, ast.ExceptHandler):
        roots = [stmt.type] if stmt.type is not None else []
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots = list(stmt.decorator_list)
        roots.extend(stmt.args.defaults)
        roots.extend(d for d in stmt.args.kw_defaults if d is not None)
    elif isinstance(stmt, ast.ClassDef):
        roots = list(stmt.decorator_list) + list(stmt.bases)
    else:
        roots = [stmt]
    stack: List[ast.AST] = list(roots)
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
             ast.ClassDef),
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _source_line(context: LintContext, line: int) -> str:
    if 1 <= line <= len(context.source_lines):
        return context.source_lines[line - 1].strip()
    return ""


def _steps(raw: Sequence[Tuple[int, int, str]]) -> Tuple[FlowStep, ...]:
    return tuple(FlowStep(line=l, column=c, event=e) for l, c, e in raw)


class FlowRule(Rule):
    """Base for flow rules: violations always carry a witness trace."""

    kind = "flow"

    def flow_violation(
        self,
        context: LintContext,
        node: ast.AST,
        message: str,
        trace: Sequence[Tuple[int, int, str]],
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            flow_trace=_steps(trace),
        )


class CounterFloatFlowRule(FlowRule):
    code = "RAP-LINT006"
    name = "counter-float-flow"
    scope = "core/"
    catches = "counter values reaching float math through aliases"
    rationale = (
        "an exact counter that reaches float arithmetic through any "
        "alias chain silently turns the guaranteed lower bounds into "
        "approximations; RAP-LINT002 only sees direct .count writes"
    )
    example = "c = node.count\nx = c / 2                      # counter laundered via alias"
    fix = (
        "keep derived statistics separate from counters: compute "
        "ratios at the reporting boundary, or floor-divide (//) when "
        "an integer is meant"
    )

    _scopes = ("core/",)

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        for analysis in _unit_analyses(context):
            taint = analysis.taint
            for node in analysis.cfg.code_nodes():
                seen: Set[str] = set()
                for expr in _executed_exprs(node):
                    for name_node, reason in self._float_contexts(expr):
                        name = name_node.id
                        if name in seen:
                            continue
                        kinds = taint.kinds_before(node.id, name)
                        if KIND_COUNTER not in kinds:
                            continue
                        seen.add(name)
                        trace = taint.trace(node.id, name, KIND_COUNTER)
                        trace.append(
                            (
                                getattr(expr, "lineno", node.line),
                                getattr(expr, "col_offset", node.col),
                                f"{reason}: "
                                f"{_source_line(context, getattr(expr, 'lineno', node.line))}",
                            )
                        )
                        yield self.flow_violation(
                            context,
                            expr,
                            f"counter-tainted value {name!r} flows into "
                            f"float context ({reason}); counters must "
                            f"stay exact ints",
                            trace,
                        )

    @staticmethod
    def _float_contexts(
        expr: ast.AST,
    ) -> Iterator[Tuple[ast.Name, str]]:
        """(name, reason) pairs where a variable meets float arithmetic."""
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
            for operand in (expr.left, expr.right):
                if isinstance(operand, ast.Name):
                    yield operand, "true division (/)"
        elif isinstance(expr, ast.AugAssign) and isinstance(
            expr.op, ast.Div
        ):
            if isinstance(expr.target, ast.Name):
                yield expr.target, "augmented division (/=)"
            if isinstance(expr.value, ast.Name):
                yield expr.value, "augmented division (/=)"
        elif isinstance(expr, ast.Call):
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id == "float"
            ):
                for arg in expr.args:
                    if isinstance(arg, ast.Name):
                        yield arg, "float() conversion"


class RngFlowRule(FlowRule):
    code = "RAP-LINT007"
    name = "rng-flow"
    scope = "all but workloads/distributions.py"
    catches = "unseeded RNG objects reaching draws through aliases"
    rationale = (
        "an unseeded RNG object reaching a draw or call site through a "
        "variable breaks bit-identical replay even when the "
        "construction itself dodges RAP-LINT001 (e.g. seed=None via an "
        "alias)"
    )
    example = "seed = None\nrng = np.random.default_rng(seed)\nvals = rng.integers(0, 9, 8)   # draws from an unseeded generator"
    fix = (
        "thread an explicit integer seed to the constructor "
        "(workloads.distributions.make_rng), and pass generators, not "
        "implicit global state, into core/"
    )

    _exempt = ("workloads/distributions.py",)

    def check(self, context: LintContext) -> Iterator[Violation]:
        if context.relpath in self._exempt:
            return
        for analysis in _unit_analyses(context):
            taint = analysis.taint
            for node in analysis.cfg.code_nodes():
                seen: Set[Tuple[str, str]] = set()
                for expr in _executed_exprs(node):
                    if not isinstance(expr, ast.Call):
                        continue
                    for name_node, how in self._rng_uses(expr):
                        name = name_node.id
                        if (name, how) in seen:
                            continue
                        if KIND_RNG not in taint.kinds_before(
                            node.id, name
                        ):
                            continue
                        seen.add((name, how))
                        trace = taint.trace(node.id, name, KIND_RNG)
                        trace.append(
                            (
                                expr.lineno,
                                expr.col_offset,
                                f"{how}: "
                                f"{_source_line(context, expr.lineno)}",
                            )
                        )
                        yield self.flow_violation(
                            context,
                            expr,
                            f"unseeded RNG {name!r} {how}; construct it "
                            f"from an explicit seed so replays are "
                            f"bit-identical",
                            trace,
                        )

    @staticmethod
    def _rng_uses(call: ast.Call) -> Iterator[Tuple[ast.Name, str]]:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            yield func.value, f"drawn from via .{func.attr}()"
        callee = _render(func, limit=40)
        for arg in call.args:
            if isinstance(arg, ast.Name):
                yield arg, f"passed into {callee}()"
        for keyword in call.keywords:
            if isinstance(keyword.value, ast.Name):
                yield keyword.value, f"passed into {callee}()"


class NodeAliasMutationRule(FlowRule):
    code = "RAP-LINT008"
    name = "node-alias-mutation"
    scope = "all but the tree classes"
    catches = "aliased live children lists mutated out-of-band"
    rationale = (
        "a node's live children list escaping into a local alias and "
        "mutated there corrupts the tree exactly like the direct "
        "mutations RAP-LINT003 bans, but invisibly to syntactic checks"
    )
    example = "kids = node.children\nkids.append(extra)             # mutates the live tree"
    fix = (
        "mutate through RapTree/RapNode methods (attach_child, "
        "detach_child), or copy first (list(node.children)) when a "
        "scratch list is wanted"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for analysis in _unit_analyses(context):
            unit = analysis.unit
            if unit.classes and unit.classes[-1] in _OWNER_CLASSES:
                continue  # the tree classes own their structure
            taint = analysis.taint
            for node in analysis.cfg.code_nodes():
                yield from self._check_node(context, taint, node)

    def _check_node(
        self,
        context: LintContext,
        taint: TaintAnalysis,
        node: CFGNode,
    ) -> Iterator[Violation]:
        def children_alias(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Name) and KIND_CHILDREN in (
                taint.kinds_before(node.id, expr.id)
            ):
                return expr.id
            return None

        stmt = node.stmt
        for expr in _executed_exprs(node):
            if isinstance(expr, ast.Call):
                func = expr.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _LIST_MUTATORS
                ):
                    name = children_alias(func.value)
                    if name is not None:
                        yield self._mutation(
                            context, taint, node, expr, name,
                            f".{func.attr}() on aliased children list",
                        )
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    name = children_alias(target.value)
                    if name is not None:
                        yield self._mutation(
                            context, taint, node, target, name,
                            "item assignment into aliased children list",
                        )
        elif isinstance(stmt, ast.AugAssign):
            name = children_alias(stmt.target)
            if name is not None:
                yield self._mutation(
                    context, taint, node, stmt, name,
                    "augmented assignment extends aliased children list",
                )

    def _mutation(
        self,
        context: LintContext,
        taint: TaintAnalysis,
        node: CFGNode,
        site: ast.AST,
        name: str,
        what: str,
    ) -> Violation:
        trace = taint.trace(node.id, name, KIND_CHILDREN)
        line = getattr(site, "lineno", node.line)
        trace.append(
            (line, getattr(site, "col_offset", 0),
             f"mutation: {_source_line(context, line)}")
        )
        return self.flow_violation(
            context,
            site,
            f"{what} ({name!r} aliases a live .children list) outside "
            f"the tree classes; go through RapTree/RapNode methods",
            trace,
        )


class DeadCodeRule(FlowRule):
    code = "RAP-LINT009"
    name = "dead-code"
    scope = "core/, hardware/"
    catches = "unreachable statements and dead stores"
    rationale = (
        "unreachable statements and stores no path ever reads are "
        "refactoring residue; in the load-bearing packages they hide "
        "real logic changes and rot silently"
    )
    example = "def weight(node):\n    return node.count\n    node.count = 0             # unreachable"
    fix = (
        "delete the unreachable statement / unused assignment, or "
        "rewire the control flow if it was meant to execute"
    )

    _scopes = ("core/", "hardware/")

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        for analysis in _unit_analyses(context):
            cfg = analysis.cfg
            reachable = cfg.reachable()
            yield from self._unreachable(context, cfg, reachable)
            if not analysis.unit.is_module:
                yield from self._dead_stores(context, analysis, reachable)

    def _unreachable(
        self, context: LintContext, cfg: CFG, reachable: Set[int]
    ) -> Iterator[Violation]:
        dead = {
            node.id: node
            for node in cfg.code_nodes()
            if node.id not in reachable and node.stmt is not None
        }
        last_exit_line = max(
            (
                node.line
                for node in cfg.code_nodes()
                if node.id in reachable
                and isinstance(
                    node.stmt,
                    (ast.Return, ast.Raise, ast.Break, ast.Continue),
                )
            ),
            default=0,
        )
        for node_id, node in sorted(dead.items()):
            # Report only region heads: skip nodes whose unreachability
            # is already explained by an earlier (forward-edge) dead
            # predecessor; back-edge-only dead preds (loops) still get
            # reported.
            if any(pred in dead and pred < node_id for pred in node.preds):
                continue
            trace: List[Tuple[int, int, str]] = []
            if 0 < last_exit_line < node.line:
                trace.append(
                    (
                        last_exit_line,
                        0,
                        "control leaves here: "
                        f"{_source_line(context, last_exit_line)}",
                    )
                )
            trace.append(
                (
                    node.line,
                    node.col,
                    "unreachable: no path from the function entry "
                    "reaches this statement",
                )
            )
            yield self.flow_violation(
                context,
                node.stmt,
                "unreachable code: no control-flow path reaches this "
                "statement",
                trace,
            )

    def _dead_stores(
        self,
        context: LintContext,
        analysis: UnitAnalysis,
        reachable: Set[int],
    ) -> Iterator[Violation]:
        unit_node = analysis.unit.node
        declared_global: Set[str] = set()
        for stmt in ast.walk(unit_node):
            if isinstance(stmt, (ast.Global, ast.Nonlocal)):
                declared_global.update(stmt.names)
        live = analysis.liveness
        for node in analysis.cfg.code_nodes():
            if node.id not in reachable:
                continue  # already reported as unreachable
            stmt = node.stmt
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("_") or name in declared_global:
                continue
            live_after = live.inputs[node.id]
            if name in live_after:
                continue
            trace = [
                (
                    node.line,
                    node.col,
                    f"dead store: {name} = {_render(stmt.value)}",
                ),
                (
                    node.line,
                    node.col,
                    f"no path from here to the function exit reads "
                    f"{name!r}",
                ),
            ]
            yield self.flow_violation(
                context,
                stmt,
                f"value assigned to {name!r} is never read on any "
                f"path; delete the assignment or use the value",
                trace,
            )


class UnclosedResourceRule(FlowRule):
    code = "RAP-LINT010"
    name = "unclosed-resource"
    catches = "open() handles not closed on every path"
    rationale = (
        "a file handle opened outside `with` and not closed on every "
        "path (including exception paths) leaks descriptors under "
        "production load and can drop buffered trace bytes"
    )
    example = "f = open(path, 'wb')\nf.write(header)                # leaks if write raises"
    fix = (
        "use a with block (`with open(path, 'wb') as f:`), or close "
        "in a finally so every path releases the handle"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for analysis in _unit_analyses(context):
            yield from self._check_unit(context, analysis)

    def _check_unit(
        self, context: LintContext, analysis: UnitAnalysis
    ) -> Iterator[Violation]:
        cfg = analysis.cfg
        aliases = analysis.aliases
        open_sites: Dict[int, str] = {}
        for node in cfg.code_nodes():
            name = self._open_target(node.stmt, aliases)
            if name is not None:
                open_sites[node.id] = name
        if not open_sites:
            return

        Env = Tuple[Tuple[str, frozenset], ...]

        def transfer(node: CFGNode, env: Env) -> Env:
            if node.stmt is None:
                return env
            state = {name: sites for name, sites in env}
            for closed in self._closed_names(node):
                state.pop(closed, None)
            for escaped in self._escaping_names(node):
                state.pop(escaped, None)
            opened = open_sites.get(node.id)
            if opened is not None:
                state[opened] = frozenset({node.id})
            else:
                for name in _assigned_plain_names(node.stmt):
                    if name not in (opened,):
                        state.pop(name, None)
            return tuple(sorted(state.items()))

        def join(values: Sequence[Env]) -> Env:
            merged: Dict[str, frozenset] = {}
            for env in values:
                for name, sites in env:
                    merged[name] = merged.get(name, frozenset()) | sites
            return tuple(sorted(merged.items()))

        problem: DataflowProblem = DataflowProblem(
            direction="forward",
            boundary=(),
            bottom=(),
            transfer=transfer,
            join=join,
        )
        solution = solve(cfg, problem)
        at_exit = dict(solution.inputs[cfg.exit])
        for name, sites in sorted(at_exit.items()):
            for site_id in sorted(sites):
                site = cfg.nodes[site_id]
                trace = [
                    (
                        site.line,
                        site.col,
                        f"opened: {_source_line(context, site.line)}",
                    ),
                    (
                        site.line,
                        site.col,
                        f"a path reaches the exit of "
                        f"{analysis.unit.name!r} with {name!r} still "
                        f"open",
                    ),
                ]
                yield self.flow_violation(
                    context,
                    site.stmt if site.stmt is not None else ast.Pass(),
                    f"{name!r} is opened outside `with` and not closed "
                    f"on every path; use a with block or close in a "
                    f"finally",
                    trace,
                )

    @staticmethod
    def _open_target(
        stmt: Optional[ast.AST], aliases: Dict[str, str]
    ) -> Optional[str]:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return None
        value = stmt.value
        if not isinstance(value, ast.Call):
            return None
        resolved = _resolved_call_name(value, aliases)
        if resolved in _OPEN_CALLS:
            return target.id
        return None

    @staticmethod
    def _closed_names(node: CFGNode) -> Iterator[str]:
        for expr in _executed_exprs(node):
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "close"
                and isinstance(expr.func.value, ast.Name)
            ):
                yield expr.func.value.id

    @staticmethod
    def _escaping_names(node: CFGNode) -> Iterator[str]:
        """Names whose handle ownership leaves this function here."""
        stmt = node.stmt
        for expr in _executed_exprs(node):
            if isinstance(expr, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = expr.value
                if value is not None:
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Name):
                            yield sub.id
            elif isinstance(expr, ast.Call):
                for arg in expr.args:
                    if isinstance(arg, ast.Name):
                        yield arg.id
                    elif isinstance(arg, ast.Starred) and isinstance(
                        arg.value, ast.Name
                    ):
                        yield arg.value.id
                for keyword in expr.keywords:
                    if isinstance(keyword.value, ast.Name):
                        yield keyword.value.id
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            if isinstance(value, ast.Name):
                yield value.id  # alias transfers ownership
            elif isinstance(value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Load
                    ):
                        yield sub.id


def _assigned_plain_names(stmt: ast.AST) -> Iterator[str]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id


FLOW_RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        CounterFloatFlowRule(),
        RngFlowRule(),
        NodeAliasMutationRule(),
        DeadCodeRule(),
        UnclosedResourceRule(),
    )
}
