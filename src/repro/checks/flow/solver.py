"""Generic worklist fixed-point solver for CFG dataflow problems.

A :class:`DataflowProblem` bundles the four ingredients of a monotone
framework — direction, boundary value, bottom element, and a transfer
function — plus the lattice join. :func:`solve` iterates transfer
functions over the graph until nothing changes, visiting nodes in
reverse postorder (forward problems) or postorder (backward problems)
so typical reducible graphs converge in a couple of sweeps.

Values must be immutable-ish and comparable with ``==``; termination is
the caller's obligation (transfers must be monotone over a finite
lattice — true for every analysis in this package).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Sequence, Tuple, TypeVar

from .cfg import CFG, CFGNode

Value = TypeVar("Value")


@dataclass(frozen=True)
class DataflowProblem(Generic[Value]):
    """One monotone dataflow problem over a CFG."""

    direction: str  # "forward" | "backward"
    boundary: Value  # value at entry (forward) / exit (backward)
    bottom: Value  # initial value everywhere else
    transfer: Callable[[CFGNode, Value], Value]
    join: Callable[[Sequence[Value]], Value]

    def __post_init__(self) -> None:
        if self.direction not in ("forward", "backward"):
            raise ValueError(
                f"direction must be 'forward' or 'backward', "
                f"not {self.direction!r}"
            )


@dataclass
class Solution(Generic[Value]):
    """Fixed-point values: ``inputs[n]`` flows into node ``n``,
    ``outputs[n]`` flows out (in the problem's direction)."""

    inputs: Dict[int, Value]
    outputs: Dict[int, Value]


def solve(cfg: CFG, problem: DataflowProblem[Value]) -> Solution[Value]:
    """Run the worklist algorithm to a fixed point."""
    forward = problem.direction == "forward"
    start = cfg.entry if forward else cfg.exit

    order: List[int] = cfg.postorder()
    if forward:
        order = list(reversed(order))
    # Unreachable nodes still get their bottom values so lookups are
    # total, but they never enter the worklist.
    inputs: Dict[int, Value] = {nid: problem.bottom for nid in cfg.nodes}
    outputs: Dict[int, Value] = {nid: problem.bottom for nid in cfg.nodes}

    position = {node_id: index for index, node_id in enumerate(order)}
    worklist = deque(order)
    queued = set(order)
    while worklist:
        node_id = worklist.popleft()
        queued.discard(node_id)
        node = cfg.nodes[node_id]
        upstream = node.preds if forward else node.succs
        incoming = [
            outputs[other] for other in sorted(upstream) if other in position
        ]
        if node_id == start:
            incoming.append(problem.boundary)
        in_value = problem.join(incoming) if incoming else problem.bottom
        out_value = problem.transfer(node, in_value)
        inputs[node_id] = in_value
        if out_value != outputs[node_id]:
            outputs[node_id] = out_value
            downstream = node.succs if forward else node.preds
            for other in downstream:
                if other in position and other not in queued:
                    queued.add(other)
                    worklist.append(other)
    return Solution(inputs=inputs, outputs=outputs)


def union_join(values: Sequence[frozenset]) -> frozenset:
    """Set-union join, the lattice used by the classic bit-vector
    analyses."""
    if not values:
        return frozenset()
    result: frozenset = values[0]
    for value in values[1:]:
        result = result | value
    return result


def env_join(
    values: Sequence[Tuple[Tuple[str, frozenset], ...]],
) -> Tuple[Tuple[str, frozenset], ...]:
    """Pointwise-union join for variable environments.

    Environments are stored as sorted tuples of ``(name, frozenset)``
    pairs so they are hashable and compare structurally.
    """
    merged: Dict[str, frozenset] = {}
    for env in values:
        for name, tags in env:
            merged[name] = merged.get(name, frozenset()) | tags
    return tuple(sorted(merged.items()))
