"""Classic dataflow analyses phrased as solver problems.

* **Reaching definitions** — forward, facts are ``(name, node_id)``
  pairs: which assignments of ``name`` may reach a program point. Used
  to reconstruct witness traces (which alias assignment fed this use?)
  and to find definitions that never reach a use.
* **Live variables** — backward, facts are names: is the value a
  definition stores ever read on some path onward? Used by RAP-LINT009
  to flag dead stores.

Both treat names conservatively: uses are collected with ``ast.walk``
over the whole statement, so names captured by nested functions,
lambdas, and comprehensions count as uses (a closure read keeps an
outer binding live).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Tuple

from .cfg import CFG, CFGNode
from .solver import DataflowProblem, Solution, solve, union_join

Definition = Tuple[str, int]  # (variable name, defining CFG node id)


def _target_names(target: ast.expr) -> Iterator[str]:
    """Names bound by an assignment target (recursing into unpacking)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute / Subscript targets bind no local name.


def assigned_names(node: CFGNode) -> Tuple[str, ...]:
    """Local names (re)bound when this CFG node executes."""
    stmt = node.stmt
    if stmt is None:
        return ()
    names: List[str] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.extend(_target_names(target))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt.target, ast.Name) and (
            not isinstance(stmt, ast.AnnAssign) or stmt.value is not None
        ):
            names.append(stmt.target.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)) and node.kind == "loop":
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)) and node.kind == "with":
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.append(stmt.name)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name == "*":
                continue
            names.append(alias.asname or alias.name.split(".")[0])
    # Walrus targets anywhere in the node's expressions also bind.
    for sub in ast.walk(_expression_scope(node)):
        if isinstance(sub, ast.NamedExpr) and isinstance(
            sub.target, ast.Name
        ):
            names.append(sub.target.id)
    return tuple(dict.fromkeys(names))


def killed_names(node: CFGNode) -> Tuple[str, ...]:
    """Names whose prior definitions die here (assignments + del)."""
    names = list(assigned_names(node))
    stmt = node.stmt
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            names.extend(_target_names(target))
    return tuple(dict.fromkeys(names))


def _expression_scope(node: CFGNode) -> ast.AST:
    """The AST fragment whose expressions execute *at* this node.

    Compound statements are decomposed by the CFG builder, so for loop
    headers only the iterable belongs to the node, for ``with`` only the
    context expressions, and for ``except`` clauses only the type.
    """
    stmt = node.stmt
    if stmt is None:
        return ast.Module(body=[], type_ignores=[])
    if node.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        return stmt.iter
    if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        scope = ast.Module(body=[], type_ignores=[])
        scope.body = [
            ast.Expr(value=item.context_expr) for item in stmt.items
        ]
        return scope
    if node.kind == "except" and isinstance(stmt, ast.ExceptHandler):
        return stmt.type if stmt.type is not None else ast.Module(
            body=[], type_ignores=[]
        )
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # The whole definition: decorator/default/annotation expressions
        # run here, and body names count as (closure) uses.
        return stmt
    if isinstance(
        stmt, (ast.If, ast.While, ast.Try, ast.Match, ast.ClassDef)
    ) and node.kind == "stmt":
        # Match/ClassDef are kept opaque; If/While never appear as plain
        # statement nodes.
        return stmt
    return stmt


def used_names(node: CFGNode) -> Tuple[str, ...]:
    """Names read when this CFG node executes."""
    scope = _expression_scope(node)
    names: List[str] = []
    for sub in ast.walk(scope):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            names.append(sub.id)
    stmt = node.stmt
    if isinstance(stmt, ast.AugAssign) and isinstance(
        stmt.target, ast.Name
    ):
        names.append(stmt.target.id)  # x += 1 both reads and writes x
    return tuple(dict.fromkeys(names))


def reaching_definitions(
    cfg: CFG,
) -> Solution[FrozenSet[Definition]]:
    """May-reach definition sets before/after every node."""

    def transfer(
        node: CFGNode, value: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        assigned = assigned_names(node)
        killed = set(killed_names(node))
        if not killed:
            return value
        survivors = frozenset(
            fact for fact in value if fact[0] not in killed
        )
        return survivors | frozenset(
            (name, node.id) for name in assigned
        )

    problem: DataflowProblem[FrozenSet[Definition]] = DataflowProblem(
        direction="forward",
        boundary=frozenset(),
        bottom=frozenset(),
        transfer=transfer,
        join=union_join,
    )
    return solve(cfg, problem)


def live_variables(cfg: CFG) -> Solution[FrozenSet[str]]:
    """Live-variable sets; ``inputs[n]`` is live-before in source terms.

    Note the solver's direction-relative naming: for this backward
    problem ``inputs[n]`` is the join over successors (live *after*
    ``n``) and ``outputs[n]`` is the transferred value (live *before*
    ``n``).
    """

    def transfer(
        node: CFGNode, live_after: FrozenSet[str]
    ) -> FrozenSet[str]:
        return (
            live_after - frozenset(killed_names(node))
        ) | frozenset(used_names(node))

    problem: DataflowProblem[FrozenSet[str]] = DataflowProblem(
        direction="backward",
        boundary=frozenset(),
        bottom=frozenset(),
        transfer=transfer,
        join=union_join,
    )
    return solve(cfg, problem)
