"""Flow-sensitive dataflow engine behind RAP-LINT006..010.

The syntactic RAP-LINT rules (001..005) match single AST nodes, so any
violation laundered through one assignment (``c = node.count``;
``x = c / n``) escapes them. This package adds the machinery to follow
values *through* a function:

* :mod:`repro.checks.flow.cfg` — a per-function control-flow graph over
  the Python AST (branches, loops, ``try/except/finally``, ``with``,
  short-circuit conditions, break/continue/return routing).
* :mod:`repro.checks.flow.solver` — a generic worklist fixed-point
  solver for monotone dataflow problems on those CFGs.
* :mod:`repro.checks.flow.analyses` — the classic analyses (reaching
  definitions, live variables) phrased as solver problems.
* :mod:`repro.checks.flow.taint` — an abstract-interpretation lattice
  tracking value *kinds* (exact counter, float, unseeded RNG,
  wall-clock, tree-node/children reference) through assignments and
  aliases, plus witness-trace reconstruction.
* :mod:`repro.checks.flow.rules` — the flow-sensitive lint rules
  RAP-LINT006..010, each emitting a ``flow_trace`` witness path.
* :mod:`repro.checks.flow.numeric` — numeric/array abstract
  interpretation (dtype lattice + overflow intervals + array traits)
  behind RAP-LINT018..023.
"""

from .analyses import live_variables, reaching_definitions
from .cfg import CFG, CFGNode, build_cfg, iter_units
from .numeric import NumericAnalysis, NumValue
from .solver import DataflowProblem, solve
from .taint import (
    KIND_CHILDREN,
    KIND_CLOCK,
    KIND_COUNTER,
    KIND_FLOAT,
    KIND_NODE,
    KIND_RNG,
    TaintAnalysis,
)

__all__ = [
    "CFG",
    "CFGNode",
    "DataflowProblem",
    "NumValue",
    "NumericAnalysis",
    "KIND_CHILDREN",
    "KIND_CLOCK",
    "KIND_COUNTER",
    "KIND_FLOAT",
    "KIND_NODE",
    "KIND_RNG",
    "TaintAnalysis",
    "build_cfg",
    "iter_units",
    "live_variables",
    "reaching_definitions",
    "solve",
]
