"""The full RAP-LINT rule registry.

Combines the syntactic rules (RAP-LINT001..005 and 011, from
:mod:`repro.checks.lint.rules`) with the flow-sensitive rules
(RAP-LINT006..010, from :mod:`repro.checks.flow.rules`). Everything
that needs "all the rules" — the runner, ``--select``/``--ignore``
resolution, ``--explain`` — goes through this module so the two rule
families stay independently importable.
"""

from __future__ import annotations

from typing import Dict, List

from ..flow.rules import FLOW_RULES
from .rules import SYNTACTIC_RULES, Rule

RULES: Dict[str, Rule] = {**SYNTACTIC_RULES, **FLOW_RULES}


def all_rule_codes() -> List[str]:
    """Registered rule codes in a stable order."""
    return sorted(RULES)


def explain_rule(code: str) -> str:
    """Human-readable rationale/example/fix block for one rule code."""
    normalized = code.strip().upper()
    if normalized not in RULES:
        raise ValueError(
            f"unknown rule code {code!r}; known rules: "
            f"{', '.join(all_rule_codes())}"
        )
    rule = RULES[normalized]
    lines = [
        f"{rule.code} ({rule.name})",
        "",
        "rationale:",
        f"  {rule.rationale}",
    ]
    if rule.example:
        lines += ["", "example violation:"]
        lines += [f"  {line}" for line in rule.example.splitlines()]
    if rule.fix:
        lines += ["", "suggested fix:", f"  {rule.fix}"]
    return "\n".join(lines)
