"""The full RAP-LINT rule registry.

Combines the syntactic rules (RAP-LINT001..005, 011..012 and
024..025, from :mod:`repro.checks.lint.rules`) with the flow-sensitive
rules
(RAP-LINT006..010, from :mod:`repro.checks.flow.rules`), the
interprocedural concurrency rules (RAP-LINT013..017, from
:mod:`repro.checks.flow.concurrency`), and the numeric/array
abstract-interpretation rules (RAP-LINT018..023, from
:mod:`repro.checks.flow.numeric`). Everything that needs "all the
rules" — the runner, ``--select``/``--ignore`` resolution,
``--explain``, the CLI banner, the docs catalog — goes through this
module so the rule families stay independently importable and the
rule count is never hard-coded anywhere else.
"""

from __future__ import annotations

from typing import Dict, List

from ..flow.concurrency import CONCURRENCY_RULES
from ..flow.numeric import NUMERIC_RULES
from ..flow.rules import FLOW_RULES
from .rules import SYNTACTIC_RULES, Rule

RULES: Dict[str, Rule] = {
    **SYNTACTIC_RULES,
    **FLOW_RULES,
    **CONCURRENCY_RULES,
    **NUMERIC_RULES,
}


def all_rule_codes() -> List[str]:
    """Registered rule codes in a stable order."""
    return sorted(RULES)


def rule_count() -> int:
    """Number of registered rules (the only place the count lives)."""
    return len(RULES)


def explain_rule(code: str) -> str:
    """Human-readable rationale/example/fix block for one rule code."""
    normalized = code.strip().upper()
    if normalized not in RULES:
        raise ValueError(
            f"unknown rule code {code!r}; known rules: "
            f"{', '.join(all_rule_codes())}"
        )
    rule = RULES[normalized]
    lines = [
        f"{rule.code} ({rule.name})",
        "",
        "rationale:",
        f"  {rule.rationale}",
    ]
    if rule.example:
        lines += ["", "example violation:"]
        lines += [f"  {line}" for line in rule.example.splitlines()]
    if rule.fix:
        lines += ["", "suggested fix:", f"  {rule.fix}"]
    return "\n".join(lines)


def catalog_markdown() -> str:
    """The rule catalog as a GitHub-flavoured markdown table.

    ``docs/checks.md`` embeds this table verbatim;
    ``python -m repro.checks --catalog`` prints it so the docs can be
    regenerated instead of hand-edited when rules are added.
    """
    header = (
        "| code | name | kind | scope | catches |\n"
        "| --- | --- | --- | --- | --- |"
    )
    rows = []
    for code in all_rule_codes():
        rule = RULES[code]
        rows.append(
            f"| {rule.code} | `{rule.name}` | {rule.kind} "
            f"| {rule.scope} | {rule.catches} |"
        )
    return "\n".join([header, *rows])
