"""Lint driver: file discovery, noqa handling, reports.

The runner walks the requested paths, parses every ``*.py`` file once,
applies the selected rules from :mod:`repro.checks.lint.rules`, filters
suppressed lines (``# noqa`` / ``# noqa: RAP-LINT003``), and folds the
survivors into a :class:`LintReport` that renders as text, as
schema-stable JSON (``{"version": 2, ...}``) for CI, or as SARIF 2.1.0
for GitHub code scanning. ``--select``/``--ignore`` accept exact codes
and ``*``-suffix prefixes (``RAP-LINT02*``) so CI can stage new rule
families.

Strict mode (``rap lint --strict``) tightens the suppression contract:
a bare ``# noqa`` no longer silences anything and is reported as its
own ``RAP-NOQA`` finding, and per-code suppressions must carry a
reason (``# noqa: RAP-LINT016 - workers never take this lock``) or
they are flagged too. Suppressions are audited from real comment
tokens, so prose in docstrings that merely mentions noqa is ignored.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .registry import RULES
from .rules import LintContext, Rule, Violation

# Version 2: every violation entry carries a "flow_trace" list (empty
# for the syntactic rules, a non-empty witness path for RAP-LINT006+).
JSON_SCHEMA_VERSION = 2

# Accepts flake8-style suppressions, including trailing prose after the
# code list ("# noqa: RAP-LINT003 - display-only hierarchy").
_NOQA_PATTERN = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*))?"
    r"(?P<reason>\s*[-:–—]\s*\S.*)?",
    re.IGNORECASE,
)

#: Code for the strict-mode suppression-audit findings themselves.
NOQA_AUDIT_CODE = "RAP-NOQA"


@dataclass
class LintReport:
    """Violations plus enough bookkeeping for CI to gate on."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts = {code: 0 for code in self.rules_run}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def render_text(self) -> str:
        lines = [violation.render() for violation in self.violations]
        noun = "violation" if len(self.violations) == 1 else "violations"
        lines.append(
            f"{len(self.violations)} {noun} across {self.files_checked} "
            f"file(s) ({len(self.rules_run)} rules)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "version": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "violation_count": len(self.violations),
            "rules": {
                code: {
                    "name": RULES[code].name if code in RULES else code,
                    "count": count,
                }
                for code, count in sorted(self.counts_by_rule().items())
            },
            "violations": [
                {
                    "rule": violation.rule,
                    "path": violation.path,
                    "line": violation.line,
                    "column": violation.column,
                    "message": violation.message,
                    "flow_trace": [
                        {
                            "line": step.line,
                            "column": step.column,
                            "event": step.event,
                        }
                        for step in violation.flow_trace
                    ],
                }
                for violation in self.violations
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_sarif(self) -> str:
        """The report as a SARIF 2.1.0 log (GitHub code scanning).

        One run, one ``rap-lint`` driver; every registered rule that ran
        gets a descriptor (rationale as full description, fix as help),
        and each violation becomes a result whose ``flow_trace`` witness
        is preserved as a SARIF code flow. Columns are converted from
        our 0-based AST offsets to SARIF's 1-based convention.
        """
        driver_rules = []
        descriptor_index: Dict[str, int] = {}
        described = set(self.rules_run) | {
            violation.rule for violation in self.violations
        }
        for code in sorted(described):
            rule = RULES.get(code)
            descriptor = {
                "id": code,
                "name": rule.name if rule else code.lower(),
                "shortDescription": {
                    "text": rule.catches if rule else code
                },
            }
            if rule:
                descriptor["fullDescription"] = {"text": rule.rationale}
                if rule.fix:
                    descriptor["help"] = {"text": rule.fix}
                descriptor["properties"] = {
                    "kind": rule.kind,
                    "scope": rule.scope,
                }
            descriptor_index[code] = len(driver_rules)
            driver_rules.append(descriptor)
        results = []
        for violation in self.violations:
            uri = Path(violation.path).as_posix()
            result = {
                "ruleId": violation.rule,
                "ruleIndex": descriptor_index[violation.rule],
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {
                                "startLine": violation.line,
                                "startColumn": violation.column + 1,
                            },
                        }
                    }
                ],
            }
            if violation.flow_trace:
                result["codeFlows"] = [
                    {
                        "threadFlows": [
                            {
                                "locations": [
                                    {
                                        "location": {
                                            "physicalLocation": {
                                                "artifactLocation": {
                                                    "uri": uri
                                                },
                                                "region": {
                                                    "startLine": step.line,
                                                    "startColumn": (
                                                        step.column + 1
                                                    ),
                                                },
                                            },
                                            "message": {
                                                "text": step.event
                                            },
                                        }
                                    }
                                    for step in violation.flow_trace
                                ]
                            }
                        ]
                    }
                ]
            results.append(result)
        log = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "rap-lint",
                            "rules": driver_rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(log, indent=2, sort_keys=True)


def _discover(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"no python file or directory: {raw}")
    return files


def _module_relpath(file: Path, root: Path) -> str:
    """Path of ``file`` relative to the ``repro`` package, if inside one.

    Scoped rules (``core/``-only, ``hardware/``-only, ...) match against
    this. Files outside any ``repro`` directory fall back to their path
    relative to the lint root, so fixture trees laid out like the
    package (``<tmp>/core/foo.py``) scope the same way.
    """
    parts = file.parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        inner = parts[index + 1 :]
        if inner:
            return "/".join(inner)
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.name


def _expand_codes(requested: Iterable[str]) -> List[str]:
    """Expand exact codes and ``*``-suffix prefixes against the registry.

    ``RAP-LINT02*`` selects every registered ``RAP-LINT02x`` rule, which
    is how CI stages a new rule family before it joins the default
    gate. Unknown exact codes and prefixes matching nothing both raise,
    so a typo never silently selects an empty rule set.
    """
    expanded: List[str] = []
    unknown: List[str] = []
    for raw in requested:
        code = raw.strip().upper()
        if not code:
            continue
        if code.endswith("*"):
            prefix = code[:-1]
            matched = [known for known in sorted(RULES) if
                       known.startswith(prefix)]
            if not matched:
                unknown.append(raw)
            expanded.extend(matched)
        elif code in RULES:
            expanded.append(code)
        else:
            unknown.append(raw)
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return expanded


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Dict[str, Rule]:
    """Resolve --select/--ignore code lists (with ``*`` wildcards)
    against the registry."""
    chosen = dict(RULES)
    if select:
        wanted = set(_expand_codes(select))
        chosen = {code: RULES[code] for code in sorted(wanted)}
    if ignore:
        for code in _expand_codes(ignore):
            chosen.pop(code, None)
    return chosen


def _suppressed(
    violation: Violation,
    source_lines: Sequence[str],
    strict: bool = False,
) -> bool:
    if not 1 <= violation.line <= len(source_lines):
        return False
    match = _NOQA_PATTERN.search(source_lines[violation.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        # A bare suppression silences every rule — except under
        # --strict, where blanket suppressions are inert (and flagged
        # by the suppression audit as RAP-NOQA findings).
        return not strict
    listed = {code.strip().upper() for code in codes.split(",")}
    return violation.rule.upper() in listed


def _audit_suppressions(file: Path, source: str) -> List[Violation]:
    """Strict-mode sweep over real noqa comments.

    Flags bare ``# noqa`` (would suppress everything) and per-code
    suppressions with no reason. Works on tokenized comments, not raw
    lines, so docstrings quoting the noqa syntax never trip it.
    """
    findings: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return findings  # the parse error is reported as RAP-SYNTAX
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_PATTERN.search(token.string)
        if match is None:
            continue
        line, column = token.start
        codes = match.group("codes")
        if codes is None:
            findings.append(
                Violation(
                    rule=NOQA_AUDIT_CODE,
                    path=str(file),
                    line=line,
                    column=column,
                    message=(
                        "bare '# noqa' would silence every rule; strict "
                        "mode requires '# noqa: <code> - <reason>'"
                    ),
                )
            )
        elif match.group("reason") is None:
            findings.append(
                Violation(
                    rule=NOQA_AUDIT_CODE,
                    path=str(file),
                    line=line,
                    column=column,
                    message=(
                        f"suppression of {codes.strip()} gives no reason; "
                        "strict mode requires "
                        "'# noqa: <code> - <reason>'"
                    ),
                )
            )
    return findings


def lint_file(
    file: Path,
    rules: Dict[str, Rule],
    root: Optional[Path] = None,
    strict: bool = False,
) -> List[Violation]:
    """Lint a single file; syntax errors surface as RAP-SYNTAX."""
    source = file.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as error:
        return [
            Violation(
                rule="RAP-SYNTAX",
                path=str(file),
                line=error.lineno or 1,
                column=error.offset or 0,
                message=f"file does not parse: {error.msg}",
            )
        ]
    source_lines = tuple(source.splitlines())
    context = LintContext(
        path=str(file),
        relpath=_module_relpath(file, root or file.parent),
        tree=tree,
        source_lines=source_lines,
    )
    violations: List[Violation] = []
    for rule in rules.values():
        for violation in rule.check(context):
            if not _suppressed(violation, source_lines, strict=strict):
                violations.append(violation)
    if strict:
        violations.extend(_audit_suppressions(file, source))
    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return violations


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    strict: bool = False,
) -> LintReport:
    """Lint files/directories and return the aggregate report."""
    rules = select_rules(select, ignore)
    report = LintReport(rules_run=tuple(sorted(rules)))
    for raw in paths:
        root = Path(raw) if Path(raw).is_dir() else Path(raw).parent
        for file in _discover([raw]):
            report.violations.extend(
                lint_file(file, rules, root=root, strict=strict)
            )
            report.files_checked += 1
    report.violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return report
