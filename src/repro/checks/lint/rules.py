"""Repo-specific AST lint rules (the RAP-LINT registry).

Every rule is a small, self-contained AST analysis with a code, a
kebab-case name, and a rationale tied to a correctness property of the
reproduction:

* **RAP-LINT001 unseeded-rng** — experiments are reproducible only if
  every random draw flows from an explicit seed. Unseeded
  ``random.Random()`` / ``numpy.random.default_rng()`` constructions
  and the process-global RNG front ends (``random.random``,
  ``np.random.rand``, ...) are banned outside
  ``workloads/distributions.py``, the one module allowed to own RNG
  plumbing.
* **RAP-LINT002 float-counter-arithmetic** — RAP counters are exact
  integers; estimates are *guaranteed* lower bounds only because no
  weight is ever rounded away. Assignments that push float arithmetic
  into ``.count`` / ``._events`` inside ``core/`` are banned.
* **RAP-LINT003 node-encapsulation** — the conservation proof relies on
  every ``.count`` / ``.children`` mutation flowing through the tree
  classes. Mutations outside ``RapTree`` / ``MultiDimRapTree`` /
  ``RapNode`` / ``MultiDimNode`` methods (or an ``__init__`` setting
  its own attributes) must justify themselves with a
  ``# noqa: RAP-LINT003`` comment.
* **RAP-LINT004 missing-annotations** — public functions in ``core/``
  and ``hardware/`` are the API other layers build on; they must carry
  full parameter and return annotations.
* **RAP-LINT005 wall-clock** — deterministic experiment code must not
  read wall clocks (``time.time``, ``perf_counter``,
  ``datetime.now``, ...); timing belongs to the benchmark harness.
* **RAP-LINT011 direct-tree-construction** — outside ``core/`` (and
  tests), trees are built through the API v2 constructors —
  ``RapTree.from_config(config)`` for a bare tree,
  ``Profiler.from_config(config, ...)`` for managed ingestion — so
  construction sites stay greppable and pick up constructor-level
  invariants added later.
* **RAP-LINT012 columnar-internals-import** — the struct-of-arrays
  kernel ``repro.core.columnar`` is an implementation detail behind the
  ``TreeBackend`` protocol. Outside ``core/`` the backend is selected
  with ``RapConfig(backend="columnar")``; importing the module directly
  would freeze its column layout into other layers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class FlowStep:
    """One hop of a dataflow witness path (origin ... use)."""

    line: int
    column: int
    event: str


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location.

    Flow-sensitive rules (RAP-LINT006..010) attach a non-empty
    ``flow_trace``: the witness path showing how the offending value
    reached the flagged site.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    flow_trace: Tuple[FlowStep, ...] = ()

    def render(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.column}: {self.rule} "
            f"{self.message}"
        )
        for step in self.flow_trace:
            head += f"\n    line {step.line}: {step.event}"
        return head


@dataclass
class LintContext:
    """Everything a rule needs to analyse one file."""

    path: str
    relpath: str
    tree: ast.Module
    source_lines: Tuple[str, ...]

    def in_package(self, *prefixes: str) -> bool:
        return any(self.relpath.startswith(prefix) for prefix in prefixes)


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names they were imported as.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import
    Random as R`` maps ``R -> random.Random``. Used to resolve call
    targets without assuming particular import spellings.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    top = name.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolved_call_name(
    call: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    """The fully-qualified dotted name a call resolves to, if static."""
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def _iter_scoped(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...], Tuple[str, ...]]]:
    """Walk yielding ``(node, enclosing classes, enclosing functions)``."""

    def visit(
        node: ast.AST, classes: Tuple[str, ...], funcs: Tuple[str, ...]
    ) -> Iterator[Tuple[ast.AST, Tuple[str, ...], Tuple[str, ...]]]:
        for child in ast.iter_child_nodes(node):
            yield child, classes, funcs
            if isinstance(child, ast.ClassDef):
                yield from visit(child, classes + (child.name,), funcs)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from visit(child, classes, funcs + (child.name,))
            else:
                yield from visit(child, classes, funcs)

    yield from visit(tree, (), ())


class Rule:
    """Base class: subclasses set the metadata and implement check().

    ``example`` and ``fix`` feed ``rap lint --explain <code>``: a
    minimal violating snippet and the idiomatic way out. ``kind``,
    ``scope`` and ``catches`` feed the registry-generated rule catalog
    (``python -m repro.checks --catalog``, mirrored in docs/checks.md) —
    one short phrase each, so the docs table regenerates from the
    registry instead of being hand-maintained.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    example: str = ""
    fix: str = ""
    kind: str = "syntactic"
    scope: str = "everywhere"
    catches: str = ""

    def check(self, context: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, context: LintContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


class UnseededRngRule(Rule):
    code = "RAP-LINT001"
    name = "unseeded-rng"
    scope = "all but workloads/distributions.py"
    catches = "unseeded RNG constructions and global-RNG draws"
    rationale = (
        "all randomness must flow from explicit seeds via "
        "workloads.distributions so experiments replay bit-identically"
    )
    example = "rng = np.random.default_rng()   # time-seeded, unreplayable"
    fix = (
        "pass an explicit seed: np.random.default_rng(seed), or use "
        "workloads.distributions.make_rng(seed)"
    )

    _exempt = ("workloads/distributions.py",)
    # Constructors that are fine when given an explicit seed argument.
    _seedable = {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
    # Always-allowed numpy.random attributes (types, not draws).
    _numpy_ok = {"default_rng", "Generator", "BitGenerator", "RandomState",
                 "SeedSequence"}

    def check(self, context: LintContext) -> Iterator[Violation]:
        if context.relpath in self._exempt:
            return
        aliases = _import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolved_call_name(node, aliases)
            if resolved is None:
                continue
            if resolved in self._seedable:
                seeded = bool(node.args or node.keywords) and not (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if not seeded:
                    yield self.violation(
                        context,
                        node,
                        f"unseeded RNG {resolved}(); pass an explicit "
                        f"seed (see workloads.distributions.make_rng)",
                    )
                continue
            if resolved.startswith("random."):
                # Module-level random.* draws use the process-global,
                # time-seeded RNG.
                yield self.violation(
                    context,
                    node,
                    f"{resolved}() draws from the global RNG; construct "
                    f"a seeded Generator instead",
                )
            elif (
                resolved.startswith("numpy.random.")
                and resolved.split(".")[-1] not in self._numpy_ok
            ):
                yield self.violation(
                    context,
                    node,
                    f"{resolved}() uses numpy's legacy global RNG; use "
                    f"a seeded default_rng(seed) Generator",
                )


class FloatCounterRule(Rule):
    code = "RAP-LINT002"
    name = "float-counter-arithmetic"
    scope = "core/"
    catches = "float arithmetic assigned into .count/._events"
    rationale = (
        "counters are exact integers — float arithmetic would turn the "
        "guaranteed lower bounds into approximations"
    )
    example = "node.count = node.count / 2     # counter becomes a float"
    fix = (
        "keep counters integral: use // floor division, or wrap with "
        "int(...) at the boundary where a float is unavoidable"
    )

    _scopes = ("core/",)
    _counter_attrs = {"count", "_events"}

    def _tainted(self, value: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return f"float literal {sub.value!r}"
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return "true division (/) produces a float"
            if isinstance(sub, ast.Call):
                resolved = _resolved_call_name(sub, aliases)
                if resolved == "float":
                    return "float() conversion"
        return None

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        aliases = _import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
                value = node.value
            else:
                continue
            if value is None:
                continue
            counter_targets = [
                target
                for target in targets
                if isinstance(target, ast.Attribute)
                and target.attr in self._counter_attrs
            ]
            if not counter_targets:
                continue
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                yield self.violation(
                    context,
                    node,
                    f"augmented /= on counter "
                    f".{counter_targets[0].attr} makes it a float",
                )
                continue
            taint = self._tainted(value, aliases)
            if taint is not None:
                yield self.violation(
                    context,
                    node,
                    f"assignment to counter .{counter_targets[0].attr} "
                    f"involves {taint}; counters must stay exact ints "
                    f"(wrap with int(...) at the boundary)",
                )


class NodeEncapsulationRule(Rule):
    code = "RAP-LINT003"
    name = "node-encapsulation"
    catches = ".count/.children mutations outside the tree classes"
    rationale = (
        "the conservation proof audits RapTree/MultiDimRapTree methods; "
        "out-of-band .count/.children mutations would invalidate it"
    )
    example = "parent.children.append(node)    # outside the tree classes"
    fix = (
        "go through RapTree/RapNode methods (attach_child, "
        "detach_child), or justify the exception with "
        "'# noqa: RAP-LINT003 - reason'"
    )

    _owner_classes = {"RapTree", "MultiDimRapTree", "RapNode", "MultiDimNode"}
    _mutators = {"append", "insert", "remove", "clear", "pop", "extend",
                 "sort"}

    def _allowed(
        self,
        target: ast.Attribute,
        classes: Tuple[str, ...],
        funcs: Tuple[str, ...],
    ) -> bool:
        if classes and classes[-1] in self._owner_classes:
            return True
        # A class may initialize its own attributes.
        return (
            bool(funcs)
            and funcs[-1] == "__init__"
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node, classes, funcs in _iter_scoped(context.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in ("count", "children")
                        and not self._allowed(target, classes, funcs)
                    ):
                        yield self.violation(
                            context,
                            node,
                            f"direct mutation of node .{target.attr} "
                            f"outside the tree classes; go through "
                            f"RapTree/RapNode methods or justify with "
                            f"a noqa",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._mutators
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "children"
                    and not self._allowed(func.value, classes, funcs)
                ):
                    yield self.violation(
                        context,
                        node,
                        f".children.{func.attr}() outside the tree "
                        f"classes; use attach_child/detach_child or "
                        f"justify with a noqa",
                    )


class MissingAnnotationsRule(Rule):
    code = "RAP-LINT004"
    name = "missing-annotations"
    scope = "core/, hardware/"
    catches = "public functions missing type annotations"
    rationale = (
        "core/ and hardware/ are the load-bearing APIs; annotations "
        "keep refactors honest without a runtime cost"
    )
    example = "def estimate(lo, hi):           # public, unannotated"
    fix = "annotate every parameter and the return: def estimate(lo: int, hi: int) -> int"

    _scopes = ("core/", "hardware/")

    def _missing(self, fn: ast.AST) -> List[str]:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        missing = []
        args = fn.args
        positional = list(args.posonlyargs) + list(args.args)
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if fn.returns is None:
            missing.append("return")
        return missing

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._scopes):
            return
        for node, classes, funcs in _iter_scoped(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if funcs:  # nested function — implementation detail
                continue
            if node.name.startswith("_"):
                continue
            if any(name.startswith("_") for name in classes):
                continue
            missing = self._missing(node)
            if missing:
                yield self.violation(
                    context,
                    node,
                    f"public function {node.name}() is missing type "
                    f"annotations for: {', '.join(missing)}",
                )


class WallClockRule(Rule):
    code = "RAP-LINT005"
    name = "wall-clock"
    catches = "wall-clock reads in deterministic code"
    rationale = (
        "experiment code is deterministic; wall-clock reads belong in "
        "the benchmark harness, not in results"
    )
    example = "start = time.perf_counter()     # inside experiment code"
    fix = (
        "move timing into benchmarks/ (pytest-benchmark owns the "
        "clock); deterministic code reports event counts, not seconds"
    )

    _banned = {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }

    def check(self, context: LintContext) -> Iterator[Violation]:
        aliases = _import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolved_call_name(node, aliases)
            if resolved in self._banned:
                yield self.violation(
                    context,
                    node,
                    f"{resolved}() reads the wall clock inside "
                    f"deterministic code; timing belongs to the "
                    f"benchmark harness",
                )


class DirectTreeConstructionRule(Rule):
    code = "RAP-LINT011"
    name = "direct-tree-construction"
    scope = "all but core/"
    catches = "direct RapTree(...) construction"
    rationale = (
        "API v2 routes tree construction through RapTree.from_config / "
        "Profiler.from_config outside core/, keeping construction sites "
        "greppable and future constructor invariants enforceable"
    )
    example = "tree = RapTree(config)          # outside repro.core"
    fix = (
        "use RapTree.from_config(config), or Profiler.from_config("
        "config, ...) when the stream should go through the sharded "
        "runtime"
    )

    # core/ owns the class and may construct it directly (the v2
    # constructors themselves live there).
    _exempt_scopes = ("core/",)

    def check(self, context: LintContext) -> Iterator[Violation]:
        if context.in_package(*self._exempt_scopes):
            return
        aliases = _import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolved_call_name(node, aliases)
            if resolved is None:
                continue
            if resolved == "RapTree" or resolved.endswith(".RapTree"):
                yield self.violation(
                    context,
                    node,
                    "direct RapTree(...) construction outside "
                    "repro.core; use RapTree.from_config(config) or "
                    "Profiler.from_config(config, ...)",
                )


class ColumnarInternalsImportRule(Rule):
    code = "RAP-LINT012"
    name = "columnar-internals-import"
    scope = "all but core/"
    catches = "imports of repro.core.columnar internals"
    rationale = (
        "repro.core.columnar is an implementation detail behind the "
        "TreeBackend protocol; outside core/ the kernel is selected "
        "with RapConfig(backend=\"columnar\"), so its column layout "
        "never leaks into other layers"
    )
    example = (
        "from repro.core.columnar import ColumnarRapTree   "
        "# outside repro.core"
    )
    fix = (
        "select the kernel through the config knob: "
        "RapTree.from_config(RapConfig(..., backend=\"columnar\")) — "
        "everything downstream (serialization, combine, auditing, the "
        "runtime Profiler) works through the TreeBackend protocol"
    )

    # core/ owns the kernel: config dispatch, the TreeBackend protocol,
    # and the object tree's batch fallbacks import it legitimately.
    _exempt_scopes = ("core/",)
    _target = "repro.core.columnar"

    def _flag(self, context: LintContext, node: ast.AST) -> Violation:
        return self.violation(
            context,
            node,
            "imports repro.core.columnar internals outside repro.core; "
            "select the kernel with RapConfig(backend=\"columnar\") and "
            "RapTree.from_config / Profiler.from_config",
        )

    def check(self, context: LintContext) -> Iterator[Violation]:
        if context.in_package(*self._exempt_scopes):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == self._target or alias.name.startswith(
                        self._target + "."
                    ):
                        yield self._flag(context, node)
                        break
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                # Absolute (repro.core.columnar) or relative
                # (..core.columnar / .columnar) spellings of the module
                # itself.
                names_module = (
                    module == self._target
                    or module.startswith(self._target + ".")
                    or (
                        node.level > 0
                        and (
                            module == "columnar"
                            or module.endswith(".columnar")
                        )
                    )
                )
                # `from repro.core import columnar` (or the relative
                # `from ..core import columnar`) pulls in the same
                # module under an alias.
                names_parent = (
                    module == "repro.core"
                    or (
                        node.level > 0
                        and (module == "core" or module.endswith(".core"))
                    )
                ) and any(alias.name == "columnar" for alias in node.names)
                if names_module or names_parent:
                    yield self._flag(context, node)


class SharedMemoryImportRule(Rule):
    code = "RAP-LINT024"
    name = "raw-shared-memory-import"
    scope = "all but runtime/shm.py"
    catches = "imports of multiprocessing.shared_memory outside the arena"
    rationale = (
        "the stdlib's shared-memory lifecycle needs three corrections "
        "(manual resource-tracker ownership, grow-as-remap retirement "
        "that must not close mapped segments early, prefix-named "
        "segments for crash sweeps) that live in repro.runtime.shm; a "
        "raw SharedMemory at any other call site reintroduces the "
        "unlink races and segfault-on-close hazards the arena exists "
        "to contain"
    )
    example = (
        "from multiprocessing import shared_memory   "
        "# outside repro.runtime.shm"
    )
    fix = (
        "allocate through the arena: ShmArena(prefix).allocate(name, "
        "dtype, capacity) on the owning side, ShmAttachment(table) on "
        "the attaching side, sweep_prefix(prefix) for crash cleanup "
        "(all exported from repro.runtime)"
    )

    # runtime/shm.py *is* the arena — the one sanctioned call site.
    _exempt_scopes = ("runtime/shm.py",)
    _target = "multiprocessing.shared_memory"

    def _flag(self, context: LintContext, node: ast.AST) -> Violation:
        return self.violation(
            context,
            node,
            "imports multiprocessing.shared_memory outside "
            "repro.runtime.shm; go through ShmArena / ShmAttachment / "
            "sweep_prefix so segment ownership, retirement and crash "
            "sweeps stay in one place",
        )

    def check(self, context: LintContext) -> Iterator[Violation]:
        if context.in_package(*self._exempt_scopes):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == self._target or alias.name.startswith(
                        self._target + "."
                    ):
                        yield self._flag(context, node)
                        break
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                # `from multiprocessing.shared_memory import SharedMemory`
                names_module = module == self._target or module.startswith(
                    self._target + "."
                )
                # `from multiprocessing import shared_memory`
                names_parent = module == "multiprocessing" and any(
                    alias.name == "shared_memory" for alias in node.names
                )
                if names_module or names_parent:
                    yield self._flag(context, node)


class HotPathPickleRule(Rule):
    code = "RAP-LINT025"
    name = "hot-path-pickle"
    scope = "runtime/{profiler,worker,ring}.py"
    catches = "pickle imports and dumps/loads calls on the shard data path"
    rationale = (
        "the ring transport's zero-copy contract holds only while the "
        "shard data path never serializes: frames are counted binary "
        "records (repro.core.serialize) written straight into shared "
        "memory and decoded as read-only ndarray views. A pickle-family "
        "import or a dumps/loads call in the producer (profiler.py), "
        "the consumer (worker.py) or the ring itself quietly "
        "reintroduces the per-frame encode/copy the transport was "
        "built to delete — quietly, because the pipe fallback keeps "
        "everything functionally correct while the throughput claim "
        "rots"
    )
    example = (
        "payload = pickle.dumps(frame)   # in repro/runtime/worker.py"
    )
    fix = (
        "stay on the counted-frame codec: encode_frame_into(view, ...) "
        "into a ring slice on the producer side, decode_frame(view) on "
        "the consumer side (both in repro.core.serialize). Control-"
        "plane messages may ride the multiprocessing pipe — its "
        "pickling happens inside the stdlib, not in these modules"
    )

    #: The zero-copy data path: producer, consumer, and the ring itself.
    _hot_paths = (
        "runtime/profiler.py",
        "runtime/worker.py",
        "runtime/ring.py",
    )
    #: Serialization modules whose mere import is a red flag here.
    _modules = (
        "pickle",
        "_pickle",
        "cPickle",
        "cloudpickle",
        "dill",
        "marshal",
    )
    #: Pickle-protocol verbs; dump/load only flagged when resolved to a
    #: serialization module (np.load et al. stay legal), dumps/loads on
    #: any receiver — every stdlib/third-party spelling of those two is
    #: a byte-level serializer.
    _verbs = ("dump", "load")

    def check(self, context: LintContext) -> Iterator[Violation]:
        if not context.in_package(*self._hot_paths):
            return
        aliases = _import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._modules:
                        yield self.violation(
                            context,
                            node,
                            f"imports {alias.name.split('.')[0]} in a "
                            "zero-copy hot-path module; frames travel as "
                            "counted binary records via "
                            "repro.core.serialize (encode_frame_into / "
                            "decode_frame)",
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if not node.level and module.split(".")[0] in self._modules:
                    yield self.violation(
                        context,
                        node,
                        f"imports from {module.split('.')[0]} in a "
                        "zero-copy hot-path module; use the counted-"
                        "frame codec in repro.core.serialize instead",
                    )
            elif isinstance(node, ast.Call):
                resolved = _resolved_call_name(node, aliases) or ""
                head, _, _ = resolved.partition(".")
                leaf = resolved.rsplit(".", 1)[-1]
                if head in self._modules and leaf in self._verbs + (
                    "dumps",
                    "loads",
                ):
                    yield self.violation(
                        context,
                        node,
                        f"calls {resolved}() on the shard data path; "
                        "encode with encode_frame_into / decode with "
                        "decode_frame (repro.core.serialize) instead of "
                        "serializing",
                    )
                elif leaf in ("dumps", "loads"):
                    yield self.violation(
                        context,
                        node,
                        f"calls {leaf}() on the shard data path; byte-"
                        "level serialization is banned in the zero-copy "
                        "transport modules — use the counted-frame "
                        "codec in repro.core.serialize",
                    )


#: The purely syntactic rules defined in this module. The full
#: registry — these plus the flow-sensitive RAP-LINT006..010 — lives in
#: :mod:`repro.checks.lint.registry`.
SYNTACTIC_RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        UnseededRngRule(),
        FloatCounterRule(),
        NodeEncapsulationRule(),
        MissingAnnotationsRule(),
        WallClockRule(),
        DirectTreeConstructionRule(),
        ColumnarInternalsImportRule(),
        SharedMemoryImportRule(),
        HotPathPickleRule(),
    )
}
