"""Custom AST lint pass over the reproduction source (``rap lint``).

See :mod:`repro.checks.lint.rules` for the rule registry (RAP-LINT001
through RAP-LINT005 and their rationales) and
:mod:`repro.checks.lint.runner` for the driver, suppression comments
and output formats.
"""

from .rules import RULES, LintContext, Rule, Violation, all_rule_codes
from .runner import (
    JSON_SCHEMA_VERSION,
    LintReport,
    lint_file,
    lint_paths,
    select_rules,
)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "all_rule_codes",
    "lint_file",
    "lint_paths",
    "select_rules",
]
