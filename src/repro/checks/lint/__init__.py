"""Custom AST lint pass over the reproduction source (``rap lint``).

See :mod:`repro.checks.lint.rules` for the syntactic rules
(RAP-LINT001..005 and 011), :mod:`repro.checks.flow.rules` for the
flow-sensitive rules (RAP-LINT006..010),
:mod:`repro.checks.lint.registry` for the combined registry, and
:mod:`repro.checks.lint.runner` for the driver, suppression comments
and output formats.
"""

from .rules import FlowStep, LintContext, Rule, Violation
from .registry import RULES, all_rule_codes, explain_rule
from .runner import (
    JSON_SCHEMA_VERSION,
    LintReport,
    lint_file,
    lint_paths,
    select_rules,
)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "FlowStep",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "all_rule_codes",
    "explain_rule",
    "lint_file",
    "lint_paths",
    "select_rules",
]
