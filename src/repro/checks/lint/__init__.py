"""Custom AST lint pass over the reproduction source (``rap lint``).

See :mod:`repro.checks.lint.rules` for the syntactic rules,
:mod:`repro.checks.flow.rules` for the flow-sensitive rules,
:mod:`repro.checks.flow.concurrency` for the interprocedural
concurrency rules, :mod:`repro.checks.lint.registry` for the combined
registry (the single source of truth for the rule list and count), and
:mod:`repro.checks.lint.runner` for the driver, suppression comments
and output formats.
"""

from .rules import FlowStep, LintContext, Rule, Violation
from .registry import (
    RULES,
    all_rule_codes,
    catalog_markdown,
    explain_rule,
    rule_count,
)
from .runner import (
    JSON_SCHEMA_VERSION,
    NOQA_AUDIT_CODE,
    LintReport,
    lint_file,
    lint_paths,
    select_rules,
)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "NOQA_AUDIT_CODE",
    "FlowStep",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "all_rule_codes",
    "catalog_markdown",
    "explain_rule",
    "lint_file",
    "lint_paths",
    "rule_count",
    "select_rules",
]
