"""Module-level interprocedural call graph with concurrency summaries.

The flow rules in :mod:`repro.checks.flow` are intraprocedural: one CFG
per function, facts die at the call boundary. Lock discipline does not —
``close()`` holding the ingest lock while a helper three calls down
blocks on a queue is exactly the bug class runtime testing is worst at
reproducing. This module builds, per source file, a conservative call
graph whose nodes carry *concurrency summaries*:

* locks acquired (``with self._lock:`` regions and raw ``.acquire()``
  calls), with the nesting pairs observed inside one function;
* thread-boundary crossings — ``threading.Thread(target=...)``
  constructions and executor ``.submit(...)`` calls, with their resolved
  targets when static;
* blocking operations (``Condition.wait``, ``.join()``, queue ``put``/
  ``get``, ``time.sleep``, file opens), with the locks held at the site;
* mutations of ``self.<attr>`` numpy buffers, with the locks held.

Call edges are resolved *conservatively*: only ``self.method()`` within
the same class and bare ``function()`` calls to module-level functions
produce edges. Anything dynamic (``obj.method()``, higher-order calls)
is dropped rather than guessed, so every interprocedural fact the
graph reports corresponds to a real static chain — the same
under-approximation stance the CFG builder documents.

Lock identity is *name-based*: ``self._lock`` inside class ``C``
canonicalises to ``C._lock``; a module-level ``lock`` keeps its name;
function locals are qualified with the function name so they never
collide across functions. A ``with``/``acquire`` target counts as a
lock if the module binds it to ``threading.Lock``/``RLock``/
``Condition`` (conditions guard their underlying lock) or its last
component contains ``lock``/``mutex``. ``threading.Condition(self._x)``
ties the condition to ``self._x`` — waiting on a condition while
holding the lock it was built from is the documented protocol, and
RAP-LINT016 exempts exactly those ties.

The consumers are the concurrency rules RAP-LINT013..017
(:mod:`repro.checks.flow.concurrency`) and ``docs/checks.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .flow.cfg import Unit, iter_units
from .lint.rules import _dotted, _import_aliases, _resolved_call_name

#: Constructors whose result is a mutual-exclusion primitive.
LOCK_CONSTRUCTORS = frozenset({"threading.Lock", "threading.RLock"})
#: Constructor of a condition variable (guards its underlying lock).
CONDITION_CONSTRUCTOR = "threading.Condition"

#: numpy allocators whose result is a shared buffer when stored on self.
NUMPY_BUFFER_CONSTRUCTORS = frozenset(
    {
        "numpy.zeros",
        "numpy.empty",
        "numpy.ones",
        "numpy.full",
        "numpy.array",
        "numpy.asarray",
        "numpy.arange",
        "numpy.frombuffer",
        "numpy.zeros_like",
        "numpy.empty_like",
    }
)

#: Attribute methods that block the calling thread wherever they appear.
_BLOCKING_ATTRS = frozenset({"wait", "wait_for", "join", "put"})
#: Resolved call names that block (IO, sleeps, subprocesses).
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "input",
        "select.select",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "open",
        "io.open",
        "gzip.open",
        "bz2.open",
        "lzma.open",
        "tarfile.open",
    }
)

#: In-place numpy mutators (element writes are caught structurally).
_BUFFER_MUTATORS = frozenset({"fill", "sort", "partition", "resize"})

_SKIP_WALK = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass(frozen=True)
class LockSite:
    """One lock acquisition: a ``with`` item or a raw ``.acquire()``."""

    lock: str
    line: int
    col: int
    how: str  # "with" | "acquire"


@dataclass(frozen=True)
class CallSite:
    """A statically resolvable call, with the locks held at the site."""

    callee: Tuple[str, str]  # ("self", method) or ("", function)
    text: str
    line: int
    col: int
    held: Tuple[LockSite, ...]


@dataclass(frozen=True)
class BlockingSite:
    """A call that can block, with receiver identity and held locks."""

    what: str
    receiver: Optional[str]  # canonical dotted receiver, if static
    line: int
    col: int
    held: Tuple[LockSite, ...]


@dataclass(frozen=True)
class ThreadSpawn:
    """A ``threading.Thread(target=...)`` or executor ``.submit(...)``."""

    target: Optional[Tuple[str, str]]  # like CallSite.callee, if static
    kind: str  # "thread" | "submit"
    line: int
    col: int


@dataclass(frozen=True)
class MutationSite:
    """An in-place write to a ``self.<attr>`` numpy buffer."""

    attr: str
    how: str
    line: int
    col: int
    held: Tuple[LockSite, ...]


@dataclass
class FunctionSummary:
    """Per-function concurrency facts, one per analysis unit."""

    qualname: str
    class_name: Optional[str]
    line: int
    acquires: List[LockSite] = field(default_factory=list)
    #: (outer, inner) acquisition pairs observed by lexical nesting.
    order_pairs: List[Tuple[LockSite, LockSite]] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)
    spawns: List[ThreadSpawn] = field(default_factory=list)
    buffer_mutations: List[MutationSite] = field(default_factory=list)
    #: self buffer attrs referenced at all (read or written).
    buffer_touches: Set[str] = field(default_factory=set)

    @property
    def leaf_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleBindings:
    """Module-wide name facts the summaries canonicalise against."""

    #: Canonical names known to be locks (incl. conditions).
    locks: Set[str] = field(default_factory=set)
    #: Canonical condition name -> canonical lock it guards.
    condition_ties: Dict[str, str] = field(default_factory=dict)
    #: class -> {attr: allocation line} for numpy buffers on self.
    buffers: Dict[str, Dict[str, int]] = field(default_factory=dict)


def canonical_name(
    dotted: Optional[str], class_name: Optional[str]
) -> Optional[str]:
    """``self.x`` inside class ``C`` becomes ``C.x``; else unchanged."""
    if dotted is None:
        return None
    if dotted == "self":
        return class_name or dotted
    if dotted.startswith("self.") and class_name is not None:
        return class_name + dotted[len("self"):]
    return dotted


def is_lock_name(canon: Optional[str], bindings: ModuleBindings) -> bool:
    """Whether a canonical dotted name denotes a lock.

    Known module bindings (``threading.Lock``/``RLock``/``Condition``)
    are authoritative; otherwise fall back to the naming convention —
    a last component containing ``lock`` or ``mutex``.
    """
    if canon is None:
        return False
    if canon in bindings.locks:
        return True
    last = canon.rsplit(".", 1)[-1].lower()
    return "lock" in last or "mutex" in last


def collect_bindings(
    tree: ast.Module, aliases: Dict[str, str]
) -> ModuleBindings:
    """Scan every assignment for lock/condition/buffer bindings."""
    bindings = ModuleBindings()

    def record(target: ast.expr, value: ast.expr, cls: Optional[str]) -> None:
        if not isinstance(value, ast.Call):
            return
        canon = canonical_name(_dotted(target), cls)
        if canon is None:
            return
        resolved = _resolved_call_name(value, aliases)
        if resolved in LOCK_CONSTRUCTORS:
            bindings.locks.add(canon)
        elif resolved == CONDITION_CONSTRUCTOR:
            bindings.locks.add(canon)
            if value.args:
                guarded = canonical_name(_dotted(value.args[0]), cls)
                if guarded is not None:
                    bindings.condition_ties[canon] = guarded
            else:
                # A bare Condition owns a private lock: waiting on it
                # while "holding" it is the normal protocol.
                bindings.condition_ties[canon] = canon
        elif resolved in NUMPY_BUFFER_CONSTRUCTORS and cls is not None:
            dotted = _dotted(target)
            if dotted is not None and dotted.startswith("self."):
                attr = dotted[len("self."):]
                if "." not in attr:
                    bindings.buffers.setdefault(cls, {}).setdefault(
                        attr, target.lineno
                    )

    def visit(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
                continue
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    record(target, child.value, cls)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                record(child.target, child.value, cls)
            visit(child, cls)

    visit(tree, None)
    return bindings


class _SummaryBuilder:
    """Walk one function body tracking the lexical lock-region stack."""

    def __init__(
        self,
        unit: Unit,
        aliases: Dict[str, str],
        bindings: ModuleBindings,
    ) -> None:
        self.aliases = aliases
        self.bindings = bindings
        self.class_name = unit.classes[-1] if unit.classes else None
        self.summary = FunctionSummary(
            qualname=unit.name,
            class_name=self.class_name,
            line=getattr(unit.node, "lineno", 1),
        )
        self._unit = unit

    def build(self) -> FunctionSummary:
        self._scan_body(self._unit.node.body, [])
        return self.summary

    # -- lock identity -----------------------------------------------------

    def _canon(self, expr: ast.AST) -> Optional[str]:
        return canonical_name(_dotted(expr), self.class_name)

    def _is_lock(self, canon: Optional[str]) -> bool:
        return is_lock_name(canon, self.bindings)

    # -- the walk ----------------------------------------------------------

    def _scan_body(
        self, stmts: Sequence[ast.stmt], held: List[LockSite]
    ) -> None:
        suite_held = list(held)
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested units get their own summaries
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[LockSite] = []
                for item in stmt.items:
                    canon = self._canon(item.context_expr)
                    if self._is_lock(canon):
                        acquired.append(
                            LockSite(
                                lock=canon,  # type: ignore[arg-type]
                                line=item.context_expr.lineno,
                                col=item.context_expr.col_offset,
                                how="with",
                            )
                        )
                    else:
                        self._scan_exprs(item.context_expr, suite_held)
                for outer in suite_held:
                    for inner in acquired:
                        self.summary.order_pairs.append((outer, inner))
                self.summary.acquires.extend(acquired)
                self._scan_body(stmt.body, suite_held + acquired)
                continue
            header, bodies = _stmt_parts(stmt)
            for expr in header:
                self._scan_exprs(expr, suite_held)
            self._scan_mutations(stmt, header, suite_held)
            suite_held = self._apply_manual_locks(header, suite_held)
            for body in bodies:
                self._scan_body(body, suite_held)

    def _apply_manual_locks(
        self, header: Sequence[ast.AST], held: List[LockSite]
    ) -> List[LockSite]:
        """Extend/shrink the held set on raw acquire()/release() calls.

        Suite-level approximation: an acquire inside a nested branch
        does not leak into the enclosing suite (under-approximating held
        regions, which can only miss reports, never invent them).
        RAP-LINT014 handles the path-sensitive balance question on the
        CFG instead.
        """
        current = held
        for expr in header:
            current = self._lock_calls_in(expr, current)
        return current

    def _lock_calls_in(
        self, expr: ast.AST, held: List[LockSite]
    ) -> List[LockSite]:
        current = held
        for call in _walk_calls(expr):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            canon = self._canon(func.value)
            if not self._is_lock(canon):
                continue
            if func.attr == "acquire":
                site = LockSite(
                    lock=canon,  # type: ignore[arg-type]
                    line=call.lineno,
                    col=call.col_offset,
                    how="acquire",
                )
                for outer in current:
                    self.summary.order_pairs.append((outer, site))
                self.summary.acquires.append(site)
                current = current + [site]
            elif func.attr == "release":
                current = [s for s in current if s.lock != canon]
        return current

    def _scan_exprs(self, root: ast.AST, held: List[LockSite]) -> None:
        held_tuple = tuple(held)
        for call in _walk_calls(root):
            self._record_spawn(call)
            self._record_blocking(call, held_tuple)
            self._record_call_edge(call, held_tuple)
        for sub in _walk_pruned(root):
            if isinstance(sub, ast.Attribute):
                attr = self._self_buffer_attr(sub)
                if attr is not None:
                    self.summary.buffer_touches.add(attr)

    def _record_spawn(self, call: ast.Call) -> None:
        resolved = _resolved_call_name(call, self.aliases)
        if resolved == "threading.Thread":
            target: Optional[ast.expr] = None
            for keyword in call.keywords:
                if keyword.arg == "target":
                    target = keyword.value
            self.summary.spawns.append(
                ThreadSpawn(
                    target=self._callee_of(target),
                    kind="thread",
                    line=call.lineno,
                    col=call.col_offset,
                )
            )
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit"
            and call.args
        ):
            self.summary.spawns.append(
                ThreadSpawn(
                    target=self._callee_of(call.args[0]),
                    kind="submit",
                    line=call.lineno,
                    col=call.col_offset,
                )
            )

    def _record_blocking(
        self, call: ast.Call, held: Tuple[LockSite, ...]
    ) -> None:
        func = call.func
        what: Optional[str] = None
        receiver: Optional[str] = None
        if isinstance(func, ast.Attribute):
            receiver = self._canon(func.value)
            if func.attr in _BLOCKING_ATTRS:
                base = receiver or "<dynamic>"
                what = f"{base}.{func.attr}()"
            elif (
                func.attr == "get"
                and receiver is not None
                and "queue" in receiver.lower()
            ):
                what = f"{receiver}.get()"
        if what is None:
            resolved = _resolved_call_name(call, self.aliases)
            if resolved in BLOCKING_CALLS:
                what = f"{resolved}()"
                receiver = None
        if what is not None:
            self.summary.blocking.append(
                BlockingSite(
                    what=what,
                    receiver=receiver,
                    line=call.lineno,
                    col=call.col_offset,
                    held=held,
                )
            )

    def _record_call_edge(
        self, call: ast.Call, held: Tuple[LockSite, ...]
    ) -> None:
        callee = self._callee_of(call.func)
        if callee is None:
            return
        self.summary.calls.append(
            CallSite(
                callee=callee,
                text=_render_call(call),
                line=call.lineno,
                col=call.col_offset,
                held=held,
            )
        )

    def _callee_of(
        self, expr: Optional[ast.expr]
    ) -> Optional[Tuple[str, str]]:
        if isinstance(expr, ast.Name):
            return ("", expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return ("self", expr.attr)
        return None

    # -- buffer mutations --------------------------------------------------

    def _self_buffer_attr(self, expr: ast.AST) -> Optional[str]:
        if self.class_name is None:
            return None
        buffers = self.bindings.buffers.get(self.class_name)
        if not buffers:
            return None
        dotted = _dotted(expr)
        if dotted is None or not dotted.startswith("self."):
            return None
        attr = dotted[len("self."):]
        return attr if attr in buffers else None

    def _scan_mutations(
        self,
        stmt: ast.stmt,
        header: Sequence[ast.AST],
        held: List[LockSite],
    ) -> None:
        held_tuple = tuple(held)

        def base_buffer(target: ast.expr) -> Optional[str]:
            if isinstance(target, ast.Subscript):
                return self._self_buffer_attr(target.value)
            return self._self_buffer_attr(target)

        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    attr = self._self_buffer_attr(target.value)
                    if attr is not None:
                        self._mutation(
                            attr, "element store", target, held_tuple
                        )
        elif isinstance(stmt, ast.AugAssign):
            attr = base_buffer(stmt.target)
            if attr is not None:
                self._mutation(
                    attr, "augmented assignment", stmt.target, held_tuple
                )
        for expr in header:
            self._scan_mutator_calls(expr, held_tuple)

    def _scan_mutator_calls(
        self, expr: ast.AST, held: Tuple[LockSite, ...]
    ) -> None:
        for call in _walk_calls(expr):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _BUFFER_MUTATORS
            ):
                attr = self._self_buffer_attr(func.value)
                if attr is not None:
                    self._mutation(
                        attr, f".{func.attr}() call", call, held
                    )

    def _mutation(
        self,
        attr: str,
        how: str,
        site: ast.AST,
        held: Tuple[LockSite, ...],
    ) -> None:
        self.summary.buffer_mutations.append(
            MutationSite(
                attr=attr,
                how=how,
                line=getattr(site, "lineno", self.summary.line),
                col=getattr(site, "col_offset", 0),
                held=held,
            )
        )
        self.summary.buffer_touches.add(attr)


@dataclass(frozen=True)
class OrderConflict:
    """Two lock orders observed in both directions across the module."""

    first: str
    second: str
    #: (line, col, event) witness steps for each direction.
    forward: Tuple[Tuple[int, int, str], ...]
    reverse: Tuple[Tuple[int, int, str], ...]
    line: int
    col: int


class CallGraph:
    """Per-module call graph over :class:`FunctionSummary` nodes."""

    #: Call chains longer than this are pruned (keeps the transitive
    #: queries linear on real modules and the witnesses readable).
    MAX_DEPTH = 4

    def __init__(
        self,
        summaries: Sequence[FunctionSummary],
        bindings: ModuleBindings,
    ) -> None:
        self.functions: Dict[str, FunctionSummary] = {
            summary.qualname: summary for summary in summaries
        }
        self.bindings = bindings
        self._lock_memo: Dict[
            str, List[Tuple[LockSite, Tuple[CallSite, ...]]]
        ] = {}
        self._block_memo: Dict[
            str, List[Tuple[BlockingSite, Tuple[CallSite, ...]]]
        ] = {}

    @classmethod
    def from_module(cls, tree: ast.Module) -> "CallGraph":
        aliases = _import_aliases(tree)
        bindings = collect_bindings(tree, aliases)
        summaries = [
            _SummaryBuilder(unit, aliases, bindings).build()
            for unit in iter_units(tree)
            if not unit.is_module
        ]
        return cls(summaries, bindings)

    # -- edges -------------------------------------------------------------

    def resolve(
        self, caller: FunctionSummary, call: CallSite
    ) -> List[FunctionSummary]:
        kind, name = call.callee
        if kind == "self" and caller.class_name is not None:
            qualname = f"{caller.class_name}.{name}"
        elif kind == "":
            qualname = name
        else:
            return []
        summary = self.functions.get(qualname)
        return [summary] if summary is not None else []

    # -- transitive queries ------------------------------------------------

    def transitive_locks(
        self, summary: FunctionSummary
    ) -> List[Tuple[LockSite, Tuple[CallSite, ...]]]:
        """Locks acquired by ``summary`` or any resolvable callee."""
        return self._transitive(
            summary, self._lock_memo, lambda s: s.acquires
        )

    def transitive_blocking(
        self, summary: FunctionSummary
    ) -> List[Tuple[BlockingSite, Tuple[CallSite, ...]]]:
        """Blocking sites in ``summary`` or any resolvable callee."""
        return self._transitive(
            summary, self._block_memo, lambda s: s.blocking
        )

    def _transitive(self, summary, memo, facts_of, _visiting=None):
        if summary.qualname in memo:
            return memo[summary.qualname]
        visiting = _visiting if _visiting is not None else set()
        if summary.qualname in visiting:
            return []  # recursion: the cycle adds no new facts
        visiting.add(summary.qualname)
        out = [(fact, ()) for fact in facts_of(summary)]
        for call in summary.calls:
            for callee in self.resolve(summary, call):
                for fact, chain in self._transitive(
                    callee, memo, facts_of, visiting
                ):
                    if len(chain) + 1 <= self.MAX_DEPTH:
                        out.append((fact, (call,) + chain))
        visiting.discard(summary.qualname)
        if _visiting is None:
            memo[summary.qualname] = out
        return out

    # -- lock-order conflicts (RAP-LINT015) --------------------------------

    def lock_order_pairs(
        self,
    ) -> Dict[Tuple[str, str], Tuple[Tuple[int, int, str], ...]]:
        """First witness per (outer-lock, inner-lock) order observed."""
        pairs: Dict[Tuple[str, str], Tuple[Tuple[int, int, str], ...]] = {}

        def note(outer: str, inner: str, steps) -> None:
            key = (outer, inner)
            if key not in pairs:
                pairs[key] = tuple(steps)

        for summary in self.functions.values():
            for outer, inner in summary.order_pairs:
                if outer.lock == inner.lock:
                    continue
                note(
                    outer.lock,
                    inner.lock,
                    [
                        (
                            outer.line,
                            outer.col,
                            f"{summary.qualname}: acquires {outer.lock}",
                        ),
                        (
                            inner.line,
                            inner.col,
                            f"{summary.qualname}: acquires {inner.lock} "
                            f"while holding {outer.lock}",
                        ),
                    ],
                )
            for call in summary.calls:
                if not call.held:
                    continue
                for callee in self.resolve(summary, call):
                    for site, chain in self.transitive_locks(callee):
                        for outer in call.held:
                            if outer.lock == site.lock:
                                continue
                            steps = [
                                (
                                    outer.line,
                                    outer.col,
                                    f"{summary.qualname}: acquires "
                                    f"{outer.lock}",
                                ),
                                (
                                    call.line,
                                    call.col,
                                    f"{summary.qualname}: calls "
                                    f"{call.text} while holding "
                                    f"{outer.lock}",
                                ),
                            ]
                            steps.extend(
                                (
                                    hop.line,
                                    hop.col,
                                    f"which calls {hop.text}",
                                )
                                for hop in chain
                            )
                            steps.append(
                                (
                                    site.line,
                                    site.col,
                                    f"{callee.qualname}: acquires "
                                    f"{site.lock}",
                                )
                            )
                            note(outer.lock, site.lock, steps)
        return pairs

    def lock_order_conflicts(self) -> List[OrderConflict]:
        """(A before B) and (B before A) both observed in this module."""
        pairs = self.lock_order_pairs()
        conflicts: List[OrderConflict] = []
        for (first, second), forward in sorted(pairs.items()):
            if first >= second:
                continue  # report each unordered pair once
            reverse = pairs.get((second, first))
            if reverse is None:
                continue
            # Anchor the report at the later of the two inner
            # acquisitions, which is usually the edit that broke order.
            anchor = max(forward[-1], reverse[-1])
            conflicts.append(
                OrderConflict(
                    first=first,
                    second=second,
                    forward=forward,
                    reverse=reverse,
                    line=anchor[0],
                    col=anchor[1],
                )
            )
        return conflicts

    # -- thread-side classification (RAP-LINT017) --------------------------

    def spawned_classes(self) -> Dict[str, ThreadSpawn]:
        """class name -> first spawn targeting one of its methods."""
        spawned: Dict[str, ThreadSpawn] = {}
        for summary in self.functions.values():
            if summary.class_name is None:
                continue
            for spawn in summary.spawns:
                if spawn.target is None:
                    continue
                kind, _name = spawn.target
                if kind == "self":
                    spawned.setdefault(summary.class_name, spawn)
        return spawned

    def worker_methods(self, class_name: str) -> Set[str]:
        """Qualnames reachable from any thread entry of ``class_name``."""
        entries: Set[str] = set()
        for summary in self.functions.values():
            if summary.class_name != class_name:
                continue
            for spawn in summary.spawns:
                if spawn.target is None:
                    continue
                kind, name = spawn.target
                if kind == "self":
                    entries.add(f"{class_name}.{name}")
        reachable: Set[str] = set()
        stack = [entry for entry in entries if entry in self.functions]
        while stack:
            qualname = stack.pop()
            if qualname in reachable:
                continue
            reachable.add(qualname)
            summary = self.functions[qualname]
            for call in summary.calls:
                for callee in self.resolve(summary, call):
                    if callee.qualname not in reachable:
                        stack.append(callee.qualname)
        return reachable


# -- small AST helpers -----------------------------------------------------


def _walk_pruned(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested defs/lambdas."""
    stack: List[ast.AST] = [root]
    while stack:
        current = stack.pop()
        if isinstance(current, _SKIP_WALK):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _walk_calls(root: ast.AST) -> Iterator[ast.Call]:
    for sub in _walk_pruned(root):
        if isinstance(sub, ast.Call):
            yield sub


def _stmt_parts(
    stmt: ast.stmt,
) -> Tuple[List[ast.AST], List[Sequence[ast.stmt]]]:
    """(header expressions, nested statement suites) of one statement."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test], [stmt.body, stmt.orelse]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter], [stmt.body, stmt.orelse]
    if isinstance(stmt, ast.Try):
        header: List[ast.AST] = [
            handler.type
            for handler in stmt.handlers
            if handler.type is not None
        ]
        bodies: List[Sequence[ast.stmt]] = [stmt.body]
        bodies.extend(handler.body for handler in stmt.handlers)
        bodies.extend([stmt.orelse, stmt.finalbody])
        return header, bodies
    match_type = getattr(ast, "Match", None)
    if match_type is not None and isinstance(stmt, match_type):
        return [stmt.subject], [case.body for case in stmt.cases]
    return [stmt], []


def _render_call(call: ast.Call) -> str:
    try:
        text = ast.unparse(call.func) + "(...)"
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<call>"
    return text if len(text) <= 60 else text[:57] + "..."


def build_callgraph(tree: ast.Module) -> CallGraph:
    """Convenience entry point: summaries + bindings for one module."""
    return CallGraph.from_module(tree)
