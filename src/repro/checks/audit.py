"""The tree auditor: invariant checks bundled into reports.

:class:`TreeAuditor` runs the :mod:`repro.checks.invariants` battery
against a live :class:`~repro.core.RapTree` or
:class:`~repro.core.MultiDimRapTree` and folds the findings into an
:class:`AuditReport`. Three ways to invoke it:

* directly, from tests or a debugger: ``TreeAuditor().audit(tree)``;
* as a debug hook on the hot path: ``RapConfig(audit_every=N)`` makes
  the tree audit itself every ``N`` events and raise
  :class:`AuditError` on the first violation;
* over a recorded trace: :func:`audit_stream` (the CLI's ``rap audit``)
  replays a stream, audits after every batched merge, and finishes with
  the exact-oracle estimate check.

Note that split-threshold discipline is a property of trees grown by
``add()``: trees assembled by :func:`repro.core.combine.combine_trees`
or loaded from dumps may legally carry heavier counters, so audit those
with ``TreeAuditor(discipline=False)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import RapConfig
from ..core.multidim import MultiDimRapTree
from ..core.tree import RapTree
from . import invariants
from .invariants import AuditFinding

AnyTree = Union[RapTree, MultiDimRapTree]


class AuditError(AssertionError):
    """Raised when a fatal audit finds violated invariants.

    Subclasses ``AssertionError`` so the ``audit_every`` hook composes
    with test suites that already expect structural checks to assert.
    """

    def __init__(self, report: "AuditReport") -> None:
        super().__init__(report.render())
        self.report = report


@dataclass
class AuditReport:
    """Outcome of one audit pass over one tree."""

    findings: List[AuditFinding] = field(default_factory=list)
    invariants_checked: Tuple[str, ...] = ()
    events: int = 0
    node_count: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        head = (
            f"audit of {self.node_count} nodes / {self.events:,} events "
            f"({', '.join(self.invariants_checked)})"
        )
        if self.ok:
            return f"{head}: clean"
        lines = [f"{head}: {len(self.findings)} violation(s)"]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AuditError(self)


class TreeAuditor:
    """Configurable structural auditor for RAP trees.

    Each keyword toggles one invariant family; all default to on. The
    ``discipline`` family should be disabled for trees that were built
    by combination or deserialization rather than grown event by event.
    """

    def __init__(
        self,
        *,
        geometry: bool = True,
        conservation: bool = True,
        discipline: bool = True,
        schedule: bool = True,
        budget: bool = True,
    ) -> None:
        self.geometry = geometry
        self.conservation = conservation
        self.discipline = discipline
        self.schedule = schedule
        self.budget = budget

    def _enabled(self) -> Tuple[str, ...]:
        return tuple(
            name
            for name in (
                "geometry",
                "conservation",
                "discipline",
                "schedule",
                "budget",
            )
            if getattr(self, name)
        )

    def audit(self, tree: AnyTree) -> AuditReport:
        """Run every enabled structural invariant against ``tree``."""
        if isinstance(tree, MultiDimRapTree):
            checks = {
                "geometry": invariants.check_geometry_multidim,
                "conservation": invariants.check_conservation_multidim,
                "discipline": invariants.check_discipline_multidim,
                "schedule": invariants.check_schedule_multidim,
                "budget": invariants.check_budget_multidim,
            }
        else:
            checks = {
                "geometry": invariants.check_geometry,
                "conservation": invariants.check_conservation,
                "discipline": invariants.check_discipline,
                "schedule": invariants.check_schedule,
                "budget": invariants.check_budget,
            }
        enabled = self._enabled()
        findings: List[AuditFinding] = []
        for name in enabled:
            findings.extend(checks[name](tree))
        return AuditReport(
            findings=findings,
            invariants_checked=enabled,
            events=tree.events,
            node_count=tree.node_count,
        )

    def audit_with_oracle(
        self,
        tree: RapTree,
        exact_counts: Dict[int, int],
        queries: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> AuditReport:
        """Structural audit plus the lower-bound estimate check."""
        report = self.audit(tree)
        report.findings.extend(
            invariants.check_estimates(tree, exact_counts, queries)
        )
        report.invariants_checked = report.invariants_checked + ("estimates",)
        return report


# ----------------------------------------------------------------------
# Trace replay (the CLI's ``rap audit``)
# ----------------------------------------------------------------------


@dataclass
class TraceAuditReport:
    """Result of replaying a stream under continuous auditing."""

    stream_name: str
    epsilon: float
    events: int = 0
    node_count: int = 0
    merge_batches: int = 0
    audits_run: int = 0
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"audit of {self.stream_name}: {self.events:,} events, "
            f"eps={self.epsilon:.2%}",
            f"  {self.node_count} nodes, {self.merge_batches} merge "
            f"batches, {self.audits_run} audit passes",
        ]
        if self.ok:
            lines.append(
                "  all invariants hold: partition geometry, counter "
                "conservation, split discipline, merge schedule, node "
                "budget, estimate bounds"
            )
        else:
            lines.append(f"  {len(self.findings)} violation(s):")
            lines.extend(f"    {finding.render()}" for finding in self.findings)
        return "\n".join(lines)


def audit_stream(
    stream: "Sequence[int]",
    *,
    universe: Optional[int] = None,
    epsilon: float = 0.01,
    branching: int = 4,
    name: str = "stream",
) -> TraceAuditReport:
    """Replay ``stream`` into a fresh tree, auditing after every merge.

    ``stream`` may be any iterable of integers; an
    :class:`~repro.workloads.streams.EventStream` supplies its own
    ``universe``, ``name`` and exact oracle, otherwise ``universe`` must
    be given and the oracle is accumulated during the replay.
    """
    stream_universe = getattr(stream, "universe", None) or universe
    if stream_universe is None:
        raise ValueError("universe is required for plain iterables")
    stream_name = getattr(stream, "name", None) or name

    config = RapConfig(
        range_max=stream_universe, epsilon=epsilon, branching=branching
    )
    tree = RapTree.from_config(config)
    auditor = TreeAuditor()
    result = TraceAuditReport(stream_name=stream_name, epsilon=epsilon)

    exact: Dict[int, int] = {}
    last_batches = 0
    for value in stream:
        tree.add(value)
        exact[value] = exact.get(value, 0) + 1
        batches = tree.merge_scheduler.batches_fired
        if batches != last_batches:
            last_batches = batches
            report = auditor.audit(tree)
            result.findings.extend(report.findings)
            result.audits_run += 1

    final = auditor.audit_with_oracle(tree, exact)
    result.findings.extend(final.findings)
    result.audits_run += 1
    result.events = tree.events
    result.node_count = tree.node_count
    result.merge_batches = last_batches
    return result


def self_audit(events: int = 20_000, epsilon: float = 0.02) -> List[TraceAuditReport]:
    """The built-in smoke battery behind ``python -m repro.checks --strict``.

    Replays three deterministic stream shapes — zipf-skewed values,
    uniform noise, and a phase-shifting mixture — under continuous
    auditing, one report per shape.
    """
    from ..workloads.distributions import make_rng, sample_zipf_ranks

    universe = 2**16
    rng = make_rng(1234)

    zipf = [
        int(v) for v in sample_zipf_ranks(rng, events, universe, 1.2)
    ]
    uniform = [int(v) for v in rng.integers(0, universe, size=events)]
    half = events // 2
    phased = [int(v) for v in rng.integers(0, 256, size=half)] + [
        int(v) for v in rng.integers(universe - 4096, universe, size=events - half)
    ]

    reports = []
    for label, values in (
        ("self-audit.zipf", zipf),
        ("self-audit.uniform", uniform),
        ("self-audit.phased", phased),
    ):
        reports.append(
            audit_stream(
                values, universe=universe, epsilon=epsilon, name=label
            )
        )
    return reports
