"""Runtime race sanitizer: the dynamic counterpart of RAP-LINT013..017.

The static concurrency rules (:mod:`repro.checks.flow.concurrency`)
prove lock discipline and thread confinement over the code the analysis
can see; this module checks the same contracts on a *live* run. A
:class:`RapSanitizer` instruments a profiler's moving parts:

* shard trees get owner-thread assertions on every mutating call, keyed
  off the ``confine_to_current_thread()`` / ``unconfine()`` protocol —
  a mutation from any other thread is a confinement violation, caught
  even on backends whose own ``_assert_owner`` checks are compiled out
  or bypassed;
* locks become tracked proxies that remember their holder, so a release
  from a non-holder (or a fold entered without the ingest lock) is
  flagged immediately;
* shard queues log every ``put``/``take``/``task_done`` into a bounded
  happens-before log with a logical sequence counter, and enforce the
  single-consumer discipline each queue is designed around.

Violations raise :class:`RapSanitizerError` at the offending call, with
the tail of the happens-before log attached so the interleaving that
led there is visible. Enable via ``RapConfig(debug_sanitize=True)`` (the
:class:`~repro.runtime.profiler.Profiler` attaches a sanitizer to its
own trees, queues and ingest lock) or replay a workload under
instrumentation with ``rap sanitize``.

Everything here uses a logical clock (a monotonically increasing
sequence number), never the wall clock: sanitized runs stay exactly as
deterministic as unsanitized ones (and RAP-LINT005 applies to this
package too).
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Mutating TreeBackend methods guarded by owner assertions.
TREE_MUTATORS: Tuple[str, ...] = (
    "add",
    "extend",
    "add_counted",
    "add_counted_arrays",
    "add_batch",
    "merge_now",
)

#: ShardQueue methods logged into the happens-before log.
QUEUE_METHODS: Tuple[str, ...] = (
    "put",
    "take",
    "take_combined",
    "task_done",
    "close",
)


@dataclass(frozen=True)
class SanitizerEvent:
    """One entry in the happens-before log.

    ``seq`` is a process-wide logical timestamp: event A with a smaller
    ``seq`` than B was recorded before B (the log append is serialized
    under the sanitizer's own lock, so the order is total).
    """

    seq: int
    thread: str
    kind: str
    detail: str

    def render(self) -> str:
        return f"[{self.seq:06d}] {self.thread}: {self.kind} {self.detail}"


class RapSanitizerError(RuntimeError):
    """A confinement or lock-discipline contract was broken at runtime.

    Carries the tail of the happens-before log so the report shows the
    interleaving, not just the final bad call.
    """

    def __init__(self, message: str, events: Tuple[SanitizerEvent, ...]):
        self.violation = message
        self.events = events
        tail = "\n".join(f"  {event.render()}" for event in events[-12:])
        super().__init__(
            f"{message}\n"
            f"recent happens-before log (oldest first):\n{tail}"
            if events
            else message
        )


class _TrackedLock:
    """Proxy around a ``threading.Lock`` that remembers its holder."""

    def __init__(self, lock: Any, name: str, sanitizer: "RapSanitizer"):
        self._lock = lock
        self._name = name
        self._sanitizer = sanitizer
        self._holder: Optional[int] = None

    @property
    def name(self) -> str:
        return self._name

    def held_by_current_thread(self) -> bool:
        return self._holder == threading.get_ident()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._holder = threading.get_ident()
            self._sanitizer._record("lock.acquire", self._name)
        return acquired

    def release(self) -> None:
        if self._holder != threading.get_ident():
            self._sanitizer._violation(
                f"lock {self._name} released by thread "
                f"{threading.current_thread().name} which does not hold it"
            )
        self._holder = None
        self._sanitizer._record("lock.release", self._name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class RapSanitizer:
    """Dynamic checker for thread confinement and lock discipline.

    Instances are cheap and self-contained; attach one per profiler.
    All internal state is guarded by a private lock, so wrapped calls
    may race freely — the *log* stays consistent even when the code
    under test does not.
    """

    def __init__(self, log_capacity: int = 512) -> None:
        if log_capacity < 16:
            raise ValueError(
                f"log_capacity must be >= 16, got {log_capacity}"
            )
        self._seq = itertools.count()
        self._logged = 0
        self._state_lock = threading.Lock()
        self._events: Deque[SanitizerEvent] = deque(maxlen=log_capacity)
        self._violations: List[str] = []
        # id(tree) -> (label, owning (pid, thread ident) or None when
        # unconfined). The pid half generalizes confinement from the
        # threaded executor to the process executor: a worker-confined
        # tree rejects mutation from any other process too.
        self._tree_owner: Dict[
            int, Tuple[str, Optional[Tuple[int, int]]]
        ] = {}
        # id(queue) -> (label, consumer thread ident or None before first take)
        self._queue_consumer: Dict[int, Tuple[str, Optional[int]]] = {}
        self._locks: List[_TrackedLock] = []
        # label -> latest report() dict received from a remote (worker
        # process) sanitizer; folded into this sanitizer's report.
        self._worker_reports: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def violations(self) -> Tuple[str, ...]:
        with self._state_lock:
            return tuple(self._violations)

    @property
    def events(self) -> Tuple[SanitizerEvent, ...]:
        with self._state_lock:
            return tuple(self._events)

    def report(self) -> Dict[str, object]:
        """Summary dict for CLI output and assertions in tests.

        Includes the latest summary merged from every worker-process
        sanitizer (see :meth:`merge_worker_report`); remote violations
        are folded into the top-level ``violations`` list, prefixed
        with the worker's label, so "no violations anywhere" stays a
        single assertion regardless of executor.
        """
        with self._state_lock:
            violations = list(self._violations)
            for label, summary in sorted(self._worker_reports.items()):
                for message in summary.get("violations", ()):
                    violations.append(f"[{label}] {message}")
            return {
                "events_logged": self._logged,
                "violations": violations,
                "trees_tracked": len(self._tree_owner),
                "queues_tracked": len(self._queue_consumer),
                "locks_tracked": [lock.name for lock in self._locks],
                "workers": {
                    label: dict(summary)
                    for label, summary in sorted(
                        self._worker_reports.items()
                    )
                },
            }

    def merge_worker_report(
        self, label: str, summary: Dict[str, object]
    ) -> None:
        """Fold a worker-process sanitizer's ``report()`` into this one.

        The process executor runs one sanitizer inside each shard
        worker (the parent cannot wrap objects living in another
        address space); workers ship their summary dict back with
        every sync frame and the parent merges the latest one here,
        keyed by shard label.
        """
        with self._state_lock:
            self._worker_reports[label] = dict(summary)

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------

    def _record(self, kind: str, detail: str) -> None:
        event = SanitizerEvent(
            seq=next(self._seq),
            thread=threading.current_thread().name,
            kind=kind,
            detail=detail,
        )
        with self._state_lock:
            self._events.append(event)
            self._logged += 1

    def _violation(self, message: str) -> None:
        self._record("VIOLATION", message)
        with self._state_lock:
            self._violations.append(message)
            events = tuple(self._events)
        raise RapSanitizerError(message, events)

    # ------------------------------------------------------------------
    # Lock tracking
    # ------------------------------------------------------------------

    def track_lock(self, lock: Any, name: str) -> _TrackedLock:
        """Wrap ``lock`` in a holder-remembering proxy."""
        tracked = _TrackedLock(lock, name, self)
        with self._state_lock:
            self._locks.append(tracked)
        return tracked

    def assert_lock_held(self, name: str, what: str) -> None:
        """Flag ``what`` if the named tracked lock is not held here."""
        with self._state_lock:
            locks = list(self._locks)
        for tracked in locks:
            if tracked.name == name:
                if not tracked.held_by_current_thread():
                    self._violation(
                        f"{what} entered without holding {name}"
                    )
                return
        # An untracked lock is a wiring bug, not a race; fail loudly.
        raise ValueError(f"no tracked lock named {name!r}")

    # ------------------------------------------------------------------
    # Tree confinement
    # ------------------------------------------------------------------

    def attach_tree(self, tree: Any, label: str) -> None:
        """Instrument a tree backend's mutating and confinement methods.

        Wrapping is by instance-attribute shadowing, so only this one
        object is affected — the class and every other instance keep
        their unwrapped methods.
        """
        with self._state_lock:
            self._tree_owner[id(tree)] = (label, None)

        def wrap_confine(inner: Callable[[], None]) -> Callable[[], None]:
            def confine() -> None:
                owner = (os.getpid(), threading.get_ident())
                with self._state_lock:
                    self._tree_owner[id(tree)] = (label, owner)
                self._record("tree.confine", label)
                inner()

            return confine

        def wrap_unconfine(inner: Callable[[], None]) -> Callable[[], None]:
            def unconfine() -> None:
                with self._state_lock:
                    self._tree_owner[id(tree)] = (label, None)
                self._record("tree.unconfine", label)
                inner()

            return unconfine

        def wrap_mutator(
            method_name: str, inner: Callable[..., Any]
        ) -> Callable[..., Any]:
            def mutate(*args: Any, **kwargs: Any) -> Any:
                here = (os.getpid(), threading.get_ident())
                with self._state_lock:
                    _, owner = self._tree_owner[id(tree)]
                if owner is not None and owner != here:
                    where = (
                        "process" if owner[0] != here[0] else "thread"
                    )
                    self._violation(
                        f"confined tree {label} mutated via "
                        f".{method_name}() from the wrong {where} "
                        f"(thread {threading.current_thread().name}, "
                        f"pid {here[0]}); it is owned by (pid, thread) "
                        f"{owner}"
                    )
                self._record("tree.mutate", f"{label}.{method_name}()")
                return inner(*args, **kwargs)

            return mutate

        tree.confine_to_current_thread = wrap_confine(
            tree.confine_to_current_thread
        )
        tree.unconfine = wrap_unconfine(tree.unconfine)
        for method_name in TREE_MUTATORS:
            inner = getattr(tree, method_name, None)
            if inner is None:
                continue
            tree.__dict__[method_name] = wrap_mutator(method_name, inner)

    # ------------------------------------------------------------------
    # Queue tracking
    # ------------------------------------------------------------------

    def attach_queue(self, queue: Any, label: str) -> None:
        """Log a queue's operations and enforce single-consumer use."""
        with self._state_lock:
            self._queue_consumer[id(queue)] = (label, None)

        def wrap(method_name: str, inner: Callable[..., Any]) -> Callable[..., Any]:
            consuming = method_name in ("take", "take_combined")

            def call(*args: Any, **kwargs: Any) -> Any:
                if consuming:
                    ident = threading.get_ident()
                    with self._state_lock:
                        _, consumer = self._queue_consumer[id(queue)]
                        if consumer is None:
                            self._queue_consumer[id(queue)] = (label, ident)
                    if consumer is not None and consumer != ident:
                        self._violation(
                            f"queue {label} consumed via .{method_name}() "
                            f"from thread "
                            f"{threading.current_thread().name}, but its "
                            f"consumer is thread ident {consumer}; "
                            "ShardQueues are single-consumer"
                        )
                self._record("queue." + method_name, label)
                return inner(*args, **kwargs)

            return call

        for method_name in QUEUE_METHODS:
            inner = getattr(queue, method_name, None)
            if inner is None:
                continue
            queue.__dict__[method_name] = wrap(method_name, inner)

    # ------------------------------------------------------------------
    # Fold protocol
    # ------------------------------------------------------------------

    def begin_fold(self, lock_name: str) -> None:
        """Assert the fold runs under the ingest lock; log the epoch."""
        self.assert_lock_held(lock_name, "snapshot fold")
        self._record("fold.begin", lock_name)

    def end_fold(self) -> None:
        self._record("fold.end", "")
