"""Registry + fixture self-check (``python -m repro.checks --selfcheck``).

Every registered rule must carry complete catalog metadata and a
renderable ``--explain`` block. Two rule families must additionally be
demonstrated by checked-in fixtures: the *numeric* rules
(RAP-LINT018..023, under ``tests/checks/fixtures/numeric/<CODE>/``,
whose positive violations must carry a non-empty ``flow_trace``
witness) and the fixture-checked *syntactic* rules (currently
RAP-LINT024..025, under ``tests/checks/fixtures/syntactic/<CODE>/``, no
flow-trace requirement — syntactic violations have no data flow to
witness). Each ``<CODE>/`` directory holds:

* ``positive/`` — linting it with only that rule selected yields at
  least one violation;
* ``clean/`` — the same selection yields nothing (the rule does not
  fire on the blessed pattern);
* ``suppressed/`` (optional) — a ``# noqa: <CODE> - reason`` on the
  violation line silences it in non-strict mode.

Fixture trees are laid out like the package (``.../positive/core/x.py``)
so scoped rules resolve the same module relpaths they see in ``src``.
CI runs this after the strict lint pass: a rule that loses its fixtures,
its rationale, or its catalog row fails the build, which keeps the
documented rule surface and the executable one from drifting apart.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from .lint.registry import RULES, explain_rule
from .lint.runner import lint_paths

#: Rule families whose fixtures are mandatory (code -> fixture subdir).
FIXTURE_CHECKED_PREFIX = "RAP-LINT0"
FIXTURE_RULES: Sequence[str] = (
    "RAP-LINT018",
    "RAP-LINT019",
    "RAP-LINT020",
    "RAP-LINT021",
    "RAP-LINT022",
    "RAP-LINT023",
)
#: Syntactic rules with mandatory fixtures (no flow-trace requirement).
SYNTACTIC_FIXTURE_RULES: Sequence[str] = ("RAP-LINT024", "RAP-LINT025")

DEFAULT_FIXTURES = Path("tests/checks/fixtures/numeric")
DEFAULT_SYNTACTIC_FIXTURES = Path("tests/checks/fixtures/syntactic")


def _check_metadata(problems: List[str]) -> None:
    for code, rule in sorted(RULES.items()):
        for field in ("name", "rationale", "catches", "kind", "scope"):
            if not getattr(rule, field, ""):
                problems.append(f"{code}: empty catalog field {field!r}")
        try:
            text = explain_rule(code)
        except ValueError as error:
            problems.append(f"{code}: --explain failed: {error}")
            continue
        if "rationale:" not in text:
            problems.append(f"{code}: --explain text has no rationale block")


def _check_fixtures(
    problems: List[str],
    fixtures: Path,
    rules: Sequence[str] = FIXTURE_RULES,
    require_flow_trace: bool = True,
) -> None:
    if not fixtures.is_dir():
        problems.append(f"fixture root missing: {fixtures}")
        return
    for code in rules:
        base = fixtures / code
        positive = base / "positive"
        clean = base / "clean"
        if not positive.is_dir():
            problems.append(f"{code}: no positive fixture dir ({positive})")
        else:
            report = lint_paths([str(positive)], select=[code])
            hits = [v for v in report.violations if v.rule == code]
            if not hits:
                problems.append(
                    f"{code}: positive fixture produced no violation"
                )
            for violation in hits:
                if require_flow_trace and not violation.flow_trace:
                    problems.append(
                        f"{code}: positive violation at "
                        f"{violation.path}:{violation.line} has no "
                        f"flow_trace witness"
                    )
        if not clean.is_dir():
            problems.append(f"{code}: no clean fixture dir ({clean})")
        else:
            report = lint_paths([str(clean)], select=[code])
            for violation in report.violations:
                problems.append(
                    f"{code}: clean fixture fired at "
                    f"{violation.path}:{violation.line}: "
                    f"{violation.message}"
                )
        suppressed = base / "suppressed"
        if suppressed.is_dir():
            report = lint_paths([str(suppressed)], select=[code])
            for violation in report.violations:
                problems.append(
                    f"{code}: suppressed fixture still fired at "
                    f"{violation.path}:{violation.line} (noqa ignored?)"
                )


def self_check(
    fixtures: Optional[Path] = None,
    syntactic_fixtures: Optional[Path] = None,
) -> List[str]:
    """Run the registry/fixture audit; the return value lists every
    problem found (empty means the check passed)."""
    problems: List[str] = []
    _check_metadata(problems)
    _check_fixtures(problems, fixtures or DEFAULT_FIXTURES)
    _check_fixtures(
        problems,
        syntactic_fixtures or DEFAULT_SYNTACTIC_FIXTURES,
        rules=SYNTACTIC_FIXTURE_RULES,
        require_flow_trace=False,
    )
    return problems
