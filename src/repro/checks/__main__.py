"""CI entrypoint: ``python -m repro.checks [--strict] [paths...]``.

Runs the RAP-LINT pass over the package source (or the given paths) and
exits nonzero on any violation. With ``--strict`` it tightens noqa
handling (bare suppressions are inert and flagged, per-code ones need a
reason) and additionally runs the structural self-audit battery — three
deterministic stream shapes replayed under the full
:class:`~repro.checks.audit.TreeAuditor` — so a single command guards
both the source and the live data structure. ``--catalog`` prints the
registry-derived rule catalog as the markdown table embedded in
``docs/checks.md``; ``--catalog-check PATH`` fails if that file has
drifted from the registry. ``--selfcheck`` audits the registry and the
numeric-rule fixtures (see :mod:`repro.checks.selfcheck`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .audit import self_audit
from .lint import all_rule_codes, catalog_markdown, lint_paths
from .selfcheck import DEFAULT_FIXTURES, self_check


def _default_paths() -> List[str]:
    """The installed repro package itself."""
    return [str(Path(__file__).resolve().parents[1])]


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="RAP correctness tooling: lint + structural self-audit",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "tighten noqa handling (bare suppressions flagged, reasons "
            "required) and also run the structural self-audit battery"
        ),
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help="print the registry-derived rule catalog table and exit",
    )
    parser.add_argument(
        "--catalog-check",
        metavar="PATH",
        default=None,
        help=(
            "exit nonzero unless PATH (docs/checks.md) embeds the "
            "current registry catalog verbatim"
        ),
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help=(
            "audit the registry (catalog metadata, --explain text) and "
            "the numeric-rule fixtures, then exit"
        ),
    )
    parser.add_argument(
        "--fixtures",
        metavar="DIR",
        default=str(DEFAULT_FIXTURES),
        help="fixture root for --selfcheck (default: %(default)s)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (RAP-LINT02* wildcards ok)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip (wildcards ok)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    args = parser.parse_args(argv)

    if args.catalog:
        print(catalog_markdown())
        return 0

    if args.catalog_check is not None:
        try:
            embedded = Path(args.catalog_check).read_text(encoding="utf-8")
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if catalog_markdown() not in embedded:
            print(
                f"catalog drift: {args.catalog_check} does not embed the "
                f"current {len(all_rule_codes())}-rule catalog; regenerate "
                "with 'python -m repro.checks --catalog'",
                file=sys.stderr,
            )
            return 1
        print(f"catalog in {args.catalog_check} matches the registry")
        return 0

    if args.selfcheck:
        problems = self_check(Path(args.fixtures))
        for problem in problems:
            print(f"selfcheck: {problem}", file=sys.stderr)
        if problems:
            print(f"{len(problems)} selfcheck problem(s)", file=sys.stderr)
            return 1
        print(
            f"selfcheck ok: {len(all_rule_codes())} rules with metadata, "
            "explain text, and fixture coverage"
        )
        return 0

    try:
        report = lint_paths(
            args.paths or _default_paths(),
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
            strict=args.strict,
        )
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        print(f"known rules: {', '.join(all_rule_codes())}", file=sys.stderr)
        return 2

    failed = not report.ok
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(report.to_sarif())
    else:
        print(report.render_text())

    if args.strict:
        for audit in self_audit():
            print(audit.render())
            failed = failed or not audit.ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
