"""Correctness tooling for the RAP reproduction (``rapcheck``).

RAP's guarantees are structural: every event is conserved in exactly one
range, every estimate is a lower bound within ``epsilon * n`` of the
truth, and the tree never outgrows ``O(log(R) / epsilon)`` counters
(Sections 2 and 4.3 of the paper). Nothing about a subtly broken split
or merge shows up as a crash — it shows up as a quietly wrong figure.
This package makes the invariants mechanical:

* :mod:`repro.checks.invariants` / :mod:`repro.checks.audit` — a
  :class:`TreeAuditor` that walks a live :class:`~repro.core.RapTree`
  or :class:`~repro.core.MultiDimRapTree` and verifies partition
  geometry, counter conservation, split-threshold discipline, the merge
  schedule, the theoretical node budget, and (against an exact oracle)
  the lower-bound estimate guarantee. Opt in per tree with
  ``RapConfig(audit_every=N)`` or per trace with ``rap audit``.
* :mod:`repro.checks.lint` — a repo-specific AST lint pass (the
  syntactic rules) guarding determinism, exact integer counters, node
  encapsulation, annotation coverage and wall-clock hygiene. Run it
  with ``rap lint`` or ``python -m repro.checks``; the full catalog is
  in :mod:`repro.checks.lint.registry`.
* :mod:`repro.checks.flow` — a flow-sensitive dataflow engine
  (per-function CFGs, a worklist fixed-point solver, reaching
  definitions/liveness, a value-kind taint lattice) powering the flow
  rules, which catch the same violations laundered through aliases and
  emit ``flow_trace`` witness paths.
* :mod:`repro.checks.callgraph` / :mod:`repro.checks.flow.concurrency`
  — an interprocedural call graph with per-function lock/thread
  summaries and the concurrency rules built on it: confinement escape,
  lock balance, lock-order inversion, blocking-under-lock, and shared
  numpy buffer discipline.
* :mod:`repro.checks.sanitizer` — the dynamic counterpart: a
  :class:`RapSanitizer` that instruments live shard trees, queues and
  locks with owner-thread assertions and a happens-before log. Enable
  with ``RapConfig(debug_sanitize=True)`` or replay a workload under
  instrumentation with ``rap sanitize``.
"""

from .audit import (
    AuditError,
    AuditReport,
    TraceAuditReport,
    TreeAuditor,
    audit_stream,
    self_audit,
)
from .invariants import AuditFinding
from .sanitizer import RapSanitizer, RapSanitizerError
from .lint import (
    FlowStep,
    LintReport,
    Violation,
    all_rule_codes,
    explain_rule,
    lint_paths,
)

__all__ = [
    "AuditError",
    "AuditFinding",
    "AuditReport",
    "FlowStep",
    "LintReport",
    "RapSanitizer",
    "RapSanitizerError",
    "TraceAuditReport",
    "TreeAuditor",
    "Violation",
    "all_rule_codes",
    "audit_stream",
    "explain_rule",
    "lint_paths",
    "self_audit",
]
