"""Correctness tooling for the RAP reproduction (``rapcheck``).

RAP's guarantees are structural: every event is conserved in exactly one
range, every estimate is a lower bound within ``epsilon * n`` of the
truth, and the tree never outgrows ``O(log(R) / epsilon)`` counters
(Sections 2 and 4.3 of the paper). Nothing about a subtly broken split
or merge shows up as a crash — it shows up as a quietly wrong figure.
This package makes the invariants mechanical:

* :mod:`repro.checks.invariants` / :mod:`repro.checks.audit` — a
  :class:`TreeAuditor` that walks a live :class:`~repro.core.RapTree`
  or :class:`~repro.core.MultiDimRapTree` and verifies partition
  geometry, counter conservation, split-threshold discipline, the merge
  schedule, the theoretical node budget, and (against an exact oracle)
  the lower-bound estimate guarantee. Opt in per tree with
  ``RapConfig(audit_every=N)`` or per trace with ``rap audit``.
* :mod:`repro.checks.lint` — a repo-specific AST lint pass (the
  syntactic rules RAP-LINT001..005 and 011) guarding determinism, exact
  integer counters, node encapsulation, annotation coverage and
  wall-clock hygiene. Run it with ``rap lint`` or
  ``python -m repro.checks``.
* :mod:`repro.checks.flow` — a flow-sensitive dataflow engine
  (per-function CFGs, a worklist fixed-point solver, reaching
  definitions/liveness, a value-kind taint lattice) powering rules
  RAP-LINT006..010, which catch the same violations laundered through
  aliases and emit ``flow_trace`` witness paths.
"""

from .audit import (
    AuditError,
    AuditReport,
    TraceAuditReport,
    TreeAuditor,
    audit_stream,
    self_audit,
)
from .invariants import AuditFinding
from .lint import (
    FlowStep,
    LintReport,
    Violation,
    all_rule_codes,
    explain_rule,
    lint_paths,
)

__all__ = [
    "AuditError",
    "AuditFinding",
    "AuditReport",
    "FlowStep",
    "LintReport",
    "TraceAuditReport",
    "TreeAuditor",
    "Violation",
    "all_rule_codes",
    "audit_stream",
    "explain_rule",
    "lint_paths",
    "self_audit",
]
